//! A scripted data-exploration session (paper Figure 1b): the estimator
//! routes each query to the approximation set or the full database, and a
//! drift in user interest triggers fine-tuning.
//!
//! ```sh
//! cargo run --release --example exploration_session
//! ```

use asqp::prelude::*;

fn main() {
    let db = std::sync::Arc::new(asqp::data::imdb::generate(Scale::Small, 3));

    // The user's past workload is movie-centric: years, ratings, kinds.
    let history = asqp::data::imdb::workload(30, 3);
    let cfg = AsqpConfig::full(500, 50).with_seed(3);
    let model = train(&db, &history, &cfg).expect("training succeeds");

    // Person queries share join edges with the movie workload, so their
    // deviation certainty is moderate — lower the drift gate accordingly
    // (the paper's 0.8 default suits fully-alien workloads).
    let session_cfg = SessionConfig {
        drift_confidence: 0.55,
        ..SessionConfig::default()
    };
    let session = Session::new(db.clone(), model, session_cfg)
        .expect("session materialises the approximation set");
    println!(
        "session ready: approximation set holds {} tuples\n",
        session.state().subset.total_rows()
    );

    // Phase 1 — queries close to the training workload: mostly answered
    // from the approximation set, instantly.
    println!("--- phase 1: familiar movie queries ---");
    let familiar = asqp::data::imdb::workload(36, 3);
    for q in familiar.queries.iter().skip(30) {
        route_and_report(&session, q);
    }

    // Phase 2 — the user drifts to person-centric exploration the model
    // never saw. The estimator sends these to the full database, and after
    // three confident deviations the model fine-tunes itself.
    println!("\n--- phase 2: interest drifts to people ---");
    let drift = [
        "SELECT p.name FROM person p WHERE p.gender = 'f' AND p.name LIKE 'a%'",
        "SELECT p.name FROM person p WHERE p.gender = 'm' AND p.name LIKE 'b%'",
        "SELECT p.name, c.role FROM person p, cast_info c \
         WHERE p.id = c.person_id AND c.role = 'director'",
        "SELECT p.name FROM person p WHERE p.name LIKE 'c%'",
    ];
    for text in drift {
        let q = asqp::db::sql::parse(text).expect("valid SQL");
        route_and_report(&session, &q);
    }

    println!("\nsession stats: {:?}", session.stats());
    if session.stats().fine_tunes > 0 {
        println!("the model fine-tuned itself after detecting interest drift");
        // Phase 3: person queries now hit the refreshed approximation set.
        println!("\n--- phase 3: drifted queries after fine-tuning ---");
        let q = asqp::db::sql::parse(
            "SELECT p.name FROM person p WHERE p.gender = 'f' AND p.name LIKE 'd%'",
        )
        .expect("valid SQL");
        route_and_report(&session, &q);
    }
}

fn route_and_report(session: &Session, q: &Query) {
    let preview: String = q.to_sql().chars().take(72).collect();
    let (result, source) = session.query(q).expect("query executes");
    let tag = match source {
        AnswerSource::ApproximationSet => "approx",
        AnswerSource::FullDatabase => "FULL DB",
    };
    println!("[{tag:>7}] {:>5} rows  {preview}...", result.rows.len());
}
