//! Aggregate queries over the approximation set (paper §6.4): ASQP-RL is
//! trained on SPJ rewrites of an aggregate workload, then answers the
//! original aggregates from the subset with sampling-ratio scale-up, and we
//! measure relative error per operator class.
//!
//! ```sh
//! cargo run --release --example aggregate_exploration
//! ```

use asqp::core::{approximate_aggregate, operator_class, result_relative_error};
use asqp::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let db = asqp::data::flights::generate(Scale::Small, 11);
    let aggregates = asqp::data::flights::aggregate_workload(60, 11);
    println!(
        "FLIGHTS: {} tuples; {} aggregate queries\n",
        db.total_rows(),
        aggregates.len()
    );

    // Train on the SPJ rewrites (train() strips aggregates internally);
    // 1% memory, the paper's §6.4 setting.
    let k = db.total_rows() / 100;
    let cfg = AsqpConfig::full(k, 50).with_seed(11);
    let model = train(&db, &aggregates, &cfg).expect("training succeeds");
    let subset = model.materialize(&db, None).expect("subset materialises");
    println!(
        "approximation set: {} tuples ({:.1}%)\n",
        subset.total_rows(),
        100.0 * subset.total_rows() as f64 / db.total_rows() as f64
    );

    // Answer every aggregate from the subset and bucket errors by class.
    let mut by_class: BTreeMap<&'static str, (f64, usize)> = BTreeMap::new();
    for q in &aggregates.queries {
        let truth = db.execute(q).expect("truth executes");
        let approx = approximate_aggregate(&db, &subset, q).expect("approx executes");
        let err = result_relative_error(q, &approx, &truth);
        let slot = by_class.entry(operator_class(q)).or_insert((0.0, 0));
        slot.0 += err;
        slot.1 += 1;
    }

    println!("{:<8} {:>8} {:>10}", "class", "queries", "rel. error");
    for (class, (total, n)) in &by_class {
        println!("{:<8} {:>8} {:>10.3}", class, n, total / *n as f64);
    }

    // Show one query end to end.
    let sample = aggregates
        .queries
        .iter()
        .find(|q| !q.group_by.is_empty())
        .expect("workload has grouped queries");
    println!("\nexample: {sample}");
    let truth = db.execute(sample).expect("runs");
    let approx = approximate_aggregate(&db, &subset, sample).expect("runs");
    println!(
        "  truth rows: {}, approx rows: {}",
        truth.rows.len(),
        approx.rows.len()
    );
    for row in truth.rows.iter().take(3) {
        let key = &row[0];
        let t = row[1].as_f64().unwrap_or(f64::NAN);
        let a = approx
            .rows
            .iter()
            .find(|r| &r[0] == key)
            .and_then(|r| r[1].as_f64());
        match a {
            Some(a) => println!("  group {key}: truth {t:.1}, approx {a:.1}"),
            None => println!("  group {key}: truth {t:.1}, approx MISSING"),
        }
    }
}
