//! Quickstart: train ASQP-RL on an IMDB-shaped database, materialise the
//! approximation set, and compare answer quality and latency against the
//! full database.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use asqp::prelude::*;
use std::time::Instant;

fn main() {
    // 1. A database and an exploratory SPJ workload. `Scale::Small` keeps
    //    this example under a minute; crank it up to `Scale::Medium` (or
    //    `Scale::Factor(n)`) for experiment-scale runs.
    let db = asqp::data::imdb::generate(Scale::Small, 7);
    let workload = asqp::data::imdb::workload(40, 7);
    println!(
        "database: {} tables, {} tuples; workload: {} queries",
        db.table_names().count(),
        db.total_rows(),
        workload.len()
    );

    // 2. Train. k = 600 tuples (~1% of the data), frame size F = 50.
    let cfg = AsqpConfig::full(600, 50).with_seed(7);
    let t0 = Instant::now();
    let model = train(&db, &workload, &cfg).expect("training succeeds");
    println!(
        "trained in {:.1?} ({} RL iterations, final reward {:.3})",
        t0.elapsed(),
        model.history.len(),
        model.final_reward()
    );

    // 3. Materialise the approximation set.
    let subset = model.materialize(&db, None).expect("subset materialises");
    println!(
        "approximation set: {} tuples ({:.2}% of the database)",
        subset.total_rows(),
        100.0 * subset.total_rows() as f64 / db.total_rows() as f64
    );

    // 4. Quality (Eq. 1) and latency, full DB vs approximation set.
    let params = MetricParams::new(50);
    let quality = score(&db, &subset, &workload, params).expect("scoring succeeds");
    println!("workload score on the approximation set: {quality:.3}");

    let sample = &workload.queries[0];
    println!("\nexample query: {sample}");
    let t_full = Instant::now();
    let full_rows = db.execute(sample).expect("query runs").rows.len();
    let t_full = t_full.elapsed();
    let t_sub = Instant::now();
    let sub_rows = subset.execute(sample).expect("query runs").rows.len();
    let t_sub = t_sub.elapsed();
    println!("  full DB:           {full_rows:>6} rows in {t_full:.1?}");
    println!("  approximation set: {sub_rows:>6} rows in {t_sub:.1?}");
    let speedup = t_full.as_secs_f64() / t_sub.as_secs_f64().max(1e-9);
    println!("  speedup: {speedup:.0}x");
}
