//! Interactive SQL shell over the engine — load your own CSVs, explore them,
//! and build an ASQP-RL approximation set from your session's queries.
//!
//! ```sh
//! cargo run --release --example sql_repl                 # demo IMDB data
//! cargo run --release --example sql_repl -- people.csv   # your CSVs
//! ```
//!
//! Commands: SELECT / CREATE TABLE / INSERT / DROP TABLE statements,
//! `\tables`, `\approx <k>` (train ASQP-RL on the queries issued so far and
//! switch to the approximation set), `\full` (switch back), `\quit`.

use asqp::prelude::*;
use std::io::{BufRead, Write};

fn main() {
    let mut db = Database::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        println!("no CSVs given; loading the demo IMDB-shaped dataset (Scale::Small)");
        db = asqp::data::imdb::generate(Scale::Small, 7);
    } else {
        for path in &args {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("table")
                .to_string();
            let table = asqp::db::csv::load_csv(&name, &text, None)
                .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
            println!("loaded {} ({} rows)", name, table.row_count());
            db.add_table(table).expect("unique table names");
        }
    }
    println!(
        "{} tables, {} tuples. Type SQL, \\tables, \\approx <k>, \\full or \\quit.\n",
        db.table_names().count(),
        db.total_rows()
    );

    let mut history: Vec<Query> = Vec::new();
    let mut approx: Option<Database> = None;
    let stdin = std::io::stdin();
    loop {
        print!("asqp> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\quit" | "\\q" => break,
            "\\tables" => {
                for t in db.tables() {
                    println!("  {} {} ({} rows)", t.name(), t.schema(), t.row_count());
                }
                continue;
            }
            "\\full" => {
                approx = None;
                println!("switched to the full database");
                continue;
            }
            _ => {}
        }
        if let Some(rest) = line.strip_prefix("\\approx") {
            let k: usize = rest.trim().parse().unwrap_or(db.total_rows() / 100);
            if history.is_empty() {
                println!("issue a few queries first — they become the training workload");
                continue;
            }
            println!(
                "training ASQP-RL on your {} session queries (k = {k})...",
                history.len()
            );
            let cfg = AsqpConfig::light(k, 50).with_seed(7);
            match train(&db, &Workload::uniform(history.clone()), &cfg) {
                Ok(model) => match model.materialize(&db, None) {
                    Ok(sub) => {
                        println!("approximation set ready: {} tuples", sub.total_rows());
                        approx = Some(sub);
                    }
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("error: {e}"),
            }
            continue;
        }

        if let Some(rest) = line.strip_prefix("\\explain ") {
            match asqp::db::sql::parse(rest) {
                Ok(q) => match asqp::db::explain(&db, &q) {
                    Ok(plan) => print!("{plan}"),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("parse error: {e}"),
            }
            continue;
        }

        // DDL / DML statements mutate the full database directly.
        let head: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphabetic())
            .collect::<String>()
            .to_ascii_uppercase();
        if matches!(head.as_str(), "CREATE" | "DROP" | "INSERT") {
            match asqp::db::execute_statement(&mut db, line) {
                Ok(asqp::db::StatementResult::Done { affected }) => {
                    println!("ok ({affected} rows affected)");
                }
                Ok(_) => unreachable!("DDL/DML never returns rows"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }

        // Plain SQL.
        let query = match asqp::db::sql::parse(line) {
            Ok(q) => q,
            Err(e) => {
                println!("parse error: {e}");
                continue;
            }
        };
        let target = approx.as_ref().unwrap_or(&db);
        let started = std::time::Instant::now();
        match target.execute(&query) {
            Ok(rs) => {
                let shown = rs.rows.len().min(20);
                println!("{}", rs.columns.join(" | "));
                for row in rs.rows.iter().take(shown) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                println!(
                    "({} rows{} in {:.1?}{})",
                    rs.rows.len(),
                    if rs.rows.len() > shown {
                        ", 20 shown"
                    } else {
                        ""
                    },
                    started.elapsed(),
                    if approx.is_some() {
                        ", approximation set"
                    } else {
                        ""
                    }
                );
                history.push(query);
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
