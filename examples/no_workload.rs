//! Cold start with no query workload (paper §4.5 / Fig. 6): the system
//! synthesises a workload from table statistics, trains on it, and then
//! iteratively folds real user queries in, fine-tuning as it goes.
//!
//! ```sh
//! cargo run --release --example no_workload
//! ```

use asqp::core::synthesize_workload;
use asqp::prelude::*;

fn main() {
    let db = asqp::data::flights::generate(Scale::Small, 5);
    println!("FLIGHTS: {} tuples, no workload given\n", db.total_rows());

    // Detected join structure drives the synthesiser.
    let joins = asqp::core::detect_joins(&db);
    println!("discovered join edges:");
    for e in &joins {
        println!(
            "  {}.{} -> {}.{}",
            e.from_table, e.from_col, e.to_table, e.to_col
        );
    }

    // Round 0: train purely on synthesised queries.
    let synthetic = synthesize_workload(&db, 30, 5);
    println!(
        "\nsynthesised {} statistics-driven queries; training...",
        synthetic.len()
    );
    let cfg = AsqpConfig::light(400, 50).with_seed(5);
    let mut model = train(&db, &synthetic, &cfg).expect("training succeeds");

    // The "user" issues 5 real queries per round; after each round the
    // model fine-tunes on them, tracking their quality (Fig. 6's y-axis).
    let user_queries = asqp::data::flights::workload(20, 99);
    let params = MetricParams::new(50);
    println!("\n{:<7} {:>14}", "round", "user-query score");
    for round in 0..4 {
        let seen = Workload::uniform(user_queries.queries[..(round + 1) * 5].to_vec());
        let subset = model.materialize(&db, None).expect("materialises");
        let s = score(&db, &subset, &seen, params).expect("scores");
        println!("{:<7} {:>14.3}", round, s);

        // Fold this round's queries in (fine-tune toward the user).
        let new_batch = &user_queries.queries[round * 5..(round + 1) * 5];
        model = fine_tune(&db, &model, new_batch, 0.05).expect("fine-tune succeeds");
    }
    let subset = model.materialize(&db, None).expect("materialises");
    let final_score = score(&db, &subset, &user_queries, params).expect("scores");
    println!("\nfinal score across all 20 user queries: {final_score:.3}");
}
