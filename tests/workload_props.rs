//! Property tests spanning crates: every generated / synthesised query must
//! round-trip through the SQL parser and execute; metric invariants hold on
//! arbitrary selections.

use asqp::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every query any generator emits parses back from its SQL text.
    #[test]
    fn generated_queries_roundtrip_sql(seed in 0u64..500) {
        for w in [
            asqp::data::imdb::workload(6, seed),
            asqp::data::mas::workload(5, seed),
            asqp::data::flights::workload(4, seed),
            asqp::data::flights::aggregate_workload(6, seed),
        ] {
            for q in &w.queries {
                let text = q.to_sql();
                let reparsed = asqp::db::sql::parse(&text).unwrap();
                prop_assert_eq!(q, &reparsed, "round-trip failed for {}", text);
            }
        }
    }

    /// Relaxation never shrinks any generated query's result.
    #[test]
    fn relaxation_monotone_on_generated_queries(seed in 0u64..100) {
        let db = asqp::data::imdb::generate(Scale::Tiny, 1);
        let w = asqp::data::imdb::workload(6, seed);
        for q in &w.queries {
            let before = db.execute(q).unwrap().rows.len();
            let relaxed = asqp::core::relax_query(q, 0.2);
            let after = db.execute(&relaxed).unwrap().rows.len();
            prop_assert!(after >= before, "{} shrank {} -> {}", q, before, after);
        }
    }

    /// Eq. 1 invariants on arbitrary random selections: score ∈ [0, 1] and
    /// adding rows never hurts.
    #[test]
    fn score_bounded_and_monotone(take_a in 0usize..60, extra in 1usize..40, seed in 0u64..50) {
        let db = asqp::data::imdb::generate(Scale::Tiny, 1);
        let w = asqp::data::imdb::workload(8, seed);
        let params = MetricParams::new(20);
        let title_rows = db.table("title").unwrap().row_count();

        let mut sel_a = BTreeMap::new();
        sel_a.insert("title".to_string(), (0..take_a.min(title_rows)).collect::<Vec<_>>());
        let mut sel_b = sel_a.clone();
        sel_b.insert(
            "title".to_string(),
            (0..(take_a + extra).min(title_rows)).collect::<Vec<_>>(),
        );

        let sa = score(&db, &db.subset(&sel_a).unwrap(), &w, params).unwrap();
        let sb = score(&db, &db.subset(&sel_b).unwrap(), &w, params).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&sa));
        prop_assert!(sb >= sa - 1e-9, "superset scored lower: {} < {}", sb, sa);
    }

    /// The full database always scores exactly 1.
    #[test]
    fn full_database_is_perfect(seed in 0u64..100) {
        let db = asqp::data::mas::generate(Scale::Tiny, 1);
        let w = asqp::data::mas::workload(6, seed);
        let s = score(&db, &db, &w, MetricParams::new(20)).unwrap();
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    /// Synthesised (no-workload) queries are always valid SQL over the DB.
    #[test]
    fn synthesized_workload_always_executes(seed in 0u64..60) {
        let db = asqp::data::flights::generate(Scale::Tiny, 1);
        let w = asqp::core::synthesize_workload(&db, 8, seed);
        for q in &w.queries {
            db.execute(q).unwrap();
            let reparsed = asqp::db::sql::parse(&q.to_sql()).unwrap();
            prop_assert_eq!(q, &reparsed);
        }
    }
}
