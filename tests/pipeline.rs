//! End-to-end integration: the full ASQP-RL pipeline against its problem
//! statement — train, materialise, score, route, fine-tune.

use asqp::core::{per_query_fractions, AnswerabilityEstimator, FullCounts};
use asqp::prelude::*;
use std::collections::BTreeMap;

fn quick_cfg(k: usize, f: usize, seed: u64) -> AsqpConfig {
    let mut cfg = AsqpConfig::full(k, f).with_seed(seed);
    cfg.preprocess.n_representatives = 8;
    cfg.preprocess.max_actions = 128;
    cfg.preprocess.per_query_cap = 60;
    cfg.trainer.num_workers = 2;
    cfg.trainer.steps_per_worker = 96;
    cfg.iterations = 15;
    cfg
}

#[test]
fn asqp_beats_random_sampling_on_imdb() {
    let db = asqp::data::imdb::generate(Scale::Tiny, 1);
    let workload = asqp::data::imdb::workload(16, 1);
    let params = MetricParams::new(20);
    let k = 80;

    let model = train(&db, &workload, &quick_cfg(k, 20, 1)).unwrap();
    let asqp_sub = model.materialize(&db, None).unwrap();
    let asqp_score = score(&db, &asqp_sub, &workload, params).unwrap();

    // Average random score over 3 seeds for a fair comparison.
    let mut ran_total = 0.0;
    for seed in 0..3 {
        let mut ran = asqp::baselines::RandomSampling { seed };
        let out = ran.build(&db, &workload, k, params).unwrap();
        let sub = out.materialize(&db).unwrap();
        ran_total += score(&db, &sub, &workload, params).unwrap();
    }
    let ran_score = ran_total / 3.0;
    assert!(
        asqp_score > ran_score * 1.5,
        "ASQP ({asqp_score:.3}) must clearly beat RAN ({ran_score:.3})"
    );
}

#[test]
fn train_test_split_generalization() {
    // The paper evaluates on held-out queries: the trained subset must
    // score reasonably on queries it never saw (thanks to relaxation and
    // exploration).
    let db = asqp::data::imdb::generate(Scale::Tiny, 2);
    let workload = asqp::data::imdb::workload(24, 2);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let (train_w, test_w) = workload.split(0.7, &mut rng);

    let model = train(&db, &train_w, &quick_cfg(100, 20, 2)).unwrap();
    let sub = model.materialize(&db, None).unwrap();
    let params = MetricParams::new(20);
    let test_score = score(&db, &sub, &test_w, params).unwrap();
    let empty = db.subset(&BTreeMap::new()).unwrap();
    let zero = score(&db, &empty, &test_w, params).unwrap();
    assert!(
        test_score > zero + 0.1,
        "held-out score {test_score:.3} must exceed the empty-set floor {zero:.3}"
    );
}

#[test]
fn estimator_separates_answerable_from_not() {
    let db = asqp::data::imdb::generate(Scale::Tiny, 3);
    let workload = asqp::data::imdb::workload(16, 3);
    let params = MetricParams::new(20);
    let model = train(&db, &workload, &quick_cfg(100, 20, 3)).unwrap();
    let sub = model.materialize(&db, None).unwrap();
    let est = AnswerabilityEstimator::fit(&model, &db, &sub, params).unwrap();

    // Ground truth on the training queries themselves.
    let full = FullCounts::compute(&db, &workload).unwrap();
    let truths = per_query_fractions(&sub, &workload, &full, params).unwrap();
    let (precision, recall) = est.precision_recall(&workload.queries, &truths);
    // On its own training workload the estimator should be strong (the
    // paper reports 0.95/0.90 on held-out queries at full scale).
    assert!(
        precision >= 0.6 && recall >= 0.6,
        "precision {precision:.2} recall {recall:.2}"
    );
}

#[test]
fn session_end_to_end_with_fine_tune() {
    let db = std::sync::Arc::new(asqp::data::imdb::generate(Scale::Tiny, 4));
    let workload = asqp::data::imdb::workload(12, 4);
    let model = train(&db, &workload, &quick_cfg(80, 20, 4)).unwrap();
    let cfg = SessionConfig {
        drift_confidence: 0.5,
        drift_trigger: 2,
        ..SessionConfig::default()
    };
    let session = Session::new(db.clone(), model, cfg).unwrap();

    for q in &workload.queries {
        let (rs, src) = session.query(q).unwrap();
        // Subset answers must be subsets of the truth for SPJ queries.
        if src == AnswerSource::ApproximationSet {
            let truth: std::collections::BTreeSet<_> =
                db.execute(q).unwrap().rows.into_iter().collect();
            for row in &rs.rows {
                assert!(truth.contains(row), "approximate answers must be sound");
            }
        }
    }
    assert_eq!(session.stats().queries, 12);
}

#[test]
fn concurrent_server_over_trained_session() {
    use asqp::serve::{FaultPlan, ServeConfig, ServedSource, Server};

    let db = std::sync::Arc::new(asqp::data::imdb::generate(Scale::Tiny, 8));
    let workload = asqp::data::imdb::workload(12, 8);
    let model = train(&db, &workload, &quick_cfg(80, 20, 8)).unwrap();
    let session = Session::new(db.clone(), model, SessionConfig::default()).unwrap();

    let server = Server::start(
        session,
        ServeConfig {
            workers: 3,
            faults: FaultPlan::chaos(8),
            ..ServeConfig::default()
        },
    );
    let clients = 4usize;
    std::thread::scope(|s| {
        for _ in 0..clients {
            let server = &server;
            let queries = &workload.queries;
            let db = db.clone();
            s.spawn(move || {
                for q in queries {
                    let answer = server
                        .submit(q.clone())
                        .expect("queue depth exceeds the burst")
                        .wait()
                        .expect("chaos faults are transient, never fatal");
                    if answer.source != ServedSource::Full {
                        // Subset and degraded answers must be sound.
                        let truth: std::collections::BTreeSet<_> =
                            db.execute(q).unwrap().rows.into_iter().collect();
                        for row in &answer.rows.rows {
                            assert!(truth.contains(row), "approximate answers must be sound");
                        }
                    }
                }
            });
        }
    });

    let expected = (clients * workload.queries.len()) as u64;
    let stats = server.stats();
    assert_eq!(stats.admitted, expected);
    assert_eq!(
        stats.resolved(),
        expected,
        "every admitted request resolves"
    );
    assert_eq!(stats.fatal, 0);
    server.shutdown();
}

#[test]
fn budget_is_respected_across_scales() {
    let db = asqp::data::imdb::generate(Scale::Tiny, 5);
    let workload = asqp::data::imdb::workload(12, 5);
    for k in [30usize, 100, 300] {
        let model = train(&db, &workload, &quick_cfg(k, 20, 5)).unwrap();
        let total: usize = model.selection(None).values().map(Vec::len).sum();
        assert!(total <= k, "selection of {total} tuples exceeds budget {k}");
    }
}

#[test]
fn score_monotone_in_k() {
    let db = asqp::data::imdb::generate(Scale::Tiny, 6);
    let workload = asqp::data::imdb::workload(12, 6);
    let params = MetricParams::new(20);
    let model = train(&db, &workload, &quick_cfg(300, 20, 6)).unwrap();
    let mut last = -1.0;
    for req in [30usize, 100, 300] {
        let sub = model.materialize(&db, Some(req)).unwrap();
        let s = score(&db, &sub, &workload, params).unwrap();
        assert!(
            s >= last - 0.05,
            "score should roughly grow with the budget: {last:.3} -> {s:.3} at k={req}"
        );
        last = s;
    }
}
