//! Cross-crate integration: the Fig. 2 comparison in miniature — every
//! baseline builds under the same budget, and the orderings the paper
//! reports hold on a seeded instance.

use asqp::baselines::*;
use asqp::prelude::*;

fn all_selection_baselines(seed: u64) -> Vec<Box<dyn Baseline>> {
    vec![
        Box::new(RandomSampling { seed }),
        Box::new(BruteForce { seed, draws: 30 }),
        Box::new(TopQueried { seed }),
        Box::new(LruCache { seed }),
        Box::new(QueryResultDiversification {
            seed,
            sample_per_table: 400,
        }),
        Box::new(Skyline),
        Box::new(Verdict { seed }),
        Box::new(QuickR { seed }),
    ]
}

#[test]
fn every_baseline_builds_and_scores() {
    let db = asqp::data::imdb::generate(Scale::Tiny, 1);
    let w = asqp::data::imdb::workload(12, 1);
    let params = MetricParams::new(20);
    let k = 80;

    for mut b in all_selection_baselines(1) {
        let out = b.build(&db, &w, k, params).unwrap();
        assert!(
            out.tuple_count() <= k + 8,
            "{} exceeded budget: {}",
            b.name(),
            out.tuple_count()
        );
        let sub = out.materialize(&db).unwrap();
        let s = score(&db, &sub, &w, params).unwrap();
        assert!((0.0..=1.0).contains(&s), "{}: score {s}", b.name());
    }
}

#[test]
fn asqp_outranks_every_baseline_on_seeded_instance() {
    let db = asqp::data::imdb::generate(Scale::Tiny, 2);
    let w = asqp::data::imdb::workload(16, 2);
    let params = MetricParams::new(20);
    let k = 80;

    let mut cfg = AsqpConfig::full(k, 20).with_seed(2);
    cfg.preprocess.n_representatives = 8;
    cfg.preprocess.max_actions = 128;
    cfg.trainer.num_workers = 2;
    cfg.iterations = 20;
    let model = train(&db, &w, &cfg).unwrap();
    let asqp_score = score(&db, &model.materialize(&db, None).unwrap(), &w, params).unwrap();

    // Workload-agnostic baselines — ASQP should dominate all of them
    // (the paper's headline: +30% over the best baseline).
    for mut b in [
        Box::new(RandomSampling { seed: 2 }) as Box<dyn Baseline>,
        Box::new(Skyline),
        Box::new(QueryResultDiversification {
            seed: 2,
            sample_per_table: 400,
        }),
        Box::new(Verdict { seed: 2 }),
        Box::new(QuickR { seed: 2 }),
    ] {
        let out = b.build(&db, &w, k, params).unwrap();
        let s = score(&db, &out.materialize(&db).unwrap(), &w, params).unwrap();
        assert!(
            asqp_score > s,
            "ASQP ({asqp_score:.3}) must beat {} ({s:.3})",
            b.name()
        );
    }
}

#[test]
fn vae_generates_but_scores_poorly_on_selections() {
    // The paper's key negative result for generative AQP: synthetic tuples
    // rarely satisfy selection predicates exactly, so the VAE baseline's
    // Eq.-1 score collapses.
    let db = asqp::data::imdb::generate(Scale::Tiny, 6);
    let w = asqp::data::imdb::workload(12, 6);
    let params = MetricParams::new(20);
    let mut vae = GenerativeVae {
        seed: 6,
        epochs: 8,
        train_cap: 300,
        ..GenerativeVae::default()
    };
    let out = vae.build(&db, &w, 80, params).unwrap();
    let synth = out.materialize(&db).unwrap();
    let vae_score = score(&db, &synth, &w, params).unwrap();

    let mut ran = RandomSampling { seed: 6 };
    let rout = ran.build(&db, &w, 80, params).unwrap();
    let ran_score = score(&db, &rout.materialize(&db).unwrap(), &w, params).unwrap();
    assert!(
        vae_score <= ran_score + 0.05,
        "VAE ({vae_score:.3}) must not outperform even RAN ({ran_score:.3}) on exact selections"
    );
}

#[test]
fn spn_beats_subset_counting_on_full_table_aggregates() {
    use asqp::baselines::Spn;
    use asqp::core::relative_error;
    let db = asqp::data::flights::generate(Scale::Tiny, 4);
    let spn = Spn::learn(db.table("flights").unwrap());
    let q = asqp::db::sql::parse("SELECT COUNT(*) FROM flights f WHERE f.distance >= 800").unwrap();
    let truth = db.execute(&q).unwrap().rows[0][0].as_i64().unwrap() as f64;
    let est = spn.estimate(&q).unwrap().rows[0][0].as_f64().unwrap();
    assert!(relative_error(est, truth) < 0.2);
}
