//! Vendored offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! Implements the subset of the API this workspace uses: the `proptest!`
//! macro (with an optional `#![proptest_config(..)]` header), `prop_assert!`
//! / `prop_assert_eq!`, integer/float range strategies, strategy tuples,
//! `collection::vec`, `option::of` and `any::<T>()`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! cases are sampled from a deterministic per-test RNG (seeded from the test
//! name), and assertion failures panic with the offending case index so runs
//! are reproducible.

use rand::SeedableRng;

pub mod test_runner {
    /// Run-count configuration, mirroring proptest's type of the same name.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// RNG handed to strategies; deterministic per (test name, case index).
pub type TestRng = rand::rngs::StdRng;

/// Seed a case RNG from the test name and case index (FNV-1a over the name).
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}

pub mod strategy {
    use super::TestRng;

    /// A source of random values. No shrinking in this stand-in.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

    /// `any::<T>()` support: full-domain sampling for primitives.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any::new()
        }
    }

    macro_rules! any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random(rng)
                }
            }
        )*};
    }
    any_strategy!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

/// Full-domain strategy for a primitive type, as in `any::<bool>()`.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::new()
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)`: a Vec whose length is drawn from the range.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                0
            } else {
                rand::Rng::random_range(rng, self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `of(inner)`: None half the time, otherwise Some(inner sample).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::Rng::random_bool(rng, 0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors proptest's `prelude::prop` re-export module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// The proptest! block: an optional `#![proptest_config(..)]` header followed
/// by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr;) => {};
    (@run $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Assertion that reports the failing expression; panics (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest case failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::case_rng("x", 3);
        let mut b = crate::case_rng("x", 3);
        let ra: u64 = rand::Rng::random(&mut a);
        let rb: u64 = rand::Rng::random(&mut b);
        assert_eq!(ra, rb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_stay_in_bounds(x in 3i64..17, v in prop::collection::vec(0usize..5, 0..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() < 9);
            for e in &v {
                prop_assert!(*e < 5, "element {} out of range", e);
            }
        }

        #[test]
        fn option_and_any(o in prop::option::of(0u32..4), b in any::<bool>()) {
            if let Some(x) = o {
                prop_assert!(x < 4);
            }
            let _ = b;
        }
    }
}
