//! Derive macros for the vendored `serde` stand-in.
//!
//! No `syn`/`quote` (the build environment is offline), so the input is
//! parsed directly from `proc_macro::TokenTree`s. Supported shapes — which
//! cover every type this workspace derives on:
//!
//! * structs with named fields (plus `#[serde(skip)]`: skipped on
//!   serialize, `Default::default()` on deserialize)
//! * enums with unit, tuple and struct variants
//! * no generic parameters
//!
//! Encoding: struct → map of field name → value; unit variant → its name as
//! a string; tuple variant → `{name: value}` (arity 1) or `{name: [values]}`;
//! struct variant → `{name: {fields}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => gen_struct_serialize(name, fields),
        Input::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Input::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// --- parsing -------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility to the `struct`/`enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct/enum found"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored stub");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => {
                panic!("serde_derive: `{name}` has no braced body (tuple/unit structs unsupported)")
            }
        }
    };

    if kind == "struct" {
        Input::Struct {
            name,
            fields: parse_fields(body),
        }
    } else {
        Input::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

/// Parse named fields from a brace-group stream.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Attributes.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let text = g.stream().to_string();
                if text.starts_with("serde") && text.contains("skip") {
                    skip = true;
                }
            }
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(fname)) = tokens.get(i) else {
            break;
        };
        let name = fname.to_string();
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Type tokens until a comma at angle-bracket depth 0. Commas inside
        // parenthesised groups are invisible here (they live in sub-groups),
        // but `<...>` is plain punctuation and needs explicit depth tracking.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Parse enum variants from a brace-group stream.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (doc comments etc.).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(vname)) = tokens.get(i) else {
            break;
        };
        let name = vname.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Count top-level comma-separated type positions in a tuple-variant body.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    arity += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

// --- code generation -----------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        pushes.push_str(&format!(
            "m.push((::serde::Content::Str(\"{0}\".to_string()), \
             ::serde::Serialize::to_content(&self.{0})));\n",
            f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n\
         let mut m: Vec<(::serde::Content, ::serde::Content)> = Vec::new();\n\
         {pushes}\
         let _ = &mut m;\n\
         ::serde::Content::Map(m)\n\
         }}\n}}\n"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            inits.push_str(&format!("{0}: ::serde::de_field(m, \"{0}\")?,\n", f.name));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         let m = c.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for {name}\"))?;\n\
         let _ = m;\n\
         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
         }}\n}}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
            )),
            VariantKind::Tuple(1) => arms.push_str(&format!(
                "{name}::{vn}(a0) => ::serde::Content::Map(vec![(\
                 ::serde::Content::Str(\"{vn}\".to_string()), \
                 ::serde::Serialize::to_content(a0))]),\n"
            )),
            VariantKind::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|k| format!("a{k}")).collect();
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({}) => ::serde::Content::Map(vec![(\
                     ::serde::Content::Str(\"{vn}\".to_string()), \
                     ::serde::Content::Seq(vec![{}]))]),\n",
                    binders.join(", "),
                    items.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let items: Vec<String> = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| {
                        format!(
                            "(::serde::Content::Str(\"{0}\".to_string()), \
                             ::serde::Serialize::to_content({0}))",
                            f.name
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(\
                     ::serde::Content::Str(\"{vn}\".to_string()), \
                     ::serde::Content::Map(vec![{}]))]),\n",
                    binders.join(", "),
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                 ::serde::Deserialize::from_content(v)?)),\n"
            )),
            VariantKind::Tuple(arity) => {
                let items: Vec<String> = (0..*arity)
                    .map(|k| format!("::serde::Deserialize::from_content(&s[{k}])?"))
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let s = v.as_seq().ok_or_else(|| ::serde::DeError::new(\"expected seq for {name}::{vn}\"))?;\n\
                     if s.len() != {arity} {{ return ::std::result::Result::Err(::serde::DeError::new(\"arity mismatch for {name}::{vn}\")); }}\n\
                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                     }}\n",
                    items.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: ::std::default::Default::default()", f.name)
                        } else {
                            format!("{0}: ::serde::de_field(fm, \"{0}\")?", f.name)
                        }
                    })
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let fm = v.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for {name}::{vn}\"))?;\n\
                     let _ = fm;\n\
                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                     }}\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         match c {{\n\
         ::serde::Content::Str(s) => match s.as_str() {{\n\
         {unit_arms}\
         other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown unit variant {{other}} for {name}\"))),\n\
         }},\n\
         ::serde::Content::Map(pairs) if pairs.len() == 1 => {{\n\
         let (k, v) = &pairs[0];\n\
         let _ = v;\n\
         let k = k.as_str().ok_or_else(|| ::serde::DeError::new(\"expected string variant key\"))?;\n\
         match k {{\n\
         {payload_arms}\
         other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant {{other}} for {name}\"))),\n\
         }}\n\
         }},\n\
         _ => ::std::result::Result::Err(::serde::DeError::new(\"expected variant encoding for {name}\")),\n\
         }}\n\
         }}\n}}\n"
    )
}
