//! Vendored offline stand-in for [crossbeam](https://docs.rs/crossbeam),
//! providing only `crossbeam::thread::scope` on top of `std::thread::scope`
//! (available since Rust 1.63, well under the workspace MSRV).

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Mirror of `crossbeam::thread::Scope`. Spawn closures receive a dummy
    /// `&()` in place of crossbeam's nested-scope handle, so existing
    /// `scope.spawn(move |_| ...)` call sites compile unchanged.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&()))
        }
    }

    /// Like crossbeam's `scope`: returns `Err` with the panic payload if the
    /// scope body (or an unjoined child) panicked, instead of unwinding.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawn_and_join() {
            let data = [1, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<i64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn panics_become_err() {
            let r = super::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                h.join()
            });
            // The child panic is captured by join(); the scope itself is Ok.
            assert!(r.unwrap().is_err());
        }
    }
}
