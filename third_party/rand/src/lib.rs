//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal implementation of exactly the API surface it uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] / [`rngs::SmallRng`],
//! and the [`Rng`] / [`RngExt`] method families (`random`, `random_bool`,
//! `random_range`). Everything is deterministic: both RNGs are xoshiro256++
//! seeded via SplitMix64, so seeded experiments reproduce byte-for-byte
//! across runs and platforms.

pub mod rngs;

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from raw RNG output (`rng.random()`).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Types `random_range` can sample uniformly. Mirrors rand's structure: one
/// generic [`SampleRange`] impl per range shape, so `0.2..1.5` infers `f64`
/// through the normal float-literal fallback instead of hitting impl
/// ambiguity.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = hi as i128 - lo as i128 + inclusive as i128;
                assert!(span > 0, "random_range: empty range");
                let off = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "random_range: empty range");
                } else {
                    assert!(lo < hi, "random_range: empty range");
                }
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by `random_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing RNG methods. Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Alias kept for `use rand::RngExt as _;` import sites. A re-export (not a
/// separate trait) so files importing both `Rng` and `RngExt` see a single
/// trait and method calls never become ambiguous.
pub use self::Rng as RngExt;

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y: usize = r.random_range(0usize..3);
            assert!(y < 3);
            let f: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: u8 = r.random_range(1u8..=6);
            assert!((1..=6).contains(&u));
        }
    }

    #[test]
    fn unit_floats() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
