//! Concrete RNGs: xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded RNG.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_splitmix(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_splitmix(state)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Same generator under the small-RNG name; distinct type so call sites that
/// name `SmallRng` keep compiling.
#[derive(Debug, Clone)]
pub struct SmallRng(StdRng);

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        SmallRng(StdRng::seed_from_u64(state))
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
