//! Vendored, dependency-free stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate implements a
//! deliberately small serialization framework under the `serde` names the
//! workspace imports. The data model is a single JSON-shaped tree
//! ([`Content`]); [`Serialize`] maps a value into it and [`Deserialize`]
//! back out. The companion `serde_derive` crate provides the
//! `#[derive(Serialize, Deserialize)]` macros (honouring `#[serde(skip)]`),
//! and `serde_json` renders/parses the tree as JSON text.
//!
//! Not a wire-compatible serde: only the API surface this workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key/value pairs in insertion order. Rendered as a JSON object when
    /// every key is a string, as an array of `[key, value]` pairs otherwise.
    Map(Vec<(Content, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view with lossless numeric coercions.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(i) => Some(*i),
            Content::U64(u) => i64::try_from(*u).ok(),
            Content::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::I64(i) => Some(*i as f64),
            Content::U64(u) => Some(*u as f64),
            Content::F64(f) => Some(*f),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Look up a struct field in a serialized map (derive-macro helper).
pub fn de_field<T: Deserialize>(map: &[(Content, Content)], name: &str) -> Result<T, DeError> {
    let found = map
        .iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == name));
    match found {
        Some((_, v)) => T::from_content(v),
        None => Err(DeError::new(format!("missing field `{name}`"))),
    }
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let i = c.as_i64().ok_or_else(|| {
                    DeError::new(concat!("expected integer for ", stringify!($t)))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_ser_de_uint64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::new("integer out of range")),
                    _ => {
                        let i = c.as_i64().ok_or_else(|| {
                            DeError::new(concat!("expected integer for ", stringify!($t)))
                        })?;
                        <$t>::try_from(i).map_err(|_| DeError::new("integer out of range"))
                    }
                }
            }
        }
    )*};
}
impl_ser_de_uint64!(u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(f64::NAN), // non-finite floats render as null
            _ => c
                .as_f64()
                .ok_or_else(|| DeError::new("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// --- containers ----------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::new("expected tuple sequence"))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if s.len() != LEN {
                    return Err(DeError::new("tuple length mismatch"));
                }
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )*};
}
impl_ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        map_pairs(c)?
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: order pairs by their rendered key.
        let mut pairs: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        pairs.sort_by_key(|a| content_sort_key(&a.0));
        Content::Map(pairs)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        map_pairs(c)?
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

/// Accept either a `Map` or a sequence of `[key, value]` pairs.
fn map_pairs(c: &Content) -> Result<impl Iterator<Item = (&Content, &Content)>, DeError> {
    match c {
        Content::Map(m) => Ok(MapPairs::Map(m.iter())),
        Content::Seq(s) => Ok(MapPairs::Seq(s.iter())),
        _ => Err(DeError::new("expected map")),
    }
}

enum MapPairs<'a> {
    Map(std::slice::Iter<'a, (Content, Content)>),
    Seq(std::slice::Iter<'a, Content>),
}

impl<'a> Iterator for MapPairs<'a> {
    type Item = (&'a Content, &'a Content);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            MapPairs::Map(it) => it.next().map(|(k, v)| (k, v)),
            MapPairs::Seq(it) => match it.next() {
                Some(Content::Seq(pair)) if pair.len() == 2 => Some((&pair[0], &pair[1])),
                _ => None,
            },
        }
    }
}

fn content_sort_key(c: &Content) -> String {
    match c {
        Content::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert_eq!(u32::from_content(&7u32.to_content()).unwrap(), 7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let c = v.to_content();
        assert_eq!(Vec::<(u32, String)>::from_content(&c).unwrap(), v);

        let o: Option<i64> = None;
        assert_eq!(Option::<i64>::from_content(&o.to_content()).unwrap(), None);

        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), 3i64);
        let c = m.to_content();
        assert_eq!(
            std::collections::BTreeMap::<String, i64>::from_content(&c).unwrap(),
            m
        );
    }

    #[test]
    fn float_as_int_coerces() {
        assert_eq!(i64::from_content(&Content::F64(2.0)).unwrap(), 2);
        assert!(i64::from_content(&Content::F64(2.5)).is_err());
        assert_eq!(f64::from_content(&Content::I64(3)).unwrap(), 3.0);
    }

    #[test]
    fn missing_field_reported() {
        let m = vec![(Content::Str("a".into()), Content::I64(1))];
        assert_eq!(de_field::<i64>(&m, "a").unwrap(), 1);
        assert!(de_field::<i64>(&m, "b").is_err());
    }
}
