//! Vendored offline stand-in for [serde_json](https://docs.rs/serde_json).
//!
//! Renders the vendored serde [`Content`] tree as JSON text and parses it
//! back. Maps whose keys are all strings become JSON objects; maps with
//! non-string keys become arrays of `[key, value]` pairs (which the serde
//! side accepts back for map deserialization). Non-finite floats serialize
//! as `null` and deserialize as NaN, mirroring real serde_json's lossy float
//! behaviour closely enough for this workspace's snapshots.

use serde::{Content, DeError, Deserialize, Serialize};

/// JSON error (both directions).
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

// --- writer --------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => write_f64(out, *f),
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            write_delimited(out, items.len(), '[', ']', indent, depth, |out, i, d| {
                write_content(out, &items[i], indent, d)
            })
        }
        Content::Map(pairs) => {
            let all_str_keys = pairs.iter().all(|(k, _)| matches!(k, Content::Str(_)));
            if all_str_keys {
                write_delimited(out, pairs.len(), '{', '}', indent, depth, |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_content(out, k, indent, d);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_content(out, v, indent, d)
                })
            } else {
                write_delimited(out, pairs.len(), '[', ']', indent, depth, |out, i, d| {
                    let (k, v) = &pairs[i];
                    out.push('[');
                    write_content(out, k, indent, d);
                    out.push(',');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_content(out, v, indent, d);
                    out.push(']')
                })
            }
        }
    }
}

fn write_delimited(
    out: &mut String,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep an explicit fraction so the value re-parses as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.expect(b'{')?;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(pairs));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len() && !matches!(self.bytes[self.pos], b'"' | b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's snapshots; reject them explicitly.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported \\u surrogate"))?;
                            s.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn integral_floats_keep_their_floatness() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Vec<i64>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<i64>>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("x".to_string(), 1i64);
        m.insert("y".to_string(), 2i64);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"x":1,"y":2}"#);
        let back: std::collections::BTreeMap<String, i64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn non_string_keys_become_pair_arrays() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(7i64, "seven".to_string());
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"[[7,"seven"]]"#);
        let back: std::collections::BTreeMap<i64, String> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_is_indented_and_reparses() {
        let v = vec![1i64, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
        assert_eq!(from_str::<Vec<i64>>(&s).unwrap(), v);
    }
}
