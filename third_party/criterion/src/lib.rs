//! Vendored offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! Covers the API surface the workspace's benches use: `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `BenchmarkGroup::
//! {sample_size, bench_function, finish}` and `Bencher::iter`.
//!
//! Measurement model: after a short warm-up, each sample runs the closure
//! enough times for the sample to take ~2 ms, and `sample_size` samples are
//! collected (capped by a per-benchmark time budget). The min / median / max
//! per-iteration times are printed in criterion's familiar
//! `name  time: [lo mid hi]` layout so existing tooling that greps bench
//! output keeps working. No statistical analysis, no HTML reports.

use std::time::{Duration, Instant};

const WARMUP_BUDGET: Duration = Duration::from_millis(300);
const SAMPLE_TARGET: Duration = Duration::from_millis(2);
const BENCH_BUDGET: Duration = Duration::from_secs(5);

pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards harness args such as `--bench`; the first
        // non-flag argument (if any) is treated as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            filter: self.filter.clone(),
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
    filter: Option<String>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(flt) = &self.filter {
            if !full.contains(flt.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&full, &b.samples);
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    /// Per-iteration time of each collected sample, in seconds.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the budget elapses, tracking per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_sample =
            ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);

        let bench_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
            if bench_start.elapsed() > BENCH_BUDGET && self.samples.len() >= 2 {
                break;
            }
        }
    }
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<40} time: [no samples]");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let lo = sorted[0];
    let mid = sorted[sorted.len() / 2];
    let hi = sorted[sorted.len() - 1];
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(mid),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// `criterion_group!(name, target1, target2, ...)` — a function running each
/// target against a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// `criterion_main!(group1, ...)` — the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

/// Re-export shim: older criterion exposed its own `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_picks_unit() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
