//! Property tests: the tiled/vectorized kernels are **bit-identical** to the
//! retained naive references across randomized shapes.
//!
//! This is the kernel layer's numerics contract (see `kernels` module docs):
//! every output element is an `f32::mul_add` chain in ascending
//! shared-dimension order seeded at +0.0, and vectorization only
//! parallelizes *independent* elements. So no tolerance is needed — results
//! are compared with `assert_eq!` on the raw f32 bits, including signed
//! zeros and edge tiles. Random shapes span 0..70, which straddles every
//! tile boundary (MR = 4, NR = 64, NR_EDGE = 8) and includes empty
//! matrices; a curated grid below pins the exact boundary shapes that
//! random draws might miss.

use asqp_nn::kernels::{self, reference, EpilogueAct};
use asqp_nn::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random f32s with varied magnitudes (exact ±0.0, tiny, and moderate
/// values) so rounding behaviour, not just happy-path data, is exercised.
fn rand_vals(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| match rng.random_range(0..8u32) {
            0 => 0.0f32,
            1 => -0.0f32,
            2 => rng.random_range(-1e-6f32..1e-6),
            _ => rng.random_range(-8.0f32..8.0),
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn check_gemm(m: usize, k: usize, n: usize, rng: &mut StdRng) {
    let a = rand_vals(rng, m * k);
    let b = rand_vals(rng, k * n);
    let mut fast = vec![0.0f32; m * n];
    let mut naive = vec![0.0f32; m * n];
    kernels::gemm_raw(m, k, n, &a, &b, &mut fast);
    reference::matmul(m, k, n, &a, &b, &mut naive);
    assert_eq!(bits(&fast), bits(&naive), "gemm ({m},{k},{n})");
}

fn check_fused(m: usize, k: usize, n: usize, which: usize, rng: &mut StdRng) {
    let a = rand_vals(rng, m * k);
    let w = rand_vals(rng, k * n);
    let bias_vals = rand_vals(rng, n);
    let bias = (which != 0).then_some(bias_vals.as_slice());
    let act = match which {
        0 => EpilogueAct::Identity,
        1 => EpilogueAct::Relu,
        _ => EpilogueAct::Tanh,
    };
    let mut fast = vec![0.0f32; m * n];
    let mut naive = vec![0.0f32; m * n];
    kernels::fused_linear_into(m, k, n, &a, &w, bias, act, &mut fast);
    reference::fused_linear(m, k, n, &a, &w, bias, act, &mut naive);
    assert_eq!(bits(&fast), bits(&naive), "fused ({m},{k},{n}) act {which}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_bit_identical_to_reference(
        (m, k, n) in (0usize..70, 0usize..70, 0usize..70),
        seed in any::<u64>(),
    ) {
        check_gemm(m, k, n, &mut StdRng::seed_from_u64(seed));
    }

    #[test]
    fn fused_linear_bit_identical_to_reference(
        (m, k, n) in (0usize..70, 0usize..70, 0usize..70),
        which in 0usize..3,
        seed in any::<u64>(),
    ) {
        check_fused(m, k, n, which, &mut StdRng::seed_from_u64(seed));
    }

    /// `Matrix::t_matmul` (transpose + blocked GEMM) vs the transpose-free
    /// naive r-order loop.
    #[test]
    fn t_matmul_bit_identical_to_reference(
        (r, m, n) in (0usize..70, 0usize..70, 0usize..70),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_vals(&mut rng, r * m);
        let b = rand_vals(&mut rng, r * n);
        let fast = Matrix::from_vec(r, m, a.clone()).t_matmul(&Matrix::from_vec(r, n, b.clone()));
        let mut naive = vec![0.0f32; m * n];
        reference::t_matmul(r, m, n, &a, &b, &mut naive);
        prop_assert_eq!(bits(fast.data()), bits(&naive), "t_matmul ({},{},{})", r, m, n);
    }

    /// `Matrix::matmul_t` (transpose RHS + blocked GEMM) vs the naive
    /// k-ordered dot products.
    #[test]
    fn matmul_t_bit_identical_to_reference(
        (m, k, n) in (0usize..70, 0usize..70, 0usize..70),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_vals(&mut rng, m * k);
        let b = rand_vals(&mut rng, n * k);
        let fast = Matrix::from_vec(m, k, a.clone()).matmul_t(&Matrix::from_vec(n, k, b.clone()));
        let mut naive = vec![0.0f32; m * n];
        reference::matmul_t(m, k, n, &a, &b, &mut naive);
        prop_assert_eq!(bits(fast.data()), bits(&naive), "matmul_t ({},{},{})", m, k, n);
    }

    #[test]
    fn transpose_round_trips(
        (r, c) in (0usize..70, 0usize..70),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_vals(&mut rng, r * c);
        let back = Matrix::from_vec(r, c, a.clone()).transpose().transpose();
        prop_assert_eq!(bits(back.data()), bits(&a), "transpose ({},{})", r, c);
    }
}

/// Exact tile-boundary shapes (±1 around MR = 4, NR_EDGE = 8, NR = 64) that
/// uniform random draws are unlikely to all hit in one run.
#[test]
fn gemm_pinned_tile_boundaries() {
    let mut rng = StdRng::seed_from_u64(0xA5);
    for &m in &[1usize, 3, 4, 5, 17] {
        for &k in &[1usize, 7, 31] {
            for &n in &[1usize, 7, 8, 9, 63, 64, 65, 127, 128, 129] {
                check_gemm(m, k, n, &mut rng);
                check_fused(m, k, n, (m + n) % 3, &mut rng);
            }
        }
    }
}

/// Explicit empty-matrix cases (random draws may or may not produce them).
#[test]
fn empty_dims_are_noops() {
    for (m, k, n) in [(0, 5, 5), (5, 0, 5), (5, 5, 0), (0, 0, 0)] {
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut fast = vec![f32::NAN; m * n];
        let mut naive = vec![f32::NAN; m * n];
        kernels::gemm_raw(m, k, n, &a, &b, &mut fast);
        reference::matmul(m, k, n, &a, &b, &mut naive);
        assert_eq!(bits(&fast), bits(&naive), "({m},{k},{n})");
        // k = 0 must still zero the output, not leave NaNs behind.
        assert!(fast.iter().all(|x| *x == 0.0), "({m},{k},{n})");
    }
}
