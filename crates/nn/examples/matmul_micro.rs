//! Matmul micro-bench, tiled kernel vs the retained naive reference:
//! `cargo run --release -p asqp-nn --example matmul_micro`.
//!
//! Both sides run in the same process back to back, so the reported ratio
//! is insulated from machine-frequency drift between runs.

use asqp_nn::{kernels, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

fn median_ns(mut f: impl FnMut(), warmup: usize, samples: usize) -> u128 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    times[times.len() / 2]
}

/// The pre-kernel-layer `Matrix::matmul` loop, verbatim: plain mul/add ikj
/// with a per-element zero-skip branch. Kept here (not in the library) as
/// the honest "before" side of the speedup ratio. Note this is *not*
/// `kernels::reference::matmul` — the reference uses `f32::mul_add`, which
/// at baseline ISA compiles to a libm `fmaf` call and would overstate the
/// speedup ~20×.
fn pre_pr_matmul(n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    out.fill(0.0);
    for i in 0..n {
        for k in 0..n {
            let av = a[i * n + k];
            if av == 0.0 {
                continue;
            }
            let brow = &b[k * n..(k + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 256;
    let a = Matrix::kaiming(n, n, &mut rng);
    let b = Matrix::kaiming(n, n, &mut rng);
    let flops = 2.0 * (n as f64).powi(3);

    let tiled = median_ns(
        || {
            black_box(a.matmul(&b));
        },
        3,
        9,
    );
    let mut naive_out = vec![0.0f32; n * n];
    let before = median_ns(
        || {
            pre_pr_matmul(n, a.data(), b.data(), &mut naive_out);
            black_box(naive_out[0]);
        },
        2,
        5,
    );
    let reference = median_ns(
        || {
            kernels::reference::matmul(n, n, n, a.data(), b.data(), &mut naive_out);
            black_box(naive_out[0]);
        },
        1,
        3,
    );
    println!(
        "matmul {n}x{n}x{n}: tiled {:.3} ms ({:.2} GFLOP/s)  pre-PR naive {:.3} ms ({:.2} GFLOP/s)  speedup {:.2}x",
        tiled as f64 / 1e6,
        flops / tiled as f64,
        before as f64 / 1e6,
        flops / before as f64,
        before as f64 / tiled as f64
    );
    println!(
        "mul_add reference (bit-exact oracle, not a perf baseline): {:.3} ms",
        reference as f64 / 1e6
    );

    let t = median_ns(
        || {
            black_box(a.t_matmul(&b));
        },
        2,
        5,
    );
    println!("t_matmul: {:.3} ms", t as f64 / 1e6);
    let t = median_ns(
        || {
            black_box(a.matmul_t(&b));
        },
        2,
        5,
    );
    println!("matmul_t: {:.3} ms", t as f64 / 1e6);
}
