//! A small variational autoencoder over dense feature vectors.
//!
//! This is the substrate for the paper's **VAE / gAQP baseline**
//! (Thirumuruganathan et al., ICDE 2020): tuples are encoded as numeric
//! feature vectors, the VAE learns their distribution, and synthetic tuples
//! are decoded from latent samples. The ASQP-RL evaluation uses it as the
//! representative generative-model competitor.

use crate::matrix::Matrix;
use crate::mlp::{Activation, Mlp};
use crate::optim::Adam;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Standard-normal sample via Box–Muller (keeps `rand_distr` out of this
/// crate's dependencies).
pub fn randn(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0f32 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// VAE configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VaeConfig {
    pub input_dim: usize,
    pub hidden_dim: usize,
    pub latent_dim: usize,
    pub learning_rate: f32,
    /// Weight of the KL term (β-VAE style; 1.0 = classic ELBO).
    pub beta: f32,
}

impl VaeConfig {
    pub fn new(input_dim: usize, latent_dim: usize) -> Self {
        VaeConfig {
            input_dim,
            hidden_dim: (input_dim * 2).max(16),
            latent_dim,
            learning_rate: 1e-3,
            beta: 1.0,
        }
    }
}

/// Encoder (x → μ, log σ²), decoder (z → x̂), trained with the
/// reparameterisation trick and MSE reconstruction loss.
#[derive(Debug, Clone)]
pub struct Vae {
    pub config: VaeConfig,
    encoder: Mlp,
    decoder: Mlp,
    enc_opt: Adam,
    dec_opt: Adam,
}

impl Vae {
    pub fn new(config: VaeConfig, rng: &mut impl Rng) -> Self {
        let encoder = Mlp::new(
            &[config.input_dim, config.hidden_dim, config.latent_dim * 2],
            Activation::Relu,
            rng,
        );
        let decoder = Mlp::new(
            &[config.latent_dim, config.hidden_dim, config.input_dim],
            Activation::Relu,
            rng,
        );
        let enc_opt = Adam::new(config.learning_rate).with_max_grad_norm(Some(5.0));
        let dec_opt = Adam::new(config.learning_rate).with_max_grad_norm(Some(5.0));
        Vae {
            config,
            encoder,
            decoder,
            enc_opt,
            dec_opt,
        }
    }

    /// One gradient step on a batch (rows = samples). Returns
    /// `(reconstruction_mse, kl)` for monitoring.
    pub fn train_step(&mut self, batch: &Matrix, rng: &mut impl Rng) -> (f32, f32) {
        let n = batch.rows() as f32;
        let z_dim = self.config.latent_dim;

        self.encoder.zero_grad();
        self.decoder.zero_grad();

        // Encode.
        let enc_out = self.encoder.forward(batch); // [n, 2z]
        let mut mu = Matrix::zeros(batch.rows(), z_dim);
        let mut logvar = Matrix::zeros(batch.rows(), z_dim);
        for r in 0..batch.rows() {
            for c in 0..z_dim {
                *mu.at_mut(r, c) = enc_out.at(r, c);
                // Clamp for numeric stability.
                *logvar.at_mut(r, c) = enc_out.at(r, z_dim + c).clamp(-8.0, 8.0);
            }
        }

        // Reparameterise: z = mu + eps * exp(logvar/2).
        let mut eps = Matrix::zeros(batch.rows(), z_dim);
        for v in eps.data_mut() {
            *v = randn(rng);
        }
        let sigma = logvar.map(|lv| (0.5 * lv).exp());
        let z = mu.add(&eps.hadamard(&sigma));

        // Decode.
        let recon = self.decoder.forward(&z);

        // Losses.
        let diff = recon.sub(batch);
        let mse = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
        let kl = {
            let mut s = 0.0;
            for r in 0..batch.rows() {
                for c in 0..z_dim {
                    let m = mu.at(r, c);
                    let lv = logvar.at(r, c);
                    s += -0.5 * (1.0 + lv - m * m - lv.exp());
                }
            }
            s / n
        };

        // Backprop. dMSE/drecon = 2*diff / n.
        let drecon = diff.scale(2.0 / n);
        let dz = self.decoder.backward(&drecon);

        // Through reparameterisation + KL into the encoder head.
        let beta = self.config.beta;
        let mut denc = Matrix::zeros(batch.rows(), 2 * z_dim);
        for r in 0..batch.rows() {
            for c in 0..z_dim {
                let m = mu.at(r, c);
                let lv = logvar.at(r, c);
                let e = eps.at(r, c);
                let dzd = dz.at(r, c);
                // d(z)/d(mu) = 1 ; d(z)/d(logvar) = eps * 0.5 * exp(logvar/2)
                let dmu = dzd + beta * m / n;
                let dlv = dzd * e * 0.5 * (0.5 * lv).exp() + beta * (-0.5) * (1.0 - lv.exp()) / n;
                *denc.at_mut(r, c) = dmu;
                *denc.at_mut(r, z_dim + c) = dlv;
            }
        }
        self.encoder.backward(&denc);

        self.enc_opt.step(self.encoder.params_and_grads());
        self.dec_opt.step(self.decoder.params_and_grads());
        (mse, kl)
    }

    /// Train for `epochs` over `data` with the given batch size.
    pub fn fit(
        &mut self,
        data: &Matrix,
        epochs: usize,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Vec<(f32, f32)> {
        let n = data.rows();
        let mut history = Vec::with_capacity(epochs);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..epochs {
            // Shuffle sample order.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_mse = 0.0;
            let mut epoch_kl = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size.max(1)) {
                let mut batch = Matrix::zeros(chunk.len(), data.cols());
                for (bi, &ri) in chunk.iter().enumerate() {
                    batch.row_mut(bi).copy_from_slice(data.row(ri));
                }
                let (mse, kl) = self.train_step(&batch, rng);
                epoch_mse += mse;
                epoch_kl += kl;
                batches += 1;
            }
            history.push((
                epoch_mse / batches.max(1) as f32,
                epoch_kl / batches.max(1) as f32,
            ));
        }
        history
    }

    /// Decode `count` latent samples into synthetic feature vectors.
    pub fn sample(&self, count: usize, rng: &mut impl Rng) -> Matrix {
        let mut z = Matrix::zeros(count, self.config.latent_dim);
        for v in z.data_mut() {
            *v = randn(rng);
        }
        self.decoder.infer(&z)
    }

    /// Encode then decode (reconstruction without sampling noise: z = μ).
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        let enc = self.encoder.infer(x);
        let mut mu = Matrix::zeros(x.rows(), self.config.latent_dim);
        for r in 0..x.rows() {
            for c in 0..self.config.latent_dim {
                *mu.at_mut(r, c) = enc.at(r, c);
            }
        }
        self.decoder.infer(&mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f32> = (0..20000).map(|_| randn(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn vae_learns_a_simple_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        // Two clusters in 4-D.
        let n = 200;
        let mut data = Matrix::zeros(n, 4);
        for r in 0..n {
            let center = if r % 2 == 0 { 1.0 } else { -1.0 };
            for c in 0..4 {
                *data.at_mut(r, c) = center + 0.05 * randn(&mut rng);
            }
        }
        let mut vae = Vae::new(VaeConfig::new(4, 2), &mut rng);
        let history = vae.fit(&data, 60, 32, &mut rng);
        let first = history.first().unwrap().0;
        let last = history.last().unwrap().0;
        assert!(
            last < first * 0.5,
            "reconstruction should improve: {first} -> {last}"
        );

        // Samples should land near one of the two cluster centres.
        let samples = vae.sample(50, &mut rng);
        let near = samples
            .data()
            .chunks(4)
            .filter(|row| {
                let m = row.iter().sum::<f32>() / 4.0;
                (m.abs() - 1.0).abs() < 0.8
            })
            .count();
        assert!(near > 25, "only {near}/50 samples near a cluster");
    }

    #[test]
    fn reconstruct_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let vae = Vae::new(VaeConfig::new(6, 3), &mut rng);
        let x = Matrix::zeros(5, 6);
        let r = vae.reconstruct(&x);
        assert_eq!(r.shape(), (5, 6));
    }
}
