//! Adam optimiser with optional global-norm gradient clipping.

use serde::{Deserialize, Serialize};

/// Adam (Kingma & Ba 2015) over a fixed flat parameter layout.
///
/// The optimiser is created lazily on the first `step`: moment buffers are
/// sized from the gradients it sees, and the parameter layout must stay
/// identical across steps (it always does — models never change shape).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// When set, gradients are rescaled so their global L2 norm is at most
    /// this value (standard PPO practice).
    pub max_grad_norm: Option<f32>,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            max_grad_norm: Some(0.5),
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    pub fn with_max_grad_norm(mut self, norm: Option<f32>) -> Self {
        self.max_grad_norm = norm;
        self
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    pub fn steps_taken(&self) -> u64 {
        self.t
    }

    /// Apply one update to `(param, grad)` pairs (as produced by
    /// [`crate::Mlp::params_and_grads`]).
    pub fn step(&mut self, mut params: Vec<(&mut [f32], Vec<f32>)>) {
        if self.m.is_empty() {
            self.m = params.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|(p, _)| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter layout changed");

        // Global-norm clip.
        if let Some(max) = self.max_grad_norm {
            let norm: f32 = params
                .iter()
                .flat_map(|(_, g)| g.iter().map(|x| x * x))
                .sum::<f32>()
                .sqrt();
            if norm > max && norm > 0.0 {
                let s = max / norm;
                for (_, g) in params.iter_mut() {
                    for x in g.iter_mut() {
                        *x *= s;
                    }
                }
            }
        }

        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, (p, g)) in params.into_iter().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            for i in 0..p.len() {
                let gi = g[i];
                if !gi.is_finite() {
                    continue; // guard against exploding batches
                }
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * gi;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * gi * gi;
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 — Adam should converge to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(0.1).with_max_grad_norm(None);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(vec![(&mut x, g)]);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn grad_clipping_limits_update() {
        let mut a = vec![0.0f32];
        let mut opt_clip = Adam::new(0.1).with_max_grad_norm(Some(0.001));
        opt_clip.step(vec![(&mut a, vec![1000.0])]);
        // Clipped gradient is tiny, but Adam normalises by sqrt(v), so the
        // step is ~lr in magnitude either way. The real check: internal
        // moments reflect the clipped gradient, not 1000.
        assert!(opt_clip.m[0][0].abs() <= 0.001 * (1.0 - 0.9) + 1e-6);
    }

    #[test]
    fn non_finite_gradients_skipped() {
        let mut x = vec![1.0f32];
        let mut opt = Adam::new(0.1);
        opt.step(vec![(&mut x, vec![f32::NAN])]);
        assert_eq!(x[0], 1.0);
        assert!(x[0].is_finite());
    }

    #[test]
    fn step_counter_advances() {
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.steps_taken(), 0);
        opt.step(vec![(&mut x, vec![1.0])]);
        opt.step(vec![(&mut x, vec![1.0])]);
        assert_eq!(opt.steps_taken(), 2);
    }

    #[test]
    #[should_panic(expected = "parameter layout changed")]
    fn layout_change_panics() {
        let mut x = vec![0.0f32];
        let mut y = vec![0.0f32, 0.0];
        let mut opt = Adam::new(0.01);
        opt.step(vec![(&mut x, vec![1.0])]);
        opt.step(vec![(&mut x, vec![1.0]), (&mut y, vec![1.0, 1.0])]);
    }
}
