//! # asqp-nn — minimal dense neural-network library
//!
//! From-scratch substrate replacing PyTorch in the ASQP-RL reproduction:
//!
//! * [`Matrix`] — row-major f32 matrices with the handful of ops backprop
//!   needs (`matmul`, transpose-fused variants, broadcasts)
//! * [`kernels`] — the compute layer under `Matrix`: cache-blocked,
//!   register-tiled GEMM with runtime AVX2/AVX-512 dispatch, a fused
//!   linear+bias+activation epilogue, and bit-exact naive references
//! * [`Mlp`] / [`Linear`] — fully-connected stacks with manual
//!   backpropagation (gradient-checked against finite differences)
//! * [`Adam`] — Adam with global-norm gradient clipping
//! * [`func`] — stable softmax, masked categorical sampling, entropy
//! * [`Vae`] — variational autoencoder used by the generative-model baseline
//!
//! Everything is deterministic given a seeded `rand::Rng`.

pub mod func;
pub mod kernels;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod vae;

pub use func::{
    argmax, entropy, log_softmax, mask_logits, sample_categorical, softmax_in_place, softmax_rows,
};
pub use matrix::Matrix;
pub use mlp::{Activation, LayerGrads, Linear, Mlp, MlpTape};
pub use optim::Adam;
pub use vae::{randn, Vae, VaeConfig};
