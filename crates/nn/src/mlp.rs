//! Multi-layer perceptrons with manual backpropagation.
//!
//! The paper's actor and critic are "an input layer matching the action
//! space's size, followed by smaller fully-connected layers" (§5.1); this
//! module provides exactly that, plus the gradients PPO needs.

use crate::kernels::{self, EpilogueAct};
use crate::matrix::Matrix;
use asqp_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Activation applied after a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Relu,
    Tanh,
    Identity,
}

impl Activation {
    fn epilogue(self) -> EpilogueAct {
        match self {
            Activation::Relu => EpilogueAct::Relu,
            Activation::Tanh => EpilogueAct::Tanh,
            Activation::Identity => EpilogueAct::Identity,
        }
    }

    /// dL/dx given dL/dy and the *activated output* y.
    fn backward(self, dy: &Matrix, y: &Matrix) -> Matrix {
        match self {
            Activation::Relu => dy.zip_map(y, |g, out| if out > 0.0 { g } else { 0.0 }),
            Activation::Tanh => dy.zip_map(y, |g, out| g * (1.0 - out * out)),
            Activation::Identity => dy.clone(),
        }
    }
}

/// Per-layer saved activations from an immutable forward pass
/// ([`Mlp::forward_tape`]): the chain of layer inputs/outputs needed by
/// [`Mlp::backward_tape`]. Owning the tape (instead of stashing caches
/// inside the model, as the `&mut self` API does) is what lets several
/// threads compute gradients against one shared `&Mlp` concurrently.
#[derive(Debug, Clone)]
pub struct MlpTape {
    /// `acts[0]` is the network input, `acts[i + 1]` the activated output
    /// of layer `i`.
    acts: Vec<Matrix>,
}

impl MlpTape {
    /// The forward pass's final output.
    pub fn output(&self) -> &Matrix {
        self.acts.last().expect("tape always holds the input")
    }
}

/// Gradients for one [`Linear`] layer, produced by [`Mlp::backward_tape`].
#[derive(Debug, Clone)]
pub struct LayerGrads {
    pub gw: Matrix,
    pub gb: Matrix,
}

impl LayerGrads {
    /// Elementwise accumulate `other` into `self`. Callers that reduce
    /// shard gradients must invoke this in a fixed shard order — f32
    /// addition is not associative, and byte-determinism of the sharded
    /// PPO update rests on this ordering.
    pub fn accumulate(&mut self, other: &LayerGrads) {
        debug_assert_eq!(self.gw.shape(), other.gw.shape());
        debug_assert_eq!(self.gb.shape(), other.gb.shape());
        for (a, b) in self.gw.data_mut().iter_mut().zip(other.gw.data()) {
            *a += b;
        }
        for (a, b) in self.gb.data_mut().iter_mut().zip(other.gb.data()) {
            *a += b;
        }
    }
}

/// One fully-connected layer `y = act(x W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    pub w: Matrix,
    pub b: Matrix,
    pub act: Activation,
    #[serde(skip)]
    grad_w: Option<Matrix>,
    #[serde(skip)]
    grad_b: Option<Matrix>,
    #[serde(skip)]
    cache_x: Option<Matrix>,
    #[serde(skip)]
    cache_y: Option<Matrix>,
}

impl Linear {
    pub fn new(inputs: usize, outputs: usize, act: Activation, rng: &mut impl rand::Rng) -> Self {
        Linear {
            w: Matrix::kaiming(inputs, outputs, rng),
            b: Matrix::zeros(1, outputs),
            act,
            grad_w: None,
            grad_b: None,
            cache_x: None,
            cache_y: None,
        }
    }

    /// `act(x W + b)` through the fused kernel: one GEMM + one epilogue
    /// sweep, a single output allocation, no intermediate matrices.
    fn fused_out(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.w.rows(),
            "layer input width {} != weight rows {}",
            x.cols(),
            self.w.rows()
        );
        let mut out = Matrix::zeros(x.rows(), self.w.cols());
        kernels::fused_linear_into(
            x.rows(),
            x.cols(),
            self.w.cols(),
            x.data(),
            self.w.data(),
            Some(self.b.data()),
            self.act.epilogue(),
            out.data_mut(),
        );
        out
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = self.fused_out(x);
        self.cache_x = Some(x.clone());
        self.cache_y = Some(y.clone());
        y
    }

    /// Inference-only forward: no caches, `&self`.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.fused_out(x)
    }

    /// Single-row inference fast path: `out = act(x W + b)` written straight
    /// into a reusable buffer — no `Matrix` wrappers, no per-layer
    /// allocations once `out`'s capacity has warmed up. Bit-identical to
    /// [`Linear::infer`] on a 1-row matrix (same kernel, same order).
    pub fn infer_row_into(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.w.rows(), "row width != weight rows");
        out.clear();
        out.resize(self.w.cols(), 0.0);
        kernels::fused_linear_into(
            1,
            x.len(),
            self.w.cols(),
            x,
            self.w.data(),
            Some(self.b.data()),
            self.act.epilogue(),
            out,
        );
    }

    /// Backprop: accumulate dW, db; return dX.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let y = self.cache_y.as_ref().expect("forward before backward");
        let dz = self.act.backward(dy, y);
        let gw = x.t_matmul(&dz);
        let gb = dz.sum_rows();
        match &mut self.grad_w {
            Some(g) => *g = g.add(&gw),
            None => self.grad_w = Some(gw),
        }
        match &mut self.grad_b {
            Some(g) => *g = g.add(&gb),
            None => self.grad_b = Some(gb),
        }
        dz.matmul_t(&self.w)
    }

    pub fn zero_grad(&mut self) {
        self.grad_w = None;
        self.grad_b = None;
    }

    /// (parameter, gradient) pairs; gradient slices are zeros when no
    /// backward pass has run since the last `zero_grad`.
    pub fn params_and_grads(&mut self) -> Vec<(&mut [f32], Vec<f32>)> {
        let gw = self
            .grad_w
            .as_ref()
            .map(|g| g.data().to_vec())
            .unwrap_or_else(|| vec![0.0; self.w.data().len()]);
        let gb = self
            .grad_b
            .as_ref()
            .map(|g| g.data().to_vec())
            .unwrap_or_else(|| vec![0.0; self.b.data().len()]);
        vec![(self.w.data_mut(), gw), (self.b.data_mut(), gb)]
    }

    pub fn param_count(&self) -> usize {
        self.w.data().len() + self.b.data().len()
    }
}

/// A stack of [`Linear`] layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// `sizes = [in, h1, ..., out]`; hidden layers use `hidden_act`, the
    /// output layer is linear (softmax/MSE heads live outside the MLP).
    pub fn new(sizes: &[usize], hidden_act: Activation, rng: &mut impl rand::Rng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i + 2 == sizes.len() {
                Activation::Identity
            } else {
                hidden_act
            };
            layers.push(Linear::new(sizes[i], sizes[i + 1], act, rng));
        }
        Mlp { layers }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let t = telemetry::enabled().then(Instant::now);
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h);
        }
        if let Some(t) = t {
            telemetry::observe_duration("nn.forward_ns", t.elapsed());
        }
        h
    }

    pub fn infer(&self, x: &Matrix) -> Matrix {
        let t = telemetry::enabled().then(Instant::now);
        let mut h = x.clone();
        for l in &self.layers {
            h = l.infer(&h);
        }
        if let Some(t) = t {
            telemetry::observe_duration("nn.forward_ns", t.elapsed());
        }
        h
    }

    /// Single-row inference fast path: runs the whole stack on one state
    /// vector through [`Linear::infer_row_into`] with two ping-pong
    /// buffers — no `Matrix` allocation per layer. Bit-identical to
    /// [`Mlp::infer`] on a 1-row matrix.
    ///
    /// Deliberately untimed: this is the rollout hot path, called once per
    /// environment step, and even a branch-on-disabled telemetry probe is
    /// measurable there.
    pub fn infer_row(&self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for l in &self.layers {
            l.infer_row_into(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let t = telemetry::enabled().then(Instant::now);
        let mut g = dy.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        if let Some(t) = t {
            telemetry::observe_duration("nn.backward_ns", t.elapsed());
        }
        g
    }

    /// Immutable forward pass that records the activation chain needed for
    /// [`Mlp::backward_tape`]. Unlike [`Mlp::forward`] this takes `&self`,
    /// so many threads can run tapes against one shared model — the basis
    /// of the sharded PPO update.
    pub fn forward_tape(&self, x: &Matrix) -> MlpTape {
        let t = telemetry::enabled().then(Instant::now);
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for l in &self.layers {
            let y = l.infer(acts.last().expect("acts starts non-empty"));
            acts.push(y);
        }
        if let Some(t) = t {
            telemetry::observe_duration("nn.forward_ns", t.elapsed());
        }
        MlpTape { acts }
    }

    /// Backprop against a tape from [`Mlp::forward_tape`]; returns one
    /// [`LayerGrads`] per layer (same order as `self.layers`). Does not
    /// touch the model's internal gradient accumulators, so concurrent
    /// calls on `&self` are safe. The per-layer math is the same as
    /// [`Linear::backward`], so results are bit-identical to the mutable
    /// path given the same inputs. The dX of layer 0 is never needed by
    /// the trainer, so it is skipped.
    pub fn backward_tape(&self, tape: &MlpTape, dy: &Matrix) -> Vec<LayerGrads> {
        let t = telemetry::enabled().then(Instant::now);
        assert_eq!(
            tape.acts.len(),
            self.layers.len() + 1,
            "tape does not match this model"
        );
        let mut rev_grads = Vec::with_capacity(self.layers.len());
        let mut g = dy.clone();
        for (i, l) in self.layers.iter().enumerate().rev() {
            let x = &tape.acts[i];
            let y = &tape.acts[i + 1];
            let dz = l.act.backward(&g, y);
            let gw = x.t_matmul(&dz);
            let gb = dz.sum_rows();
            if i > 0 {
                g = dz.matmul_t(&l.w);
            }
            rev_grads.push(LayerGrads { gw, gb });
        }
        rev_grads.reverse();
        if let Some(t) = t {
            telemetry::observe_duration("nn.backward_ns", t.elapsed());
        }
        rev_grads
    }

    /// (parameter, gradient) pairs for [`crate::Adam`], built from
    /// externally-reduced tape gradients. Same parameter layout/order as
    /// [`Mlp::params_and_grads`], so an optimizer's moment state carries
    /// over between the two APIs.
    pub fn params_with_grads(&mut self, grads: &[LayerGrads]) -> Vec<(&mut [f32], Vec<f32>)> {
        assert_eq!(grads.len(), self.layers.len(), "one LayerGrads per layer");
        self.layers
            .iter_mut()
            .zip(grads)
            .flat_map(|(l, g)| {
                [
                    (l.w.data_mut(), g.gw.data().to_vec()),
                    (l.b.data_mut(), g.gb.data().to_vec()),
                ]
            })
            .collect()
    }

    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    pub fn params_and_grads(&mut self) -> Vec<(&mut [f32], Vec<f32>)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check on a scalar loss L = sum(mlp(x)).
    #[test]
    fn gradient_check_against_finite_differences() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut mlp = Mlp::new(&[3, 4, 2], Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);

        // Analytic gradients: dL/dy = ones.
        mlp.zero_grad();
        let y = mlp.forward(&x);
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        mlp.backward(&dy);
        let analytic: Vec<Vec<f32>> = mlp.params_and_grads().into_iter().map(|(_, g)| g).collect();

        // Numeric gradients: central differences on cloned models.
        let eps = 1e-3f32;
        let loss = |m: &Mlp, x: &Matrix| -> f32 { m.infer(x).data().iter().sum() };
        let base = mlp.clone();
        let mut num_grads: Vec<Vec<f32>> = Vec::new();
        for li in 0..base.layers.len() {
            for which in 0..2 {
                let len = if which == 0 {
                    base.layers[li].w.data().len()
                } else {
                    base.layers[li].b.data().len()
                };
                let mut g = vec![0.0f32; len];
                for i in 0..len {
                    let mut plus = base.clone();
                    let mut minus = base.clone();
                    {
                        let p = if which == 0 {
                            plus.layers[li].w.data_mut()
                        } else {
                            plus.layers[li].b.data_mut()
                        };
                        p[i] += eps;
                        let m = if which == 0 {
                            minus.layers[li].w.data_mut()
                        } else {
                            minus.layers[li].b.data_mut()
                        };
                        m[i] -= eps;
                    }
                    g[i] = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * eps);
                }
                num_grads.push(g);
            }
        }

        for (a, n) in analytic.iter().zip(&num_grads) {
            for (&ga, &gn) in a.iter().zip(n) {
                assert!(
                    (ga - gn).abs() < 2e-2,
                    "analytic {ga} vs numeric {gn} differ"
                );
            }
        }
    }

    #[test]
    fn relu_kills_negative_gradients() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(1, 1, Activation::Relu, &mut rng);
        // Force a negative pre-activation.
        l.w.data_mut()[0] = 1.0;
        l.b.data_mut()[0] = -5.0;
        let x = Matrix::from_vec(1, 1, vec![1.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[0.0]);
        let dx = l.backward(&Matrix::from_vec(1, 1, vec![1.0]));
        assert_eq!(dx.data(), &[0.0]);
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let x = Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]);
        let a = mlp.forward(&x);
        let b = mlp.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn infer_row_matches_infer() {
        let mut rng = StdRng::seed_from_u64(11);
        let mlp = Mlp::new(&[6, 16, 9, 4], Activation::Tanh, &mut rng);
        let x = vec![0.3, -0.7, 1.4, 0.0, -2.2, 0.9];
        let full = mlp.infer(&Matrix::from_row(&x));
        let row = mlp.infer_row(&x);
        assert_eq!(full.data(), row.as_slice());
    }

    #[test]
    fn tape_backward_matches_mutable_backward() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut mlp = Mlp::new(&[5, 12, 7, 3], Activation::Relu, &mut rng);
        let x = Matrix::kaiming(4, 5, &mut rng);
        let dy = Matrix::kaiming(4, 3, &mut rng);

        let tape = mlp.forward_tape(&x);
        let tape_grads = mlp.backward_tape(&tape, &dy);

        mlp.zero_grad();
        let y = mlp.forward(&x);
        assert_eq!(&y, tape.output());
        mlp.backward(&dy);
        let mutable: Vec<Vec<f32>> = mlp.params_and_grads().into_iter().map(|(_, g)| g).collect();
        let via_tape: Vec<Vec<f32>> = tape_grads
            .iter()
            .flat_map(|g| [g.gw.data().to_vec(), g.gb.data().to_vec()])
            .collect();
        assert_eq!(mutable, via_tape, "tape grads must be bit-identical");
    }

    #[test]
    fn layer_grads_accumulate_elementwise() {
        let mut a = LayerGrads {
            gw: Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
            gb: Matrix::from_vec(1, 2, vec![0.5, -0.5]),
        };
        let b = LayerGrads {
            gw: Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]),
            gb: Matrix::from_vec(1, 2, vec![1.0, 1.0]),
        };
        a.accumulate(&b);
        assert_eq!(a.gw.data(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(a.gb.data(), &[1.5, 0.5]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[10, 5, 2], Activation::Relu, &mut rng);
        assert_eq!(mlp.param_count(), 10 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(&[2, 2], Activation::Identity, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let dy = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        mlp.forward(&x);
        mlp.backward(&dy);
        let g1: f32 = mlp.params_and_grads()[0].1.iter().sum();
        mlp.forward(&x);
        mlp.backward(&dy);
        let g2: f32 = mlp.params_and_grads()[0].1.iter().sum();
        assert!((g2 - 2.0 * g1).abs() < 1e-5, "g1={g1} g2={g2}");
        mlp.zero_grad();
        let g0: f32 = mlp.params_and_grads()[0].1.iter().sum();
        assert_eq!(g0, 0.0);
    }
}
