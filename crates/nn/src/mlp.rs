//! Multi-layer perceptrons with manual backpropagation.
//!
//! The paper's actor and critic are "an input layer matching the action
//! space's size, followed by smaller fully-connected layers" (§5.1); this
//! module provides exactly that, plus the gradients PPO needs.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Activation applied after a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Relu,
    Tanh,
    Identity,
}

impl Activation {
    fn forward(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Tanh => x.map(f32::tanh),
            Activation::Identity => x.clone(),
        }
    }

    /// dL/dx given dL/dy and the *activated output* y.
    fn backward(self, dy: &Matrix, y: &Matrix) -> Matrix {
        match self {
            Activation::Relu => dy.zip_map(y, |g, out| if out > 0.0 { g } else { 0.0 }),
            Activation::Tanh => dy.zip_map(y, |g, out| g * (1.0 - out * out)),
            Activation::Identity => dy.clone(),
        }
    }
}

/// One fully-connected layer `y = act(x W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    pub w: Matrix,
    pub b: Matrix,
    pub act: Activation,
    #[serde(skip)]
    grad_w: Option<Matrix>,
    #[serde(skip)]
    grad_b: Option<Matrix>,
    #[serde(skip)]
    cache_x: Option<Matrix>,
    #[serde(skip)]
    cache_y: Option<Matrix>,
}

impl Linear {
    pub fn new(inputs: usize, outputs: usize, act: Activation, rng: &mut impl rand::Rng) -> Self {
        Linear {
            w: Matrix::kaiming(inputs, outputs, rng),
            b: Matrix::zeros(1, outputs),
            act,
            grad_w: None,
            grad_b: None,
            cache_x: None,
            cache_y: None,
        }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = self
            .act
            .forward(&x.matmul(&self.w).add_row_broadcast(&self.b));
        self.cache_x = Some(x.clone());
        self.cache_y = Some(y.clone());
        y
    }

    /// Inference-only forward: no caches, `&self`.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.act
            .forward(&x.matmul(&self.w).add_row_broadcast(&self.b))
    }

    /// Backprop: accumulate dW, db; return dX.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        let y = self.cache_y.as_ref().expect("forward before backward");
        let dz = self.act.backward(dy, y);
        let gw = x.t_matmul(&dz);
        let gb = dz.sum_rows();
        match &mut self.grad_w {
            Some(g) => *g = g.add(&gw),
            None => self.grad_w = Some(gw),
        }
        match &mut self.grad_b {
            Some(g) => *g = g.add(&gb),
            None => self.grad_b = Some(gb),
        }
        dz.matmul_t(&self.w)
    }

    pub fn zero_grad(&mut self) {
        self.grad_w = None;
        self.grad_b = None;
    }

    /// (parameter, gradient) pairs; gradient slices are zeros when no
    /// backward pass has run since the last `zero_grad`.
    pub fn params_and_grads(&mut self) -> Vec<(&mut [f32], Vec<f32>)> {
        let gw = self
            .grad_w
            .as_ref()
            .map(|g| g.data().to_vec())
            .unwrap_or_else(|| vec![0.0; self.w.data().len()]);
        let gb = self
            .grad_b
            .as_ref()
            .map(|g| g.data().to_vec())
            .unwrap_or_else(|| vec![0.0; self.b.data().len()]);
        vec![(self.w.data_mut(), gw), (self.b.data_mut(), gb)]
    }

    pub fn param_count(&self) -> usize {
        self.w.data().len() + self.b.data().len()
    }
}

/// A stack of [`Linear`] layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// `sizes = [in, h1, ..., out]`; hidden layers use `hidden_act`, the
    /// output layer is linear (softmax/MSE heads live outside the MLP).
    pub fn new(sizes: &[usize], hidden_act: Activation, rng: &mut impl rand::Rng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i + 2 == sizes.len() {
                Activation::Identity
            } else {
                hidden_act
            };
            layers.push(Linear::new(sizes[i], sizes[i + 1], act, rng));
        }
        Mlp { layers }
    }

    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h);
        }
        h
    }

    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for l in &self.layers {
            h = l.infer(&h);
        }
        h
    }

    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut g = dy.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    pub fn params_and_grads(&mut self) -> Vec<(&mut [f32], Vec<f32>)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check on a scalar loss L = sum(mlp(x)).
    #[test]
    fn gradient_check_against_finite_differences() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut mlp = Mlp::new(&[3, 4, 2], Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);

        // Analytic gradients: dL/dy = ones.
        mlp.zero_grad();
        let y = mlp.forward(&x);
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        mlp.backward(&dy);
        let analytic: Vec<Vec<f32>> = mlp.params_and_grads().into_iter().map(|(_, g)| g).collect();

        // Numeric gradients: central differences on cloned models.
        let eps = 1e-3f32;
        let loss = |m: &Mlp, x: &Matrix| -> f32 { m.infer(x).data().iter().sum() };
        let base = mlp.clone();
        let mut num_grads: Vec<Vec<f32>> = Vec::new();
        for li in 0..base.layers.len() {
            for which in 0..2 {
                let len = if which == 0 {
                    base.layers[li].w.data().len()
                } else {
                    base.layers[li].b.data().len()
                };
                let mut g = vec![0.0f32; len];
                for i in 0..len {
                    let mut plus = base.clone();
                    let mut minus = base.clone();
                    {
                        let p = if which == 0 {
                            plus.layers[li].w.data_mut()
                        } else {
                            plus.layers[li].b.data_mut()
                        };
                        p[i] += eps;
                        let m = if which == 0 {
                            minus.layers[li].w.data_mut()
                        } else {
                            minus.layers[li].b.data_mut()
                        };
                        m[i] -= eps;
                    }
                    g[i] = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * eps);
                }
                num_grads.push(g);
            }
        }

        for (a, n) in analytic.iter().zip(&num_grads) {
            for (&ga, &gn) in a.iter().zip(n) {
                assert!(
                    (ga - gn).abs() < 2e-2,
                    "analytic {ga} vs numeric {gn} differ"
                );
            }
        }
    }

    #[test]
    fn relu_kills_negative_gradients() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(1, 1, Activation::Relu, &mut rng);
        // Force a negative pre-activation.
        l.w.data_mut()[0] = 1.0;
        l.b.data_mut()[0] = -5.0;
        let x = Matrix::from_vec(1, 1, vec![1.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[0.0]);
        let dx = l.backward(&Matrix::from_vec(1, 1, vec![1.0]));
        assert_eq!(dx.data(), &[0.0]);
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        let x = Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]);
        let a = mlp.forward(&x);
        let b = mlp.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[10, 5, 2], Activation::Relu, &mut rng);
        assert_eq!(mlp.param_count(), 10 * 5 + 5 + 5 * 2 + 2);
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(&[2, 2], Activation::Identity, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let dy = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        mlp.forward(&x);
        mlp.backward(&dy);
        let g1: f32 = mlp.params_and_grads()[0].1.iter().sum();
        mlp.forward(&x);
        mlp.backward(&dy);
        let g2: f32 = mlp.params_and_grads()[0].1.iter().sum();
        assert!((g2 - 2.0 * g1).abs() < 1e-5, "g1={g1} g2={g2}");
        mlp.zero_grad();
        let g0: f32 = mlp.params_and_grads()[0].1.iter().sum();
        assert_eq!(g0, 0.0);
    }
}
