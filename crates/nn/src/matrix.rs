//! Dense row-major f32 matrices — the only tensor type the NN stack needs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Row-major 2-D array of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// One row as a matrix view copy (used for single-state forward passes).
    pub fn from_row(row: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Kaiming-uniform initialisation, deterministic in `rng`.
    pub fn kaiming(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Self {
        let bound = (6.0 / rows as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self @ other` — cache-blocked, register-tiled, vectorized GEMM
    /// (see [`crate::kernels`] for the tiling scheme and the bit-exactness
    /// contract with the retained naive reference).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernels::gemm_raw(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// `self^T @ other`. Materialises the (cheap, O(rows·cols)) transpose
    /// and runs the blocked GEMM; per-element accumulation stays in
    /// ascending shared-dimension order, so the result is bit-identical to
    /// the transpose-free naive loop.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let at = self.transpose();
        let mut out = Matrix::zeros(self.cols, other.cols);
        crate::kernels::gemm_raw(
            self.cols,
            self.rows,
            other.cols,
            &at.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// `self @ other^T`. Same strategy as [`Matrix::t_matmul`]: transpose
    /// the (small) right-hand side, then run the blocked GEMM.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let bt = other.transpose();
        let mut out = Matrix::zeros(self.rows, other.rows);
        crate::kernels::gemm_raw(
            self.rows,
            self.cols,
            other.rows,
            &self.data,
            &bt.data,
            &mut out.data,
        );
        out
    }

    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        crate::kernels::transpose_into(self.rows, self.cols, &self.data, &mut out.data);
        out
    }

    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Add a 1xC bias row to every row.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Column-wise sum into a 1xC matrix (bias gradients).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_matmuls_agree() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::kaiming(4, 3, &mut rng);
        let b = Matrix::kaiming(4, 5, &mut rng);
        let via_t = a.transpose().matmul(&b);
        let direct = a.t_matmul(&b);
        for (x, y) in via_t.data().iter().zip(direct.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        let c = Matrix::kaiming(6, 3, &mut rng);
        let via_t2 = a.matmul(&c.transpose());
        let direct2 = a.matmul_t(&c);
        for (x, y) in via_t2.data().iter().zip(direct2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn broadcast_and_sum() {
        let x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(1, 2, vec![10., 20.]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[11., 22., 13., 24.]);
        assert_eq!(y.sum_rows().data(), &[24., 46.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn kaiming_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::kaiming(100, 10, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(m.data().iter().all(|&x| x.abs() <= bound));
        assert!(m.data().iter().any(|&x| x != 0.0));
    }
}
