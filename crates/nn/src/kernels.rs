//! Cache-blocked, register-tiled f32 GEMM kernels with runtime ISA dispatch.
//!
//! One kernel body (`gemm_raw_body`) written as plain safe Rust that LLVM
//! autovectorizes, compiled three times: once at the build's baseline ISA,
//! once under `#[target_feature(enable = "avx2,fma")]` and once under
//! `#[target_feature(enable = "avx512f")]`. The widest variant the CPU
//! supports is picked at runtime (detection is cached in an atomic).
//!
//! ## Numerics contract
//!
//! Every kernel — tiled, vectorized, scalar edge, and the retained
//! [`mod@reference`] implementations — computes each output element as
//!
//! ```text
//! out[i][j] = fma(a[i][0], b[0][j], fma(a[i][1], b[1][j], ... fma(..., 0.0)))
//! ```
//!
//! i.e. a fused-multiply-add chain in ascending contraction order, seeded at
//! `+0.0`. `f32::mul_add` is exactly rounded on every platform (hardware FMA
//! where available, libm's `fmaf` otherwise), so results are **bit-identical**
//! across ISAs, across tile shapes, and between the optimized kernels and the
//! naive references. Vectorization only runs independent output elements in
//! parallel; it never reassociates a single element's chain. The property
//! tests in `tests/kernel_props.rs` assert exact bit equality.
//!
//! Per-element zero-skip branches (the old `if a == 0.0 { continue }`) are
//! deliberately gone: they defeated vectorization and perturbed signed zeros.
//!
//! ## Tiling scheme
//!
//! Column panels of [`NR`] = 64 floats (four AVX-512 vectors), register
//! tiles of [`MR`] = 4 rows: each tile holds a 4×64 f32 accumulator block in
//! registers (16 zmm) and streams the shared `b` panel row once per `k`,
//! giving `MR×NR = 256` FLOP-pairs per 4 panel loads + 4 broadcasts — the
//! measured sweet spot on AVX-512 (wider`×`shorter tiles balance the two
//! load ports against the two FMA ports better than tall`×`narrow ones).
//! Edges cascade to 8-wide panels and finally scalar columns, all
//! preserving the accumulation order.
//! No explicit k-blocking: the matrices this workspace multiplies
//! (`batch × state_dim × hidden`, ≤ a few hundred per side) fit the panel
//! working set in L2 comfortably.

/// Rows per register tile.
pub const MR: usize = 4;
/// Columns per register tile (four 512-bit vectors of f32).
pub const NR: usize = 64;
/// Narrow fallback panel width for column remainders.
pub const NR_EDGE: usize = 8;

/// Activation fused into [`fused_linear_into`]'s epilogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpilogueAct {
    Identity,
    Relu,
    Tanh,
}

impl EpilogueAct {
    #[inline(always)]
    fn apply(self, v: f32) -> f32 {
        match self {
            EpilogueAct::Identity => v,
            EpilogueAct::Relu => v.max(0.0),
            EpilogueAct::Tanh => tanh_approx(v),
        }
    }
}

/// Branchless rational `tanh` approximation: odd 13th/6th-degree `P(x²)/Q(x²)`
/// on the clamped range `|x| ≤ 7.998…` (the classic single-precision fit
/// used by vectorized math libraries), accurate to a few ulps and
/// saturating to ±(1 − 2.4e-7) beyond the clamp.
///
/// libm's `tanhf` is a per-lane function call that blocks vectorization of
/// the activation sweep — at ~10⁶ hidden-unit activations per PPO iteration
/// it dominated the forward pass. This version is straight-line mul/add/div,
/// so LLVM vectorizes the sweep, and because every operation is exactly
/// rounded (no FMA contraction — kept as plain ops on purpose) the result is
/// bit-identical on every ISA, keeping the kernel determinism contract.
#[inline(always)]
#[allow(clippy::excessive_precision)] // coefficients kept verbatim from the published fit
pub fn tanh_approx(x: f32) -> f32 {
    const CLAMP: f32 = 7.998_811_7;
    const A1: f32 = 4.893_525e-3;
    const A3: f32 = 6.372_619_3e-4;
    const A5: f32 = 1.485_722_4e-5;
    const A7: f32 = 5.122_297_1e-8;
    const A9: f32 = -8.604_671_5e-11;
    const A11: f32 = 2.000_187_9e-13;
    const A13: f32 = -2.760_768_5e-16;
    const B0: f32 = 4.893_525_2e-3;
    const B2: f32 = 2.268_434_6e-3;
    const B4: f32 = 1.185_347e-4;
    const B6: f32 = 1.198_258_4e-6;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let p = ((((((A13 * x2 + A11) * x2 + A9) * x2 + A7) * x2 + A5) * x2 + A3) * x2 + A1) * x;
    let q = ((B6 * x2 + B4) * x2 + B2) * x2 + B0;
    p / q
}

/// One `MR_×W` register tile: accumulate over the full contraction depth
/// `k`, then store raw sums. `a` is `m×k` row-major starting at row `i0`,
/// `b` is `k×n` row-major, the tile covers columns `j0..j0+W`.
#[inline(always)]
fn tile<const MR_: usize, const W: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    k: usize,
    n: usize,
) {
    // Per-row input slices let LLVM elide the bounds checks in the hot loop.
    let arows: [&[f32]; MR_] = std::array::from_fn(|r| &a[(i0 + r) * k..(i0 + r) * k + k]);
    let mut acc = [[0.0f32; W]; MR_];
    for p in 0..k {
        let brow = &b[p * n + j0..p * n + j0 + W];
        for r in 0..MR_ {
            let av = arows[r][p];
            for c in 0..W {
                acc[r][c] = av.mul_add(brow[c], acc[r][c]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[(i0 + r) * n + j0..(i0 + r) * n + j0 + W].copy_from_slice(accr);
    }
}

/// All row tiles of one `W`-wide column panel.
#[inline(always)]
fn panel<const W: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    j0: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let mut i = 0;
    while i + MR <= m {
        tile::<MR, W>(a, b, out, i, j0, k, n);
        i += MR;
    }
    while i < m {
        tile::<1, W>(a, b, out, i, j0, k, n);
        i += 1;
    }
}

/// `out = a @ b` (raw sums, no epilogue). `a: m×k`, `b: k×n`, `out: m×n`,
/// all row-major; `out` is fully overwritten.
#[inline(always)]
fn gemm_raw_body(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut j = 0;
    while j + NR <= n {
        panel::<NR>(a, b, out, j, m, k, n);
        j += NR;
    }
    while j + NR_EDGE <= n {
        panel::<NR_EDGE>(a, b, out, j, m, k, n);
        j += NR_EDGE;
    }
    // Scalar column remainder (< NR_EDGE columns): same fma chain per element.
    for jj in j..n {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (p, &av) in arow.iter().enumerate() {
                acc = av.mul_add(b[p * n + jj], acc);
            }
            out[i * n + jj] = acc;
        }
    }
}

// The workspace denies `unsafe_code`; this module and the dispatcher below
// are the one sanctioned exception — `#[target_feature]` monomorphization
// requires `unsafe fn`, and each call site documents the runtime feature
// check that upholds the contract.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    /// The same kernel body compiled with 256-bit vectors and hardware FMA.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_raw_avx2(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        super::gemm_raw_body(m, k, n, a, b, out);
    }

    /// The same kernel body compiled with 512-bit vectors and hardware FMA
    /// (`avx512f` implies `avx2` and `fma` in LLVM's feature lattice).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX-512F.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gemm_raw_avx512(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        super::gemm_raw_body(m, k, n, a, b, out);
    }
}

/// Which compiled variant of the kernel body to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    Generic = 0,
    Avx2Fma = 1,
    Avx512 = 2,
}

#[cfg(target_arch = "x86_64")]
fn detect_isa() -> Isa {
    use std::sync::atomic::{AtomicU8, Ordering};
    static CACHED: AtomicU8 = AtomicU8::new(u8::MAX);
    let v = CACHED.load(Ordering::Relaxed);
    if v != u8::MAX {
        return match v {
            2 => Isa::Avx512,
            1 => Isa::Avx2Fma,
            _ => Isa::Generic,
        };
    }
    let isa = if std::arch::is_x86_feature_detected!("avx512f") {
        Isa::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2")
        && std::arch::is_x86_feature_detected!("fma")
    {
        Isa::Avx2Fma
    } else {
        Isa::Generic
    };
    CACHED.store(isa as u8, Ordering::Relaxed);
    isa
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_isa() -> Isa {
    // Non-x86 targets (e.g. aarch64 NEON) vectorize the baseline build of
    // the kernel body; `mul_add` lowers to a native fused instruction there.
    Isa::Generic
}

/// `out = a @ b`, dispatching to the widest compiled kernel variant the
/// running CPU supports. Bit-identical results on every path.
#[allow(unsafe_code)] // see the note on `mod x86`
pub fn gemm_raw(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm a length");
    assert_eq!(b.len(), k * n, "gemm b length");
    assert_eq!(out.len(), m * n, "gemm out length");
    match detect_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `detect_isa` verified the feature at runtime.
        Isa::Avx512 => unsafe { x86::gemm_raw_avx512(m, k, n, a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `detect_isa` verified the features at runtime.
        Isa::Avx2Fma => unsafe { x86::gemm_raw_avx2(m, k, n, a, b, out) },
        _ => gemm_raw_body(m, k, n, a, b, out),
    }
}

/// Fused linear layer: `out = act(a @ w + bias)` in one kernel invocation —
/// a GEMM into `out` followed by a single bias+activation sweep, with no
/// intermediate allocations. `bias` is length `n` (`None` skips the add,
/// preserving raw sums bit-for-bit, signed zeros included).
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style (m, k, n, a, w, …) calling convention
pub fn fused_linear_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    act: EpilogueAct,
    out: &mut [f32],
) {
    gemm_raw(m, k, n, a, w, out);
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "bias length");
        for row in out.chunks_exact_mut(n.max(1)) {
            for (o, &bv) in row.iter_mut().zip(b) {
                *o += bv;
            }
        }
    }
    match act {
        EpilogueAct::Identity => {}
        EpilogueAct::Relu => out.iter_mut().for_each(|v| *v = v.max(0.0)),
        EpilogueAct::Tanh => out.iter_mut().for_each(|v| *v = tanh_approx(*v)),
    }
}

/// Blocked out-of-place transpose: `out[j][i] = a[i][j]`. 32×32 blocks keep
/// both the read and write streams cache-resident.
pub fn transpose_into(rows: usize, cols: usize, a: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), rows * cols, "transpose input length");
    assert_eq!(out.len(), rows * cols, "transpose output length");
    const B: usize = 32;
    let mut i0 = 0;
    while i0 < rows {
        let imax = (i0 + B).min(rows);
        let mut j0 = 0;
        while j0 < cols {
            let jmax = (j0 + B).min(cols);
            for i in i0..imax {
                for j in j0..jmax {
                    out[j * rows + i] = a[i * cols + j];
                }
            }
            j0 += B;
        }
        i0 += B;
    }
}

/// Naive scalar implementations retained as the bit-exact oracle for the
/// tiled kernels (property tests) and as the "before" side of the
/// `nn_matmul` micro-bench. Same fma-chain numerics, no tiling, no dispatch.
pub mod reference {
    use super::EpilogueAct;

    /// `out = a @ b`, scalar ikj triple loop.
    pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), m * n);
        out.fill(0.0);
        for i in 0..m {
            for (p, &av) in a[i * k..(i + 1) * k].iter().enumerate() {
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    }

    /// `out = a^T @ b` without materialising the transpose (`a: r×m`,
    /// `b: r×n`, `out: m×n`), accumulating in ascending `r` order.
    pub fn t_matmul(r_dim: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), m * n);
        out.fill(0.0);
        for r in 0..r_dim {
            let arow = &a[r * m..(r + 1) * m];
            let brow = &b[r * n..(r + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    }

    /// `out = a @ b^T` without materialising the transpose (`a: m×k`,
    /// `b: n×k`, `out: m×n`), each element a `k`-ordered dot product.
    pub fn matmul_t(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), m * n);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc = av.mul_add(bv, acc);
                }
                out[i * n + j] = acc;
            }
        }
    }

    /// Scalar fused linear layer: matmul, then bias, then activation — the
    /// exact epilogue order of [`super::fused_linear_into`].
    #[allow(clippy::too_many_arguments)] // same signature as the tiled kernel it mirrors
    pub fn fused_linear(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        w: &[f32],
        bias: Option<&[f32]>,
        act: EpilogueAct,
        out: &mut [f32],
    ) {
        matmul(m, k, n, a, w, out);
        if let Some(b) = bias {
            for row in out.chunks_exact_mut(n.max(1)) {
                for (o, &bv) in row.iter_mut().zip(b) {
                    *o += bv;
                }
            }
        }
        for v in out.iter_mut() {
            *v = act.apply(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.37 - 1.3) * scale).collect()
    }

    #[test]
    fn gemm_matches_reference_on_odd_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (8, 32, 32), (9, 33, 41), (17, 64, 3)] {
            let a = seq(m * k, 0.01);
            let b = seq(k * n, 0.02);
            let mut out = vec![f32::NAN; m * n];
            let mut want = vec![f32::NAN; m * n];
            gemm_raw(m, k, n, &a, &b, &mut out);
            reference::matmul(m, k, n, &a, &b, &mut want);
            assert_eq!(out, want, "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let mut out = vec![];
        gemm_raw(0, 3, 4, &[], &seq(12, 1.0), &mut out);
        let mut out = vec![1.0f32; 6];
        gemm_raw(2, 0, 3, &[], &[], &mut out);
        assert_eq!(out, vec![0.0; 6], "k = 0 must produce exact zeros");
    }

    #[test]
    fn fused_linear_applies_bias_then_activation() {
        let a = vec![1.0f32, 2.0];
        let w = vec![1.0f32, -1.0, 0.5, -0.5];
        let bias = vec![0.25f32, -10.0];
        let mut out = vec![0.0f32; 2];
        fused_linear_into(1, 2, 2, &a, &w, Some(&bias), EpilogueAct::Relu, &mut out);
        // raw = [2.0, -2.0]; +bias = [2.25, -12.0]; relu = [2.25, 0.0]
        assert_eq!(out, vec![2.25, 0.0]);
    }

    #[test]
    fn tanh_approx_tracks_libm_and_saturates() {
        // Dense sweep across the active range: absolute error vs libm tanhf
        // stays within a few ulps of the true value.
        let mut worst = 0.0f32;
        let mut x = -9.0f32;
        while x <= 9.0 {
            let err = (tanh_approx(x) - x.tanh()).abs();
            worst = worst.max(err);
            x += 0.001;
        }
        assert!(worst < 2e-6, "worst tanh error {worst}");
        // Odd symmetry (clamp and polynomial are both odd in x).
        for x in [0.017f32, 0.9, 3.3, 25.0] {
            assert_eq!(tanh_approx(-x).to_bits(), (-tanh_approx(x)).to_bits());
        }
        // Saturation: huge inputs stay bounded and monotone-consistent.
        assert!(tanh_approx(100.0) > 0.999_999);
        assert!(tanh_approx(100.0) <= 1.0);
        assert_eq!(tanh_approx(0.0), 0.0);
    }

    #[test]
    fn transpose_round_trips() {
        let a = seq(7 * 43, 1.0);
        let mut t = vec![0.0f32; 7 * 43];
        let mut back = vec![0.0f32; 7 * 43];
        transpose_into(7, 43, &a, &mut t);
        transpose_into(43, 7, &t, &mut back);
        assert_eq!(a, back);
    }
}
