//! Functional ops used by policy heads: stable softmax / log-softmax,
//! masked categorical distributions, entropy.

use crate::matrix::Matrix;
use rand::Rng;

/// Numerically-stable softmax over each row.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        softmax_in_place(row);
    }
    out
}

/// Stable in-place softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        // All -inf (fully masked): fall back to uniform to avoid NaNs; the
        // caller is responsible for never sampling from a fully-masked row.
        let u = 1.0 / row.len().max(1) as f32;
        row.iter_mut().for_each(|x| *x = u);
        return;
    }
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        row.iter_mut().for_each(|x| *x /= sum);
    }
}

/// log softmax of one row (stable).
pub fn log_softmax(row: &[f32]) -> Vec<f32> {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
    row.iter().map(|&x| x - log_sum).collect()
}

/// Apply an action mask to logits: invalid entries become -inf so their
/// probability is exactly zero (the paper's *action masking*, §5.1).
pub fn mask_logits(logits: &mut [f32], valid: &[bool]) {
    debug_assert_eq!(logits.len(), valid.len());
    for (l, &ok) in logits.iter_mut().zip(valid) {
        if !ok {
            *l = f32::NEG_INFINITY;
        }
    }
}

/// Sample an index from a probability row. Assumes `probs` sums to ~1.
pub fn sample_categorical(probs: &[f32], rng: &mut impl Rng) -> usize {
    let u: f32 = rng.random_range(0.0..1.0);
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    // Floating point slack: return the last non-zero entry.
    probs
        .iter()
        .rposition(|&p| p > 0.0)
        .unwrap_or(probs.len() - 1)
}

/// Index of the maximum probability (greedy decoding).
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in row.iter().enumerate() {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Shannon entropy of a probability row (nats).
pub fn entropy(probs: &[f32]) -> f32 {
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.ln())
        .sum::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut row = vec![1000.0f32, 1001.0, 1002.0];
        softmax_in_place(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(row.iter().all(|p| p.is_finite()));
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn masked_entries_have_zero_probability() {
        let mut logits = vec![0.0f32, 1.0, 2.0, 3.0];
        mask_logits(&mut logits, &[true, false, true, false]);
        softmax_in_place(&mut logits);
        assert_eq!(logits[1], 0.0);
        assert_eq!(logits[3], 0.0);
        assert!((logits[0] + logits[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sampling_respects_distribution() {
        let probs = vec![0.0f32, 0.25, 0.75, 0.0];
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], 0);
        let frac2 = counts[2] as f64 / 4000.0;
        assert!((frac2 - 0.75).abs() < 0.05, "frac2 = {frac2}");
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let row = vec![0.3f32, -1.2, 2.0];
        let ls = log_softmax(&row);
        let mut sm = row.clone();
        softmax_in_place(&mut sm);
        for (l, p) in ls.iter().zip(&sm) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn entropy_bounds() {
        let uniform = vec![0.25f32; 4];
        let point = vec![1.0f32, 0.0, 0.0, 0.0];
        assert!((entropy(&uniform) - (4.0f32).ln()).abs() < 1e-5);
        assert_eq!(entropy(&point), 0.0);
    }

    #[test]
    fn argmax_picks_peak() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[f32::NEG_INFINITY, -1.0]), 1);
    }

    #[test]
    fn softmax_rows_matrix() {
        let m = Matrix::from_vec(2, 2, vec![0.0, 0.0, 10.0, 0.0]);
        let s = softmax_rows(&m);
        assert!((s.at(0, 0) - 0.5).abs() < 1e-5);
        assert!(s.at(1, 0) > 0.99);
    }
}
