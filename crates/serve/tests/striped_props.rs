//! Property tests for the striped tenant→shard allocation policy:
//! deterministic replay, ±1 balance under arrivals, and stability under
//! departures (no rehash-storm reshuffling of surviving tenants).

use asqp_serve::StripedAllocator;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Replay a register/depart script and return the final assignment.
fn replay(shards: usize, script: &[(bool, u64)]) -> (StripedAllocator, BTreeMap<u64, usize>) {
    let mut a = StripedAllocator::new(shards);
    let mut assignment = BTreeMap::new();
    for &(register, tenant) in script {
        if register {
            let s = a.register(tenant);
            assignment.insert(tenant, s);
        } else {
            a.depart(tenant);
            assignment.remove(&tenant);
        }
    }
    (a, assignment)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The allocation is a pure function of the register/depart sequence:
    /// replaying any script yields the identical assignment.
    #[test]
    fn allocation_is_deterministic(
        shards in 1usize..9,
        script in proptest::collection::vec((any::<bool>(), 0u64..64), 0..120),
    ) {
        let (a1, m1) = replay(shards, &script);
        let (a2, m2) = replay(shards, &script);
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(a1.loads(), a2.loads());
    }

    /// Under registrations alone, greedy least-loaded striping keeps the
    /// per-shard tenant counts within ±1 of each other.
    #[test]
    fn arrival_only_sequences_balance_within_one(
        shards in 1usize..9,
        raw in proptest::collection::vec(0u64..4096, 0..200),
    ) {
        let tenants: std::collections::BTreeSet<u64> = raw.into_iter().collect();
        let mut a = StripedAllocator::new(shards);
        for &t in &tenants {
            a.register(t);
        }
        prop_assert!(
            a.imbalance() <= 1,
            "loads {:?} differ by more than 1",
            a.loads()
        );
        prop_assert_eq!(a.loads().iter().sum::<usize>(), tenants.len());
    }

    /// A departure never moves any surviving tenant: assignments are
    /// stable (no consistent-hashing rehash storm), and the freed
    /// capacity is reflected in the loads.
    #[test]
    fn departures_never_reassign_survivors(
        shards in 1usize..9,
        script in proptest::collection::vec((any::<bool>(), 0u64..48), 0..100),
        victim in 0u64..48,
    ) {
        let (mut a, before) = replay(shards, &script);
        let had_victim = before.contains_key(&victim);
        let freed = a.depart(victim);
        prop_assert_eq!(freed.is_some(), had_victim);
        for (&t, &s) in before.iter().filter(|&(&t, _)| t != victim) {
            prop_assert_eq!(
                a.shard_of(t),
                Some(s),
                "tenant {} moved after an unrelated departure",
                t
            );
        }
        prop_assert_eq!(
            a.loads().iter().sum::<usize>(),
            before.len() - usize::from(had_victim)
        );
    }

    /// Re-registration after a departure refills the emptiest stripe
    /// first, so the ±1 balance is restored by arrivals rather than by
    /// reshuffling.
    #[test]
    fn arrivals_after_departures_restore_balance(
        shards in 1usize..6,
        n in 0usize..40,
        raw_departures in proptest::collection::vec(0u64..40, 0..20),
    ) {
        let departures: std::collections::BTreeSet<u64> = raw_departures.into_iter().collect();
        let mut a = StripedAllocator::new(shards);
        for t in 0..n as u64 {
            a.register(t);
        }
        for &d in &departures {
            a.depart(d);
        }
        // Exactly `deficit` fresh arrivals fill every stripe back up to
        // the current maximum: least-loaded placement levels the pool.
        let max = a.loads().iter().copied().max().unwrap_or(0);
        let deficit: usize = a.loads().iter().map(|&l| max - l).sum();
        for t in 0..deficit as u64 {
            a.register(1_000 + t);
        }
        prop_assert_eq!(a.imbalance(), 0, "loads {:?}", a.loads());
    }
}
