//! Chaos suite for the serving layer: seeded fault plans against both the
//! threaded server (liveness: zero panics, no lost requests) and the
//! discrete-event simulator (determinism: byte-identical transcripts for
//! identical seeds).

use asqp_data::{imdb, Scale};
use asqp_db::Query;
use asqp_serve::{
    run_sim, EventKind, FaultPlan, MirrorBackend, RetryPolicy, ServeConfig, ServeError,
    ServeResult, Server, SimConfig,
};
use asqp_telemetry as telemetry;
use std::sync::Arc;

fn test_backend() -> MirrorBackend {
    let db = Arc::new(imdb::generate(Scale::Tiny, 1));
    MirrorBackend::single(db, 50)
}

fn test_queries(n: usize) -> Vec<Query> {
    let w = imdb::workload(12, 1);
    (0..n)
        .map(|i| w.queries[i % w.queries.len()].clone())
        .collect()
}

fn chaos_config(seed: u64) -> ServeConfig {
    ServeConfig {
        workers: 4,
        queue_depth: 64,
        deadline_ns: 300_000,
        retry: RetryPolicy {
            max_retries: 3,
            base_ns: 50_000,
            cap_ns: 400_000,
        },
        faults: FaultPlan::chaos(seed),
    }
}

/// Determinism: over a matrix of seeds, two sim runs of the same seed
/// render byte-identical transcripts, and every request is accounted for.
#[test]
fn sim_seed_matrix_is_deterministic_and_lossless() {
    for seed in [0u64, 1, 7, 42, 1234, 0xDEAD_BEEF] {
        let cfg = SimConfig::chaos(seed);
        let a = run_sim(&cfg);
        let b = run_sim(&cfg);
        assert_eq!(
            a.render(),
            b.render(),
            "seed {seed}: same-seed chaos runs must produce identical logs"
        );
        let s = &a.stats;
        assert_eq!(s.admitted + s.rejected, cfg.requests, "seed {seed}");
        assert_eq!(
            s.resolved_subset + s.resolved_full + s.degraded,
            s.admitted,
            "seed {seed}: every admitted request must resolve"
        );
    }
}

/// Distinct seeds must actually produce distinct schedules — otherwise the
/// matrix above is vacuous.
#[test]
fn sim_seeds_decorrelate() {
    let a = run_sim(&SimConfig::chaos(10));
    let b = run_sim(&SimConfig::chaos(11));
    assert_ne!(a.render(), b.render());
}

/// The acceptance scenario: 64 concurrent clients against the threaded
/// server under an injected fault plan (≥5% error rate, latency spikes,
/// one stalled worker). Zero panics, and every submission resolves to
/// Ok(answer) or a typed rejection — nothing is lost. Telemetry counters
/// must account for every request.
#[test]
fn threaded_chaos_loses_no_requests() {
    let recorder = Arc::new(telemetry::MemoryRecorder::new());
    let report = telemetry::scoped(recorder.clone(), || {
        let server = Arc::new(Server::start(test_backend(), chaos_config(0xC0FFEE)));
        let queries = test_queries(64);

        let results: Vec<ServeResult> = std::thread::scope(|s| {
            let handles: Vec<_> = queries
                .into_iter()
                .map(|q| {
                    let server = Arc::clone(&server);
                    s.spawn(move || server.query_blocking(q))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client panicked"))
                .collect()
        });

        assert_eq!(results.len(), 64);
        let mut ok = 0u64;
        let mut overloaded = 0u64;
        for r in &results {
            match r {
                Ok(answer) => {
                    ok += 1;
                    assert!(answer.attempts <= 4);
                }
                Err(ServeError::Overloaded { depth }) => {
                    overloaded += 1;
                    assert_eq!(*depth, 64);
                }
                Err(e) => panic!("request lost to unexpected error: {e}"),
            }
        }
        assert_eq!(ok + overloaded, 64);

        let stats = server.stats();
        assert_eq!(stats.admitted + stats.rejected, 64);
        assert_eq!(
            stats.resolved(),
            stats.admitted,
            "no admitted request may vanish"
        );
        assert_eq!(stats.fatal, 0, "workload queries must never be fatal");

        server.shutdown();
        recorder.report()
    });

    // The same accounting must be visible through telemetry.
    let c = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    assert_eq!(c("serve.admitted") + c("serve.rejected"), 64);
    assert_eq!(
        c("serve.resolved.subset") + c("serve.resolved.full") + c("serve.degraded"),
        c("serve.admitted")
    );
}

/// Per-request event sequences from the threaded server are well-formed:
/// admitted requests end in exactly one resolution, rejected ones carry
/// only the rejection.
#[test]
fn threaded_chaos_event_log_is_well_formed() {
    let server = Server::start(test_backend(), chaos_config(77));
    let tickets: Vec<_> = test_queries(32)
        .into_iter()
        .filter_map(|q| server.submit(q).ok())
        .collect();
    for t in tickets {
        t.wait().expect("admitted request must resolve");
    }
    server.shutdown();

    let events = server.log().canonical();
    assert!(!events.is_empty());
    let mut by_request: std::collections::BTreeMap<u64, Vec<&EventKind>> =
        std::collections::BTreeMap::new();
    for e in &events {
        by_request.entry(e.request).or_default().push(&e.kind);
    }
    for (req, kinds) in by_request {
        match kinds[0] {
            EventKind::Admitted => {
                let resolutions = kinds
                    .iter()
                    .filter(|k| matches!(k, EventKind::Resolved { .. } | EventKind::Failed))
                    .count();
                assert_eq!(resolutions, 1, "request {req} must resolve exactly once");
                assert!(
                    matches!(
                        kinds.last().unwrap(),
                        EventKind::Resolved { .. } | EventKind::Failed
                    ),
                    "request {req} must end in its resolution"
                );
            }
            EventKind::Rejected { .. } => {
                assert_eq!(
                    kinds.len(),
                    1,
                    "rejected request {req} must log nothing else"
                );
            }
            other => panic!("request {req} starts with {other:?}"),
        }
    }
}

/// Graceful shutdown drains what was admitted: every ticket held at
/// shutdown time still resolves, and new submissions are refused.
#[test]
fn shutdown_drains_inflight_requests() {
    let server = Server::start(
        test_backend(),
        ServeConfig {
            workers: 2,
            queue_depth: 32,
            deadline_ns: 0, // no deadline: exercise the drain itself
            retry: RetryPolicy::default(),
            faults: FaultPlan {
                base_latency_ns: 200_000, // slow the workers so a backlog forms
                ..FaultPlan::disabled()
            },
        },
    );
    let tickets: Vec<_> = test_queries(16)
        .into_iter()
        .map(|q| server.submit(q).expect("queue depth not reached"))
        .collect();

    server.shutdown();
    assert!(matches!(
        server.submit(test_queries(1).remove(0)),
        Err(ServeError::ShuttingDown)
    ));
    for t in tickets {
        t.wait()
            .expect("admitted request must survive shutdown drain");
    }
    assert_eq!(server.stats().resolved(), 16);
}

/// Backpressure: with the only worker stalled, submissions past the queue
/// depth fail fast with `Overloaded` and the admitted ones still resolve.
#[test]
fn admission_control_rejects_past_depth() {
    let server = Server::start(
        test_backend(),
        ServeConfig {
            workers: 1,
            queue_depth: 2,
            deadline_ns: 0,
            retry: RetryPolicy::default(),
            faults: FaultPlan {
                stalled_worker: Some(0),
                stall_ns: 50_000_000, // hold the worker 50ms so the queue fills
                ..FaultPlan::disabled()
            },
        },
    );
    let queries = test_queries(10);
    let mut tickets = Vec::new();
    let mut rejected = 0;
    for q in queries {
        match server.submit(q) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { depth }) => {
                assert_eq!(depth, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!(tickets.len(), 2, "only the queue depth may be admitted");
    assert_eq!(rejected, 8);
    for t in tickets {
        t.wait().expect("admitted requests resolve after the stall");
    }
    server.shutdown();
}

/// Degradation ladder end to end: a deadline the full-DB route can never
/// meet must still answer every request — from the subset, tagged.
#[test]
fn impossible_deadline_degrades_instead_of_failing() {
    let server = Server::start(
        test_backend(),
        ServeConfig {
            workers: 2,
            queue_depth: 32,
            deadline_ns: 1, // nothing fits in 1ns
            retry: RetryPolicy::default(),
            faults: FaultPlan::disabled(),
        },
    );
    let mut degraded = 0;
    for q in test_queries(12) {
        let answer = server.query_blocking(q).expect("must resolve");
        if answer.degraded() {
            degraded += 1;
        }
    }
    // Hash-routing sends ~half the queries to the full path; all of those
    // must have degraded.
    let stats = server.stats();
    assert_eq!(stats.degraded, degraded);
    assert_eq!(stats.resolved_full, 0, "no full answer fits a 1ns deadline");
    assert_eq!(stats.resolved(), 12);
    assert!(degraded > 0, "the workload must exercise the full route");
    server.shutdown();
}
