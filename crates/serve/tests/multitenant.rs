//! Integration suite for the sharded multi-tenant server: zero lost
//! requests under concurrent multi-tenant load, exact per-tenant
//! accounting (including rejection attribution), tenant lifecycle, and
//! the multi-tenant simulator's determinism gate.

use asqp_data::{imdb, Scale};
use asqp_db::Query;
use asqp_serve::{
    run_mt_sim, FaultPlan, MirrorBackend, MtConfig, MtServer, MtSimConfig, RetryPolicy, ServeError,
    ServeResult,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn shared_db() -> Arc<asqp_db::Database> {
    Arc::new(imdb::generate(Scale::Tiny, 1))
}

fn test_queries(n: usize) -> Vec<Query> {
    let w = imdb::workload(12, 1);
    (0..n)
        .map(|i| w.queries[i % w.queries.len()].clone())
        .collect()
}

fn quiet_config() -> MtConfig {
    MtConfig {
        shards: 2,
        workers_per_shard: 2,
        queue_depth: 64,
        deadline_ns: 0,
        retry: RetryPolicy::default(),
        faults: FaultPlan::disabled(),
    }
}

/// Many tenants, many client threads, a chaos fault plan: every
/// submission resolves or is rejected synchronously, and each tenant's
/// counters add up exactly — `admitted == resolved` per tenant, with
/// rejections attributed to the submitting tenant.
#[test]
fn concurrent_tenants_lose_nothing_and_account_exactly() {
    let db = shared_db();
    let server = Arc::new(MtServer::start(MtConfig {
        shards: 2,
        workers_per_shard: 2,
        queue_depth: 16,
        deadline_ns: 300_000,
        retry: RetryPolicy {
            max_retries: 3,
            base_ns: 50_000,
            cap_ns: 400_000,
        },
        faults: FaultPlan::chaos(0xBEEF),
    }));
    let tenants: Vec<u64> = (0..8).collect();
    for &t in &tenants {
        // Tenants 0..4 share COW group 0, the rest group 1 — all backends
        // answer identically (same db, same routing), so batching is safe.
        server.register_tenant(t, t / 4, MirrorBackend::single(Arc::clone(&db), 50));
    }

    let queries = test_queries(12);
    let outcomes: Vec<(u64, ServeResult)> = std::thread::scope(|s| {
        let handles: Vec<_> = tenants
            .iter()
            .flat_map(|&t| {
                let server = &server;
                let queries = &queries;
                (0..queries.len()).map(move |i| {
                    s.spawn(move || (t, server.query_blocking(t, queries[i].clone())))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    server.shutdown();

    // Client-side tally of what each tenant actually experienced.
    let mut submitted: BTreeMap<u64, u64> = BTreeMap::new();
    let mut client_rejected: BTreeMap<u64, u64> = BTreeMap::new();
    for (t, r) in &outcomes {
        *submitted.entry(*t).or_default() += 1;
        if matches!(r, Err(ServeError::Overloaded { .. })) {
            *client_rejected.entry(*t).or_default() += 1;
        }
        assert!(
            !matches!(r, Err(ServeError::ShuttingDown)),
            "request lost in shutdown"
        );
    }

    let snapshot = server.registry().snapshot();
    assert_eq!(snapshot.len(), tenants.len());
    for (&t, stats) in &snapshot {
        let sub = submitted.get(&t).copied().unwrap_or(0);
        assert_eq!(
            stats.admitted + stats.rejected,
            sub,
            "tenant {t}: every submission is admitted or rejected"
        );
        assert_eq!(
            stats.rejected,
            client_rejected.get(&t).copied().unwrap_or(0),
            "tenant {t}: server-side rejections must match what the client saw"
        );
        assert!(
            stats.lossless(),
            "tenant {t}: admitted {} != resolved {}",
            stats.admitted,
            stats.resolved()
        );
    }
    // Shards balanced within ±1 across 8 tenants / 2 shards.
    let mut per_shard = [0u64; 2];
    for stats in snapshot.values() {
        per_shard[stats.shard] += 1;
    }
    assert_eq!(per_shard, [4, 4]);

    let agg = server.stats();
    assert_eq!(agg.admitted + agg.rejected, (tenants.len() * 12) as u64);
    assert_eq!(agg.resolved(), agg.admitted);
}

/// Rejections land on the tenant whose submission was shed — never on a
/// global bucket, never on an innocent co-tenant of the same shard.
#[test]
fn rejections_are_attributed_to_the_submitting_tenant() {
    let db = shared_db();
    // One shard, one worker, and that worker stalled for 200ms: the
    // queue (depth 2) fills instantly and further submissions shed.
    let server = MtServer::start(MtConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_depth: 2,
        deadline_ns: 0,
        retry: RetryPolicy::default(),
        faults: FaultPlan {
            stalled_worker: Some(0),
            stall_ns: 200_000_000,
            ..FaultPlan::disabled()
        },
    });
    server.register_tenant(1, 0, MirrorBackend::single(Arc::clone(&db), 100));
    server.register_tenant(2, 0, MirrorBackend::single(Arc::clone(&db), 100));

    let queries = test_queries(6);
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for q in &queries {
        match server.submit(1, q.clone()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        rejected > 0,
        "depth-2 queue behind a stalled worker must shed"
    );
    for t in tickets {
        assert!(t.wait().is_ok());
    }
    server.shutdown();

    let snap = server.registry().snapshot();
    let t1 = snap.get(&1).expect("tenant 1 registered");
    let t2 = snap.get(&2).expect("tenant 2 registered");
    assert_eq!(t1.rejected, rejected, "shed requests belong to tenant 1");
    assert_eq!(t2.rejected, 0, "tenant 2 never submitted — nothing to shed");
    assert_eq!(t2.admitted, 0);
    assert!(t1.lossless());
}

/// Tenant lifecycle: unknown tenants are refused synchronously, departed
/// tenants stop submitting but keep their accounting, and their stripe is
/// reused by the next registration.
#[test]
fn tenant_lifecycle_unknown_depart_reuse() {
    let db = shared_db();
    let server = MtServer::start(quiet_config());
    let q = test_queries(1).remove(0);

    assert!(matches!(
        server.submit(99, q.clone()),
        Err(ServeError::UnknownTenant { tenant: 99 })
    ));

    let s1 = server.register_tenant(1, 0, MirrorBackend::single(Arc::clone(&db), 100));
    let s2 = server.register_tenant(2, 0, MirrorBackend::single(Arc::clone(&db), 100));
    assert_ne!(s1, s2, "two tenants on two shards stripe apart");
    assert!(server.query_blocking(1, q.clone()).is_ok());

    assert_eq!(server.depart_tenant(1), Some(s1));
    assert!(matches!(
        server.submit(1, q.clone()),
        Err(ServeError::UnknownTenant { tenant: 1 })
    ));
    // Accounting for the departed tenant survives.
    let stats = server
        .tenant_stats(1)
        .expect("accounting survives departure");
    assert_eq!(stats.admitted, 1);
    assert!(stats.lossless());
    // The freed stripe is refilled by the next arrival.
    let s3 = server.register_tenant(3, 0, MirrorBackend::single(Arc::clone(&db), 100));
    assert_eq!(s3, s1);
    server.shutdown();
}

/// Same-group tenants hammering one query concurrently behind a briefly
/// stalled pool: the single-flight batcher must coalesce at least some of
/// the simultaneous identical scans, and followers' answers are identical
/// to leaders'.
#[test]
fn identical_inflight_scans_coalesce_across_tenants() {
    let db = shared_db();
    let server = Arc::new(MtServer::start(MtConfig {
        shards: 1,
        workers_per_shard: 4,
        queue_depth: 64,
        deadline_ns: 0,
        retry: RetryPolicy::default(),
        faults: FaultPlan::disabled(),
    }));
    for t in 0..4u64 {
        // subset_pct 100: everything routes to the subset path.
        server.register_tenant(t, 7, MirrorBackend::single(Arc::clone(&db), 100));
    }
    let q = test_queries(1).remove(0);

    let answers: Vec<ServeResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let server = Arc::clone(&server);
                let q = q.clone();
                s.spawn(move || server.query_blocking(i % 4, q))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    server.shutdown();

    let rows: Vec<_> = answers
        .iter()
        .map(|r| format!("{:?}", r.as_ref().expect("subset path cannot fail").rows))
        .collect();
    for r in &rows {
        assert_eq!(r, &rows[0], "followers must see the leader's exact rows");
    }
    // 64 identical queries on 4 workers: with the single-flight window
    // this wide, some must have coalesced.
    let hits = server.shared_scan_hits();
    let snap = server.registry().snapshot();
    let per_tenant_hits: u64 = snap.values().map(|s| s.shared_scan_hits).sum();
    assert_eq!(hits, per_tenant_hits, "batcher and tenant counters agree");
    let agg = server.stats();
    assert_eq!(agg.resolved_subset, 64);
    assert_eq!(agg.resolved(), agg.admitted);
}

/// Regression (REVIEW: high): same-group epoch-0 tenants concurrently
/// issuing queries of the *same normalized shape* but different literals
/// or LIMITs must never coalesce — every answer must match a direct
/// execution of that exact query. Before keying the batcher on the full
/// query identity, the normalized-shape key handed followers rows for
/// the wrong literals.
#[test]
fn same_shape_different_literals_never_share_rows() {
    let db = shared_db();
    let server = Arc::new(MtServer::start(MtConfig {
        shards: 1,
        workers_per_shard: 4,
        queue_depth: 64,
        deadline_ns: 0,
        retry: RetryPolicy::default(),
        faults: FaultPlan::disabled(),
    }));
    for t in 0..4u64 {
        server.register_tenant(t, 7, MirrorBackend::single(Arc::clone(&db), 100));
    }
    // One template, four instantiations: distinct literals and LIMITs.
    let variants: Vec<Query> = [
        "SELECT t.title FROM title AS t WHERE t.production_year > 2010 LIMIT 7",
        "SELECT t.title FROM title AS t WHERE t.production_year > 2020 LIMIT 7",
        "SELECT t.title FROM title AS t WHERE t.production_year > 2010 LIMIT 2",
        "SELECT t.title FROM title AS t WHERE t.production_year > 2010",
    ]
    .iter()
    .map(|s| asqp_db::sql::parse(s).expect("valid test SQL"))
    .collect();
    let expected: Vec<String> = variants
        .iter()
        .map(|q| format!("{:?}", db.execute(q).expect("direct execution")))
        .collect();

    let answers: Vec<(usize, ServeResult)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..64usize)
            .map(|i| {
                let server = Arc::clone(&server);
                let variant = i % variants.len();
                let q = variants[variant].clone();
                s.spawn(move || (variant, server.query_blocking((i % 4) as u64, q)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    server.shutdown();

    for (variant, r) in &answers {
        let rows = format!(
            "{:?}",
            r.as_ref().expect("subset path cannot fail here").rows
        );
        assert_eq!(
            &rows, &expected[*variant],
            "variant {variant}: answer must be for the exact submitted query"
        );
    }
}

/// The simulator determinism gate at integration scale: double-run two
/// seeds at 20k tenants and require byte-identical transcripts plus
/// lossless per-tenant accounting.
#[test]
fn mt_sim_double_run_is_byte_identical_at_scale() {
    for seed in [7u64, 42] {
        let cfg = MtSimConfig::standard(seed, 20_000);
        let a = run_mt_sim(&cfg);
        let b = run_mt_sim(&cfg);
        assert_eq!(a.render(), b.render(), "seed {seed}");
        assert!(a.lossless(), "seed {seed}");
        assert!(a.stats.rejected > 0 && a.forks > 0 && a.shared_scan_hits > 0);
    }
}
