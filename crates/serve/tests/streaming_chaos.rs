//! Streaming chaos suite: the living-data scenario end to end.
//!
//! Two complementary harnesses, mirroring the frozen-data chaos suite:
//!
//! * the deterministic driver ([`run_stream`]) proves *replayability* —
//!   over a seed matrix, two runs of the same interleaved
//!   ingest/update/query/observe schedule render byte-identical
//!   transcripts (real row counts included) and settle their write
//!   ledger at `lost_writes=0`;
//! * the threaded harness proves *liveness under real concurrency* —
//!   writer threads ingest into a shared [`LiveBackend`] while the
//!   worker-pool [`Server`] answers fault-injected queries from it, and
//!   at the end every acknowledged row is present, the serving view has
//!   converged to the live fingerprint, and no request was lost.

use asqp_db::{sql, Query, Row, Value};
use asqp_serve::{
    run_stream, stream_fixture, FaultPlan, LiveBackend, RetryPolicy, ServeConfig, ServeResult,
    Server, StreamConfig,
};
use asqp_telemetry as telemetry;
use std::sync::Arc;

/// Determinism: over a matrix of seeds, two streaming runs of the same
/// seed render byte-identical transcripts, the ledger closes at zero
/// lost writes, and every operation is accounted for.
#[test]
fn stream_seed_matrix_is_deterministic_and_lossless() {
    for seed in [0u64, 1, 7, 42, 1234, 0xFEED_2024] {
        let cfg = StreamConfig::chaos(seed);
        let a = run_stream(&cfg).expect("stream run");
        let b = run_stream(&cfg).expect("stream run");
        assert_eq!(
            a.render(),
            b.render(),
            "seed {seed}: same-seed streaming runs must replay byte-identically"
        );
        assert_eq!(a.final_fingerprint, b.final_fingerprint, "seed {seed}");

        let s = &a.stats;
        assert_eq!(s.lost_writes, 0, "seed {seed}: the write ledger must close");
        assert_eq!(
            s.appends + s.updates + s.queries,
            cfg.ops,
            "seed {seed}: every operation must be an append, update, or query"
        );
        assert_eq!(
            s.resolved_subset + s.resolved_full + s.degraded,
            s.queries,
            "seed {seed}: every query must resolve"
        );
        assert!(s.appends > 0, "seed {seed}: the mix must exercise ingest");
        assert!(s.updates > 0, "seed {seed}: the mix must exercise updates");
        assert!(
            s.refreshes > 0,
            "seed {seed}: ingest must trigger at least one view refresh"
        );
        let footer = format!("lost_writes={}\n", s.lost_writes);
        assert!(
            a.render().ends_with(&footer),
            "seed {seed}: transcript must end with the ledger line"
        );
    }
}

/// Distinct seeds must produce distinct interleavings — otherwise the
/// matrix above proves nothing.
#[test]
fn stream_seeds_decorrelate() {
    let a = run_stream(&StreamConfig::chaos(10)).expect("stream run");
    let b = run_stream(&StreamConfig::chaos(11)).expect("stream run");
    assert_ne!(a.render(), b.render());
}

fn stream_queries(n: usize) -> Vec<Query> {
    let texts = [
        "SELECT e.id FROM events e WHERE e.bucket = 3",
        "SELECT e.id FROM events e WHERE e.bucket = 7",
        "SELECT e.id FROM events e WHERE e.id >= 10 AND e.id < 60",
        "SELECT COUNT(*) FROM events e WHERE e.bucket < 9",
        "SELECT e.score FROM events e WHERE e.bucket = 12",
    ];
    (0..n)
        .map(|i| sql::parse(texts[i % texts.len()]).expect("fixture query parses"))
        .collect()
}

/// One deterministic ingest row for writer thread `w`, batch `b`, row `i`.
fn writer_row(w: u64, b: u64, i: u64) -> Row {
    let id = 1_000_000 + w * 100_000 + b * 1_000 + i;
    vec![
        Value::Int(id as i64),
        Value::Int((id % 16) as i64),
        Value::Float((id % 1000) as f64 / 10.0),
    ]
}

/// The acceptance scenario: writer threads ingest while the threaded
/// server answers under an injected fault plan. No panics, no lost
/// requests, and — the living-data contract — no lost writes: after the
/// final drift observation, every acknowledged row is in the live
/// database and the serving view has converged to its fingerprint.
#[test]
fn threaded_ingest_loses_no_writes_and_no_requests() {
    const WRITERS: u64 = 3;
    const BATCHES: u64 = 8;
    const CLIENTS: usize = 48;

    let recorder = Arc::new(telemetry::MemoryRecorder::new());
    let report = telemetry::scoped(recorder.clone(), || {
        let seed_rows = 128usize;
        let backend = Arc::new(
            LiveBackend::new(stream_fixture(9, seed_rows).expect("fixture"), 50, 4)
                .expect("backend"),
        );
        let server = Arc::new(Server::start(
            Arc::clone(&backend),
            ServeConfig {
                workers: 4,
                queue_depth: 256,
                deadline_ns: 0,
                retry: RetryPolicy {
                    max_retries: 3,
                    base_ns: 20_000,
                    cap_ns: 200_000,
                },
                faults: FaultPlan::chaos(0xBEE5),
            },
        ));

        let (acked, results): (u64, Vec<ServeResult>) = std::thread::scope(|s| {
            // Writers: seeded append + update batches, counting acked rows.
            let writers: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let backend = Arc::clone(&backend);
                    s.spawn(move || {
                        let mut acked = 0u64;
                        for b in 0..BATCHES {
                            let rows: Vec<Row> =
                                (0..4 + (w + b) % 5).map(|i| writer_row(w, b, i)).collect();
                            acked += backend.append("events", &rows).expect("append") as u64;
                            // In-place rewrite of a seed row: bumps the data
                            // version without changing the row population.
                            let rid = ((w * 31 + b * 7) % seed_rows as u64) as usize;
                            backend
                                .update("events", &[(rid, writer_row(w, b, 99))])
                                .expect("update");
                            if b % 3 == 0 {
                                backend.observe_data().expect("observe");
                            }
                        }
                        acked
                    })
                })
                .collect();

            // Clients: fault-injected queries racing the writers.
            let clients: Vec<_> = stream_queries(CLIENTS)
                .into_iter()
                .map(|q| {
                    let server = Arc::clone(&server);
                    s.spawn(move || server.query_blocking(q))
                })
                .collect();

            let acked = writers
                .into_iter()
                .map(|h| h.join().expect("writer panicked"))
                .sum();
            let results = clients
                .into_iter()
                .map(|h| h.join().expect("client panicked"))
                .collect();
            (acked, results)
        });

        // Every request resolves (queue depth 256 > 48 clients, so nothing
        // is even rejected), and none fatally.
        assert_eq!(results.len(), CLIENTS);
        for r in &results {
            let answer = r.as_ref().expect("no request may be lost");
            assert!(answer.attempts <= 4);
        }
        let stats = server.stats();
        assert_eq!(stats.admitted, CLIENTS as u64);
        assert_eq!(stats.rejected, 0);
        assert_eq!(
            stats.resolved(),
            stats.admitted,
            "no admitted request may vanish"
        );
        assert_eq!(stats.fatal, 0);
        server.shutdown();

        // The living-data contract: the ledger closes exactly.
        backend.observe_data().expect("final observation");
        assert_eq!(
            backend.row_count("events") as u64,
            seed_rows as u64 + acked,
            "every acknowledged append must be present — zero lost writes"
        );
        assert_eq!(
            backend.view_fingerprint(),
            backend.data_fingerprint(),
            "after the final observation the serving view must be current"
        );
        recorder.report()
    });

    // Telemetry must agree with the ledger.
    let c = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    assert_eq!(c("serve.admitted"), CLIENTS as u64);
    assert_eq!(
        c("serve.resolved.subset") + c("serve.resolved.full") + c("serve.degraded"),
        c("serve.admitted")
    );
    assert!(c("serve.stream.appended_rows") > 0);
    assert!(c("serve.stream.updated_rows") > 0);
    assert!(
        c("serve.stream.refresh") > 0,
        "concurrent ingest must force at least one view refresh"
    );
}

/// A refresh mid-flight must not tear an answer: a query that pinned the
/// old view keeps it, while new queries see the refreshed one.
#[test]
fn refresh_never_tears_an_inflight_snapshot() {
    let backend = LiveBackend::new(stream_fixture(5, 64).expect("fixture"), 100, 2).expect("ok");
    let q = sql::parse("SELECT COUNT(*) FROM events e WHERE e.id >= 0").expect("parse");

    let pinned = backend.view();
    let before = pinned.execute(&q).expect("count");
    let rows: Vec<Row> = (0..50).map(|i| writer_row(9, 9, i)).collect();
    backend.append("events", &rows).expect("append");
    assert!(backend.observe_data().expect("observe"));

    assert_eq!(
        pinned.execute(&q).expect("count").rows,
        before.rows,
        "the pinned snapshot must answer exactly as before the refresh"
    );
    assert_ne!(
        backend.view().execute(&q).expect("count").rows,
        before.rows,
        "fresh snapshots must see the refreshed view"
    );
}
