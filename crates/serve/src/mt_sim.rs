//! Deterministic multi-tenant discrete-event simulator.
//!
//! Scales the single-session chaos simulator ([`run_sim`](crate::run_sim))
//! to the ROADMAP's "millions of users" claim: a generated trace of up to
//! ~10⁶ simulated tenants — every arrival time, request count, plan shape
//! and fault a pure hash of the seed — replayed through the full
//! multi-tenant serving semantics on a virtual clock:
//!
//! - tenants register on first arrival and are dealt across shard pools
//!   by the striped [`StripedAllocator`] policy;
//! - tenant workload embeddings (hash-generated around interest
//!   archetypes) are clustered with `asqp_embed::kmeans`, and every
//!   tenant in a cluster reads that cluster's shared approximation set
//!   (share epoch 0) until its own drift streak trips and it forks to a
//!   private set (a unique non-zero epoch) — the virtual-time mirror of
//!   `asqp_core::cow`;
//! - concurrent subset scans with equal (group, epoch, shape) coalesce,
//!   crediting followers with `shared_scan_hits` exactly like the
//!   threaded [`ScanBatcher`](crate::ScanBatcher) — a simulated "shape"
//!   id stands for one *exact* query (the sim has no literals), matching
//!   the batcher's full-query-identity key;
//! - admission rejections, retries, degradations and resolutions are
//!   attributed to the owning tenant, and the per-tenant accounting
//!   lines plus an event-stream digest form the transcript the CI
//!   `multitenant` job diffs byte-for-byte across double runs.
//!
//! At 10⁵–10⁶ users a full event log would dominate memory, so instead
//! of storing events the simulator folds every one of them (with its
//! virtual timestamp) into a single [splitmix64](crate::fault) digest —
//! byte-identical transcripts therefore still certify identical event
//! streams, not just identical totals.

use crate::backoff::RetryPolicy;
use crate::fault::{splitmix64, FaultPlan};
use crate::server::ServerStats;
use crate::tenant::{StripedAllocator, TenantId, TenantStats};
use asqp_embed::{kmeans, sq_dist};
use asqp_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// Configuration of one simulated multi-tenant run.
#[derive(Debug, Clone)]
pub struct MtSimConfig {
    /// Simulated tenants (users). The acceptance gate runs ≥ 10⁵.
    pub tenants: u64,
    /// Shard pools tenants are striped across.
    pub shards: usize,
    /// Workers per shard.
    pub workers_per_shard: usize,
    /// Admission-queue depth per shard.
    pub queue_depth: usize,
    /// Per-request deadline from admission; `0` = none.
    pub deadline_ns: u64,
    pub retry: RetryPolicy,
    pub faults: FaultPlan,
    /// Interest archetypes = kmeans clusters = COW groups.
    pub groups: usize,
    /// Workload-embedding dimensionality.
    pub embed_dim: usize,
    /// Tenants sampled for the kmeans fit (all tenants are then assigned
    /// to the nearest centroid).
    pub cluster_sample: usize,
    /// Requests per tenant: `1 + hash % extra_requests`.
    pub extra_requests: u64,
    /// Distinct queries per group's workload. A shape id models one
    /// exact query (the threaded batcher keys on full query text).
    pub shapes_per_group: u64,
    /// Pre-fork percentage (0–100) of (group, shape) pairs the shared
    /// set can answer.
    pub subset_pct: u8,
    /// Post-fork answerable percentage — forking exists to fix drift, so
    /// this is typically higher.
    pub forked_subset_pct: u8,
    /// Consecutive confidently-deviating misses before a tenant forks.
    pub drift_trigger: u32,
    /// Percentage of full-routed requests that count as confident
    /// deviations.
    pub drift_pct: u8,
    /// Percentage of tenants that depart after their last request.
    pub depart_pct: u8,
    /// Mean virtual gap between consecutive arrivals across all tenants.
    pub inter_arrival_ns: u64,
    pub subset_service_ns: u64,
    pub full_service_ns: u64,
}

impl MtSimConfig {
    /// The reference multi-tenant scenario: arrival pressure roughly at
    /// pool capacity so queueing, rejections, degradations, shared scans
    /// and forks all occur, at any tenant count.
    pub fn standard(seed: u64, tenants: u64) -> MtSimConfig {
        MtSimConfig {
            tenants: tenants.max(1),
            shards: 8,
            workers_per_shard: 4,
            queue_depth: 24,
            deadline_ns: 300_000,
            retry: RetryPolicy {
                max_retries: 3,
                base_ns: 50_000,
                cap_ns: 400_000,
            },
            faults: FaultPlan::chaos(seed),
            groups: 16,
            embed_dim: 8,
            cluster_sample: 1024,
            extra_requests: 3,
            shapes_per_group: 12,
            subset_pct: 55,
            forked_subset_pct: 85,
            drift_trigger: 3,
            drift_pct: 60,
            depart_pct: 20,
            inter_arrival_ns: 2_000,
            subset_service_ns: 15_000,
            full_service_ns: 60_000,
        }
    }
}

/// Aggregate + per-tenant outcome of a simulated multi-tenant run.
#[derive(Debug)]
pub struct MtSimReport {
    pub seed: u64,
    pub tenants: u64,
    pub shards: usize,
    pub groups: usize,
    /// Global totals in the single-tenant [`ServerStats`] shape.
    pub stats: ServerStats,
    pub shared_scan_hits: u64,
    pub forks: u64,
    pub departed: u64,
    /// splitmix64 fold of every event (with virtual timestamps).
    pub digest: u64,
    pub makespan_ns: u64,
    /// Accounting per tenant, indexed by tenant id.
    pub per_tenant: Vec<TenantStats>,
}

impl MtSimReport {
    /// True iff every tenant's admitted requests all resolved — the
    /// zero-lost-requests invariant, held per tenant.
    pub fn lossless(&self) -> bool {
        self.per_tenant.iter().all(|t| t.lossless())
    }

    /// Resolved requests per virtual second.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.stats.resolved() as f64 * 1e9 / self.makespan_ns as f64
    }

    /// Canonical transcript: header, one accounting line per tenant, the
    /// event-stream digest, and a summary footer. This is the unit the
    /// CI `multitenant` job diffs byte-for-byte across double runs.
    pub fn render(&self) -> String {
        let s = &self.stats;
        let mut out = String::with_capacity(self.per_tenant.len() * 96 + 256);
        out.push_str(&format!(
            "mtsim seed={} tenants={} shards={} groups={}\n",
            self.seed, self.tenants, self.shards, self.groups
        ));
        for (tenant, stats) in self.per_tenant.iter().enumerate() {
            out.push_str(&stats.render(tenant as TenantId));
        }
        out.push_str(&format!("digest={:016x}\n", self.digest));
        out.push_str(&format!(
            "summary admitted={} rejected={} subset={} full={} degraded={} retries={} \
             shared={} forks={} departed={} makespan_ns={}\n",
            s.admitted,
            s.rejected,
            s.resolved_subset,
            s.resolved_full,
            s.degraded,
            s.retries,
            self.shared_scan_hits,
            self.forks,
            self.departed,
            self.makespan_ns
        ));
        out
    }
}

// ---------------------------------------------------------------------
// Pure trace generation
// ---------------------------------------------------------------------

const SALT_ARCH: u64 = 0x61c8_8646_80b5_83eb;
const SALT_REQS: u64 = 0x9e37_79b9_7f4a_7c15;
const SALT_TIME: u64 = 0xc2b2_ae3d_27d4_eb4f;
const SALT_SHAPE: u64 = 0x2545_f491_4f6c_dd1d;
const SALT_DRIFT: u64 = 0xff51_afd7_ed55_8ccd;
const SALT_FORKROUTE: u64 = 0xd6e8_feb8_6659_fd93;
const SALT_DEPART: u64 = 0x8ebc_6af0_9c88_c6e3;

fn h2(seed: u64, a: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(a ^ salt))
}

fn h3(seed: u64, a: u64, b: u64, salt: u64) -> u64 {
    splitmix64(seed ^ splitmix64(a ^ splitmix64(b ^ salt)))
}

fn pct(h: u64, p: u8) -> bool {
    h % 100 < p as u64
}

/// Map a hash to `[-1, 1)`.
fn signed_unit(h: u64) -> f32 {
    (h >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0
}

/// A tenant's workload embedding: its interest archetype's centroid plus
/// tenant-specific noise — hash-generated, so the whole population needs
/// no storage until clustering.
fn tenant_embedding(cfg: &MtSimConfig, seed: u64, tenant: u64) -> Vec<f32> {
    let arch = h2(seed, tenant, SALT_ARCH) % cfg.groups.max(1) as u64;
    (0..cfg.embed_dim)
        .map(|d| {
            let center = signed_unit(h3(seed, arch, d as u64, SALT_ARCH));
            let noise = signed_unit(h3(seed, tenant, d as u64, SALT_TIME)) * 0.1;
            center + noise
        })
        .collect()
}

/// Fit kmeans on a strided sample of the population and return the
/// centroids; every tenant is then assigned to its nearest centroid at
/// registration. Deterministic: seeded rng, fixed iteration order.
fn fit_centroids(cfg: &MtSimConfig, seed: u64) -> Vec<Vec<f32>> {
    let sample_n = cfg.cluster_sample.max(cfg.groups).min(cfg.tenants as usize);
    let step = (cfg.tenants / sample_n.max(1) as u64).max(1);
    let sample: Vec<Vec<f32>> = (0..sample_n as u64)
        .map(|i| tenant_embedding(cfg, seed, (i * step) % cfg.tenants.max(1)))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    kmeans(&sample, cfg.groups.max(1), 8, &mut rng).centroids
}

fn nearest_centroid(centroids: &[Vec<f32>], point: &[f32]) -> u64 {
    let mut best = 0u64;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(c, point);
        if d < best_d {
            best_d = d;
            best = i as u64;
        }
    }
    best
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum MtEvent {
    Arrival { tenant: u64, rid: u64, shape: u64 },
    WorkerFree { shard: usize, worker: usize },
}

struct Pending {
    tenant: u64,
    rid: u64,
    shape: u64,
    admitted_ns: u64,
}

struct ShardState {
    queue: VecDeque<Pending>,
    idle: BTreeSet<usize>,
}

/// Flat per-tenant account (the simulator-side `TenantCounters`).
#[derive(Default, Clone)]
struct Acct {
    shard: u32,
    group: u32,
    registered: bool,
    admitted: u32,
    rejected: u32,
    subset: u32,
    full: u32,
    degraded: u32,
    retries: u32,
    shared: u32,
    forked: bool,
    departed: bool,
    remaining: u32,
    streak: u32,
}

struct SimState {
    accts: Vec<Acct>,
    alloc: StripedAllocator,
    /// In-flight subset scans: (group, epoch, shape) → finish time.
    inflight: BTreeMap<(u64, u64, u64), u64>,
    digest: u64,
    forks: u64,
    departed: u64,
    shared_hits: u64,
    retries_total: u64,
    makespan: u64,
}

impl SimState {
    fn fold(&mut self, code: u64, a: u64, b: u64, c: u64) {
        self.digest =
            splitmix64(self.digest ^ splitmix64(code ^ splitmix64(a ^ splitmix64(b ^ c))));
    }

    fn acct_mut(&mut self, tenant: u64) -> Option<&mut Acct> {
        self.accts.get_mut(tenant as usize)
    }
}

// Event codes folded into the digest.
const EV_REGISTER: u64 = 1;
const EV_ADMIT: u64 = 2;
const EV_REJECT: u64 = 3;
const EV_RESOLVE_SUBSET: u64 = 4;
const EV_RESOLVE_FULL: u64 = 5;
const EV_RESOLVE_DEGRADED: u64 = 6;
const EV_RETRY: u64 = 7;
const EV_SHARED_HIT: u64 = 8;
const EV_FORK: u64 = 9;
const EV_DEPART: u64 = 10;

/// Run one simulated multi-tenant scenario. Pure: identical configs
/// produce identical reports (and identical [`MtSimReport::render`]
/// transcripts).
pub fn run_mt_sim(cfg: &MtSimConfig) -> MtSimReport {
    let seed = cfg.faults.seed;
    let centroids = fit_centroids(cfg, seed);

    // ---- Trace generation: every request of every tenant, pure hashes.
    let mut trace: Vec<(u64, u64, u64)> = Vec::new(); // (arrival, tenant, k)
    for t in 0..cfg.tenants {
        let reqs = 1 + h2(seed, t, SALT_REQS) % cfg.extra_requests.max(1);
        let horizon = cfg.tenants.max(1) * cfg.inter_arrival_ns;
        let base = h2(seed, t, SALT_TIME) % horizon.max(1);
        for k in 0..reqs {
            let jitter = h3(seed, t, k, SALT_TIME) % cfg.inter_arrival_ns.max(1);
            let arrival = base + k * 4 * cfg.inter_arrival_ns + jitter;
            trace.push((arrival, t, k));
        }
    }
    trace.sort_unstable();

    let mut heap: BinaryHeap<Reverse<(u64, u64, MtEvent)>> = BinaryHeap::new();
    let mut tie = 0u64;
    let mut push_event =
        |heap: &mut BinaryHeap<Reverse<(u64, u64, MtEvent)>>, t: u64, e: MtEvent| {
            heap.push(Reverse((t, tie, e)));
            tie += 1;
        };

    let mut requests_of: Vec<u32> = vec![0; cfg.tenants as usize];
    for (rid, &(arrival, tenant, k)) in trace.iter().enumerate() {
        let shape = h3(seed, tenant, k, SALT_SHAPE) % cfg.shapes_per_group.max(1);
        if let Some(r) = requests_of.get_mut(tenant as usize) {
            *r += 1;
        }
        push_event(
            &mut heap,
            arrival,
            MtEvent::Arrival {
                tenant,
                rid: rid as u64,
                shape,
            },
        );
    }
    let total_requests = trace.len() as u64;
    drop(trace);

    // ---- Shard pools: workers come online at t=0 except the fault
    // plan's stalled worker (global index).
    let mut shards: Vec<ShardState> = (0..cfg.shards.max(1))
        .map(|_| ShardState {
            queue: VecDeque::new(),
            idle: BTreeSet::new(),
        })
        .collect();
    for s in 0..cfg.shards.max(1) {
        for w in 0..cfg.workers_per_shard.max(1) {
            let global = s * cfg.workers_per_shard.max(1) + w;
            match cfg.faults.worker_stall(global) {
                Some(stall) => push_event(
                    &mut heap,
                    stall,
                    MtEvent::WorkerFree {
                        shard: s,
                        worker: w,
                    },
                ),
                None => {
                    if let Some(shard) = shards.get_mut(s) {
                        shard.idle.insert(w);
                    }
                }
            }
        }
    }

    let mut st = SimState {
        accts: vec![Acct::default(); cfg.tenants as usize],
        alloc: StripedAllocator::new(cfg.shards.max(1)),
        inflight: BTreeMap::new(),
        digest: splitmix64(seed ^ SALT_ARCH),
        forks: 0,
        departed: 0,
        shared_hits: 0,
        retries_total: 0,
        makespan: 0,
    };
    for (t, &n) in requests_of.iter().enumerate() {
        if let Some(a) = st.accts.get_mut(t) {
            a.remaining = n;
        }
    }
    drop(requests_of);

    // ---- The event loop.
    while let Some(Reverse((now, _, ev))) = heap.pop() {
        match ev {
            MtEvent::Arrival { tenant, rid, shape } => {
                // First arrival registers the tenant: striped placement
                // plus nearest-centroid COW group.
                let registered = st.accts.get(tenant as usize).map(|a| a.registered);
                if registered == Some(false) {
                    let shard = st.alloc.register(tenant);
                    let group = nearest_centroid(&centroids, &tenant_embedding(cfg, seed, tenant));
                    if let Some(a) = st.acct_mut(tenant) {
                        a.registered = true;
                        a.shard = shard as u32;
                        a.group = group as u32;
                    }
                    st.fold(EV_REGISTER, tenant, shard as u64, group);
                }
                let shard_idx = st
                    .accts
                    .get(tenant as usize)
                    .map(|a| a.shard as usize)
                    .unwrap_or(0);
                let at_depth = shards
                    .get(shard_idx)
                    .map(|s| s.queue.len() >= cfg.queue_depth)
                    .unwrap_or(true);
                if at_depth {
                    // Attributed to the rejecting tenant, not a global
                    // counter.
                    if let Some(a) = st.acct_mut(tenant) {
                        a.rejected += 1;
                    }
                    st.fold(EV_REJECT, tenant, rid, now);
                    request_done(cfg, seed, &mut st, tenant, now);
                    continue;
                }
                if let Some(a) = st.acct_mut(tenant) {
                    a.admitted += 1;
                }
                st.fold(EV_ADMIT, tenant, rid, now);
                if let Some(shard) = shards.get_mut(shard_idx) {
                    shard.queue.push_back(Pending {
                        tenant,
                        rid,
                        shape,
                        admitted_ns: now,
                    });
                    if let Some(&w) = shard.idle.iter().next() {
                        if let Some(job) = shard.queue.pop_front() {
                            shard.idle.remove(&w);
                            let done = serve_one_mt(cfg, seed, &mut st, job, now);
                            push_event(
                                &mut heap,
                                done,
                                MtEvent::WorkerFree {
                                    shard: shard_idx,
                                    worker: w,
                                },
                            );
                        }
                    }
                }
            }
            MtEvent::WorkerFree { shard, worker } => {
                let job = shards.get_mut(shard).and_then(|s| s.queue.pop_front());
                match job {
                    Some(job) => {
                        let done = serve_one_mt(cfg, seed, &mut st, job, now);
                        push_event(&mut heap, done, MtEvent::WorkerFree { shard, worker });
                    }
                    None => {
                        if let Some(s) = shards.get_mut(shard) {
                            s.idle.insert(worker);
                        }
                    }
                }
            }
        }
    }

    // ---- Fold the accounts into the report.
    let mut stats = ServerStats::default();
    let per_tenant: Vec<TenantStats> = st
        .accts
        .iter()
        .map(|a| {
            stats.admitted += a.admitted as u64;
            stats.rejected += a.rejected as u64;
            stats.resolved_subset += a.subset as u64;
            stats.resolved_full += a.full as u64;
            stats.degraded += a.degraded as u64;
            stats.retries += a.retries as u64;
            TenantStats {
                shard: a.shard as usize,
                group: a.group as u64,
                admitted: a.admitted as u64,
                rejected: a.rejected as u64,
                resolved_subset: a.subset as u64,
                resolved_full: a.full as u64,
                degraded: a.degraded as u64,
                retries: a.retries as u64,
                fatal: 0,
                shared_scan_hits: a.shared as u64,
                forked: a.forked,
            }
        })
        .collect();

    debug_assert_eq!(stats.admitted + stats.rejected, total_requests);
    telemetry::counter("serve.mtsim.requests", total_requests);
    telemetry::counter("serve.mtsim.admitted", stats.admitted);
    telemetry::counter("serve.mtsim.rejected", stats.rejected);
    telemetry::counter("serve.mtsim.shared", st.shared_hits);
    telemetry::counter("serve.mtsim.forks", st.forks);

    MtSimReport {
        seed,
        tenants: cfg.tenants,
        shards: cfg.shards.max(1),
        groups: cfg.groups.max(1),
        stats,
        shared_scan_hits: st.shared_hits,
        forks: st.forks,
        departed: st.departed,
        digest: st.digest,
        makespan_ns: st.makespan,
        per_tenant,
    }
}

/// Pre-fork routing is a property of the *shared set*: every epoch-0
/// tenant of a group routes a given shape identically (that is what makes
/// scan sharing sound). Post-fork routing is private to the tenant.
fn shared_routes_to_subset(cfg: &MtSimConfig, seed: u64, group: u64, shape: u64) -> bool {
    pct(h3(seed, group, shape, SALT_SHAPE), cfg.subset_pct)
}

fn sim_rows(seed: u64, rid: u64) -> u64 {
    splitmix64(seed ^ rid.wrapping_mul(SALT_SHAPE)) % 50
}

/// Bookkeeping after a tenant's request leaves the system (resolved or
/// rejected): when its last request is done, the tenant may depart,
/// freeing its stripe for later arrivals.
fn request_done(cfg: &MtSimConfig, seed: u64, st: &mut SimState, tenant: u64, now: u64) {
    let last = match st.acct_mut(tenant) {
        Some(a) => {
            a.remaining = a.remaining.saturating_sub(1);
            a.remaining == 0
        }
        None => false,
    };
    if last
        && pct(h2(seed, tenant, SALT_DEPART), cfg.depart_pct)
        && st.alloc.depart(tenant).is_some()
    {
        if let Some(a) = st.acct_mut(tenant) {
            a.departed = true;
        }
        st.departed += 1;
        st.fold(EV_DEPART, tenant, 0, now);
    }
}

/// Walk one admitted request through the multi-tenant ladder on virtual
/// time. Returns the worker-release time.
fn serve_one_mt(
    cfg: &MtSimConfig,
    seed: u64,
    st: &mut SimState,
    job: Pending,
    start_ns: u64,
) -> u64 {
    let Pending {
        tenant,
        rid,
        shape,
        admitted_ns,
    } = job;
    let mut now = start_ns;
    let deadline = if cfg.deadline_ns == 0 {
        u64::MAX
    } else {
        admitted_ns.saturating_add(cfg.deadline_ns)
    };
    let remaining = |now: u64| deadline.saturating_sub(now);

    let (group, forked) = st
        .accts
        .get(tenant as usize)
        .map(|a| (a.group as u64, a.forked))
        .unwrap_or((0, false));
    // Share epoch: 0 on the cluster's shared set, unique (tenant+1) once
    // forked — forked tenants never coalesce with anyone.
    let epoch = if forked { tenant + 1 } else { 0 };
    let answerable = if forked {
        pct(
            h3(seed, tenant, shape, SALT_FORKROUTE),
            cfg.forked_subset_pct,
        )
    } else {
        shared_routes_to_subset(cfg, seed, group, shape)
    };

    if answerable {
        // Shared-scan batching: ride an identical in-flight scan when the
        // group, epoch and exact query (shape id) all match.
        let key = (group, epoch, shape);
        let leader_finish = st.inflight.get(&key).copied().filter(|&f| f > now);
        let finish = match leader_finish {
            Some(f) => {
                st.shared_hits += 1;
                if let Some(a) = st.acct_mut(tenant) {
                    a.shared += 1;
                }
                st.fold(EV_SHARED_HIT, tenant, rid, f);
                f
            }
            None => {
                let f = now + cfg.subset_service_ns;
                st.inflight.insert(key, f);
                f
            }
        };
        now = finish;
        if let Some(a) = st.acct_mut(tenant) {
            a.subset += 1;
            // A confident subset answer resets the tenant's drift streak
            // (mirrors `CowSession::finish`).
            a.streak = 0;
        }
        st.fold(EV_RESOLVE_SUBSET, tenant, rid, now ^ sim_rows(seed, rid));
        st.makespan = st.makespan.max(now);
        request_done(cfg, seed, st, tenant, now);
        return now;
    }

    // Full route: the attempt ladder under the shared fault plan.
    let mut attempts = 0u32;
    let mut resolved_full = false;
    loop {
        if attempts >= cfg.retry.max_attempts() {
            break;
        }
        let rem = remaining(now);
        if rem == 0 {
            break;
        }
        let fault = cfg.faults.decide(rid, attempts);
        if fault.latency_ns >= rem {
            now += rem;
            break;
        }
        now += fault.latency_ns;
        attempts += 1;
        if fault.inject_error {
            if let Some(a) = st.acct_mut(tenant) {
                a.retries += 1;
            }
            st.retries_total += 1;
            st.fold(EV_RETRY, tenant, rid, now);
            if attempts >= cfg.retry.max_attempts() {
                break;
            }
            let sleep = cfg.retry.backoff_ns(seed, rid, attempts - 1);
            now += sleep.min(remaining(now));
        } else {
            now += cfg.full_service_ns;
            resolved_full = true;
            break;
        }
    }

    if resolved_full {
        if let Some(a) = st.acct_mut(tenant) {
            a.full += 1;
        }
        st.fold(EV_RESOLVE_FULL, tenant, rid, now ^ sim_rows(seed, rid));
    } else {
        // Degrade to the approximation set.
        now += cfg.subset_service_ns;
        if let Some(a) = st.acct_mut(tenant) {
            a.degraded += 1;
        }
        st.fold(EV_RESOLVE_DEGRADED, tenant, rid, now ^ sim_rows(seed, rid));
    }

    // Drift: a full-routed request that confidently deviates extends the
    // tenant's streak; at the trigger the tenant forks off the shared set
    // (the COW copy-on-write moment — everyone else's epoch-0 routing is
    // untouched).
    if !forked && pct(h3(seed, rid, group, SALT_DRIFT), cfg.drift_pct) {
        let trip = match st.acct_mut(tenant) {
            Some(a) => {
                a.streak += 1;
                a.streak >= cfg.drift_trigger
            }
            None => false,
        };
        if trip {
            if let Some(a) = st.acct_mut(tenant) {
                a.forked = true;
                a.streak = 0;
            }
            st.forks += 1;
            st.fold(EV_FORK, tenant, group, now);
        }
    }

    st.makespan = st.makespan.max(now);
    request_done(cfg, seed, st, tenant, now);
    now
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(seed: u64) -> MtSimConfig {
        MtSimConfig::standard(seed, 2_000)
    }

    #[test]
    fn same_seed_renders_identically() {
        let cfg = small(1234);
        let a = run_mt_sim(&cfg);
        let b = run_mt_sim(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn different_seeds_render_differently() {
        let a = run_mt_sim(&small(1));
        let b = run_mt_sim(&small(2));
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn accounting_is_lossless_per_tenant() {
        for seed in [0u64, 7, 42] {
            let r = run_mt_sim(&small(seed));
            assert!(r.lossless(), "seed {seed}: lost requests");
            let s = &r.stats;
            assert_eq!(
                s.resolved_subset + s.resolved_full + s.degraded,
                s.admitted,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn standard_profile_exercises_all_paths() {
        let r = run_mt_sim(&small(7));
        assert!(r.stats.rejected > 0, "no admission rejections");
        assert!(r.stats.degraded > 0, "no degradations");
        assert!(r.stats.retries > 0, "no retries");
        assert!(r.shared_scan_hits > 0, "no shared scans");
        assert!(r.forks > 0, "no COW forks");
        assert!(r.departed > 0, "no departures");
    }

    #[test]
    fn epoch_zero_tenants_of_a_group_route_identically() {
        let cfg = small(9);
        let seed = cfg.faults.seed;
        for shape in 0..cfg.shapes_per_group {
            for group in 0..4 {
                // The routing hash takes only (seed, group, shape) — it
                // *cannot* depend on the tenant, which is the soundness
                // condition for coalescing epoch-0 scans.
                assert_eq!(
                    shared_routes_to_subset(&cfg, seed, group, shape),
                    shared_routes_to_subset(&cfg, seed, group, shape)
                );
            }
        }
    }

    #[test]
    fn forked_tenants_never_share_scans() {
        let r = run_mt_sim(&small(21));
        // Forked tenants exist in this profile; their shared hits may
        // predate the fork, but the epoch construction (tenant+1) makes
        // post-fork coalescing impossible — assert the invariant that
        // derived it.
        assert!(r.forks > 0);
        for (t, stats) in r.per_tenant.iter().enumerate() {
            let epoch = if stats.forked { t as u64 + 1 } else { 0 };
            if stats.forked {
                assert_ne!(epoch, 0);
            }
        }
    }
}
