//! What the server serves: a routing backend over subset + full database.
//!
//! [`SessionBackend`] is the seam between the serving layer and the
//! ASQP session logic. The real implementation is
//! [`asqp_core::Session`] (estimator-routed, drift-tracked); the
//! [`MirrorBackend`] is a model-free stand-in — hash-routed over two
//! plain databases — so chaos tests and throughput benches can hammer
//! the concurrency machinery without paying for RL training.

use crate::fault::fnv1a;
use asqp_core::{CowSession, RoutePlan, Session};
use asqp_db::{Database, DbResult, Query, ResultSet};
use std::sync::Arc;

/// The backend's routing verdict, opaque to the server beyond
/// `answerable` (it carries the session's interior plan through to
/// [`SessionBackend::finish`]).
#[derive(Debug, Clone, Copy)]
pub struct RouteDecision {
    /// `true` → answer from the approximation set; `false` → full DB.
    pub answerable: bool,
    plan: Option<RoutePlan>,
}

impl RouteDecision {
    /// A bare decision with no session plan attached (for stand-in
    /// backends).
    pub fn bare(answerable: bool) -> RouteDecision {
        RouteDecision {
            answerable,
            plan: None,
        }
    }
}

/// A thread-safe query-answering backend the server fans out over.
pub trait SessionBackend: Send + Sync + 'static {
    /// Decide the route for `q` without executing anything.
    fn plan(&self, q: &Query) -> RouteDecision;
    /// Answer from the approximation set (local, fault-free domain).
    fn answer_subset(&self, q: &Query) -> DbResult<ResultSet>;
    /// Answer from the full database (the faultable domain).
    fn answer_full(&self, q: &Query) -> DbResult<ResultSet>;
    /// Record the outcome of a routed query (statistics, drift tracking).
    fn finish(&self, q: &Query, decision: &RouteDecision) -> DbResult<()> {
        let _ = (q, decision);
        Ok(())
    }
    /// Scan-sharing identity for the multi-tenant batcher. Same-group
    /// backends at the same epoch — **including the default epoch `0`** —
    /// are declared interchangeable: their identical in-flight subset
    /// queries coalesce, and a follower is handed a clone of the
    /// leader's rows. Registering backends that do not answer subset
    /// queries identically under one group is therefore unsound; give
    /// them distinct groups. A [`CowSession`] signals its private fork
    /// with a process-unique non-zero epoch, which takes it out of every
    /// shared flight of its old cluster.
    fn share_epoch(&self) -> u64 {
        0
    }

    /// Atomically observe the share epoch *together with* a subset scan
    /// pinned to the set that epoch describes. The multi-tenant batcher
    /// keys coalescing on the returned epoch and runs the returned
    /// closure as the leader's scan; implementations must guarantee that
    /// a concurrent fork cannot slip in between the two observations
    /// (the default pairing is correct only because a plain backend's
    /// epoch never changes).
    fn pinned_subset_scan<'a>(
        &'a self,
        q: &'a Query,
    ) -> (u64, Box<dyn FnOnce() -> DbResult<ResultSet> + Send + 'a>) {
        (self.share_epoch(), Box::new(move || self.answer_subset(q)))
    }
}

/// Shared backends serve through `Arc` unchanged — a streaming harness
/// keeps one handle for concurrent ingest while the server owns another.
impl<B: SessionBackend> SessionBackend for Arc<B> {
    fn plan(&self, q: &Query) -> RouteDecision {
        (**self).plan(q)
    }

    fn answer_subset(&self, q: &Query) -> DbResult<ResultSet> {
        (**self).answer_subset(q)
    }

    fn answer_full(&self, q: &Query) -> DbResult<ResultSet> {
        (**self).answer_full(q)
    }

    fn finish(&self, q: &Query, decision: &RouteDecision) -> DbResult<()> {
        (**self).finish(q, decision)
    }

    fn share_epoch(&self) -> u64 {
        (**self).share_epoch()
    }

    fn pinned_subset_scan<'a>(
        &'a self,
        q: &'a Query,
    ) -> (u64, Box<dyn FnOnce() -> DbResult<ResultSet> + Send + 'a>) {
        (**self).pinned_subset_scan(q)
    }
}

impl SessionBackend for Session {
    fn plan(&self, q: &Query) -> RouteDecision {
        let plan = Session::plan(self, q);
        RouteDecision {
            answerable: plan.answerable,
            plan: Some(plan),
        }
    }

    fn answer_subset(&self, q: &Query) -> DbResult<ResultSet> {
        Session::answer_subset(self, q)
    }

    fn answer_full(&self, q: &Query) -> DbResult<ResultSet> {
        Session::answer_full(self, q)
    }

    fn finish(&self, q: &Query, decision: &RouteDecision) -> DbResult<()> {
        if let Some(plan) = &decision.plan {
            Session::finish(self, q, plan)?;
        }
        Ok(())
    }
}

impl SessionBackend for CowSession {
    fn plan(&self, q: &Query) -> RouteDecision {
        let plan = CowSession::plan(self, q);
        RouteDecision {
            answerable: plan.answerable,
            plan: Some(plan),
        }
    }

    fn answer_subset(&self, q: &Query) -> DbResult<ResultSet> {
        CowSession::answer_subset(self, q)
    }

    fn answer_full(&self, q: &Query) -> DbResult<ResultSet> {
        CowSession::answer_full(self, q)
    }

    fn finish(&self, q: &Query, decision: &RouteDecision) -> DbResult<()> {
        if let Some(plan) = &decision.plan {
            CowSession::finish(self, q, plan)?;
        }
        Ok(())
    }

    /// Forked tenants stop coalescing with their old cluster.
    fn share_epoch(&self) -> u64 {
        CowSession::share_epoch(self)
    }

    /// Epoch and session come from one [`CowSession::snapshot`] read, so
    /// a fork racing this request can never produce a scan that executes
    /// against the private fork while keyed at the shared epoch 0.
    fn pinned_subset_scan<'a>(
        &'a self,
        q: &'a Query,
    ) -> (u64, Box<dyn FnOnce() -> DbResult<ResultSet> + Send + 'a>) {
        let (epoch, session) = self.snapshot();
        (epoch, Box::new(move || session.answer_subset(q)))
    }
}

/// Model-free backend: routes by a stable hash of the query text so a
/// fixed fraction of queries takes the subset path, answers both routes
/// from plain databases. Routing is pure — the same query always takes
/// the same route — which keeps chaos runs reproducible.
pub struct MirrorBackend {
    subset: Arc<Database>,
    full: Arc<Database>,
    /// Percentage (0–100) of queries routed to the subset.
    subset_pct: u8,
}

impl MirrorBackend {
    pub fn new(subset: Arc<Database>, full: Arc<Database>, subset_pct: u8) -> MirrorBackend {
        MirrorBackend {
            subset,
            full,
            subset_pct: subset_pct.min(100),
        }
    }

    /// Both routes served by the same database — the cheapest possible
    /// backend for stress tests.
    pub fn single(db: Arc<Database>, subset_pct: u8) -> MirrorBackend {
        MirrorBackend::new(db.clone(), db, subset_pct)
    }

    /// The pure routing rule, exposed so the discrete-event simulator can
    /// reuse it.
    pub fn routes_to_subset(sql: &str, subset_pct: u8) -> bool {
        (fnv1a(sql.as_bytes()) % 100) < subset_pct as u64
    }
}

impl SessionBackend for MirrorBackend {
    fn plan(&self, q: &Query) -> RouteDecision {
        RouteDecision::bare(Self::routes_to_subset(&q.to_sql(), self.subset_pct))
    }

    fn answer_subset(&self, q: &Query) -> DbResult<ResultSet> {
        self.subset.execute(q)
    }

    fn answer_full(&self, q: &Query) -> DbResult<ResultSet> {
        self.full.execute(q)
    }
}
