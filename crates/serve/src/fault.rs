//! Deterministic fault injection, seeded from a single `u64`.
//!
//! Every decision the chaos layer makes — whether a full-DB attempt fails
//! with a transient error, how much artificial latency it takes, which
//! worker stalls — is a pure [splitmix64] hash of `(seed, request,
//! attempt)` or `(seed, worker)`. There is no shared RNG state and no
//! draw-order dependence, so two runs against the same plan inject
//! byte-identical fault sequences no matter how threads interleave
//! (FoundationDB-style seeded simulation, scoped to the serving layer).
//!
//! Faults model the *remote* full database: the approximation set is
//! resident in memory on the serving tier, so the degraded path
//! (subset answers) is deliberately outside the fault domain — that is
//! what lets the degradation ladder guarantee that every admitted request
//! resolves.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use serde::{Deserialize, Serialize};

/// splitmix64 finalizer: a high-quality 64-bit mix, the standard choice
/// for stateless hash-based decision streams.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to a uniform f64 in `[0, 1)` (53 mantissa bits).
#[inline]
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a over a byte string — used to derive per-query routing hashes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What the plan injects into one full-DB attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// Artificial latency to impose before the attempt executes.
    pub latency_ns: u64,
    /// Whether the attempt fails with a transient executor error.
    pub inject_error: bool,
}

/// A seeded, fully deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed; equal seeds ⇒ byte-identical injected fault streams.
    pub seed: u64,
    /// Probability in `[0, 1]` that a full-DB attempt fails transiently.
    pub error_rate: f64,
    /// Probability in `[0, 1]` that an attempt takes a latency spike.
    pub spike_rate: f64,
    /// Artificial latency injected into every full-DB attempt.
    pub base_latency_ns: u64,
    /// Additional latency of one spike.
    pub spike_latency_ns: u64,
    /// Index of the one stalled worker, if any.
    pub stalled_worker: Option<usize>,
    /// How long the stalled worker sleeps before serving its first job.
    pub stall_ns: u64,
}

impl FaultPlan {
    /// No faults at all (production configuration).
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            seed: 0,
            error_rate: 0.0,
            spike_rate: 0.0,
            base_latency_ns: 0,
            spike_latency_ns: 0,
            stalled_worker: None,
            stall_ns: 0,
        }
    }

    /// The reference chaos profile used by the test suite and `chaos_run`:
    /// ≥ 5% transient errors, latency spikes, and one stalled worker —
    /// the failure mix the acceptance run exercises. All magnitudes are in
    /// the microsecond range so a chaos run finishes in milliseconds.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            error_rate: 0.10,
            spike_rate: 0.15,
            base_latency_ns: 20_000,   // 20µs per attempt
            spike_latency_ns: 400_000, // +400µs on a spike
            stalled_worker: Some((splitmix64(seed ^ 0x57a1) % 4) as usize),
            stall_ns: 2_000_000, // 2ms
        }
    }

    /// Domain-separated decision hash for `(request, attempt, salt)`.
    #[inline]
    fn hash(&self, request: u64, attempt: u32, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ splitmix64(request.wrapping_mul(0x9e37_79b9).wrapping_add(salt))
                ^ ((attempt as u64) << 32),
        )
    }

    /// The (pure) fault decision for one full-DB attempt of one request.
    pub fn decide(&self, request: u64, attempt: u32) -> FaultDecision {
        let err = unit_f64(self.hash(request, attempt, 0xE44)) < self.error_rate;
        let spike = unit_f64(self.hash(request, attempt, 0x5B1)) < self.spike_rate;
        let latency_ns = self.base_latency_ns + if spike { self.spike_latency_ns } else { 0 };
        FaultDecision {
            latency_ns,
            inject_error: err,
        }
    }

    /// Stall duration for `worker`, if the plan stalls it.
    pub fn worker_stall(&self, worker: usize) -> Option<u64> {
        match self.stalled_worker {
            Some(w) if w == worker && self.stall_ns > 0 => Some(self.stall_ns),
            _ => None,
        }
    }

    /// True when the plan injects nothing.
    pub fn is_disabled(&self) -> bool {
        self.error_rate == 0.0
            && self.spike_rate == 0.0
            && self.base_latency_ns == 0
            && self
                .worker_stall(self.stalled_worker.unwrap_or(0))
                .is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_the_seed() {
        let a = FaultPlan::chaos(42);
        let b = FaultPlan::chaos(42);
        for req in 0..200u64 {
            for attempt in 0..4u32 {
                assert_eq!(a.decide(req, attempt), b.decide(req, attempt));
            }
        }
        assert_eq!(a.stalled_worker, b.stalled_worker);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = FaultPlan::chaos(1);
        let b = FaultPlan::chaos(2);
        let diff = (0..400u64)
            .filter(|&r| a.decide(r, 0) != b.decide(r, 0))
            .count();
        assert!(diff > 0, "seeds must decorrelate the fault stream");
    }

    #[test]
    fn error_rate_is_roughly_respected() {
        let plan = FaultPlan {
            error_rate: 0.10,
            ..FaultPlan::chaos(7)
        };
        let errors = (0..10_000u64)
            .filter(|&r| plan.decide(r, 0).inject_error)
            .count();
        // 10% ± generous slack: this is a hash, not an RNG audit.
        assert!((700..=1300).contains(&errors), "errors = {errors}");
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let plan = FaultPlan::disabled();
        assert!(plan.is_disabled());
        for r in 0..100 {
            let d = plan.decide(r, 0);
            assert!(!d.inject_error);
            assert_eq!(d.latency_ns, 0);
        }
        assert_eq!(plan.worker_stall(0), None);
    }

    #[test]
    fn exactly_one_worker_stalls_under_chaos() {
        let plan = FaultPlan::chaos(3);
        let stalled: Vec<usize> = (0..8).filter(|&w| plan.worker_stall(w).is_some()).collect();
        assert_eq!(stalled.len(), 1);
        assert_eq!(plan.worker_stall(stalled[0]), Some(plan.stall_ns));
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"SELECT 1"), fnv1a(b"SELECT 2"));
    }
}
