//! Structured chaos-run event log with a canonical rendering.
//!
//! Workers append events concurrently, so the *insertion order* of the log
//! varies run to run even under an identical fault plan. What is
//! deterministic is the per-request event sequence: every event carries
//! `(request, seq)` where `seq` is the request's own step counter.
//! [`EventLog::render`] sorts by that key, producing a byte-for-byte
//! stable transcript for same-seed runs that the chaos suite (and the CI
//! `chaos` job) can diff directly.

use crate::error::ServedSource;
use std::fmt;
use std::sync::Mutex;

/// One step in a request's lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Admitted into the queue.
    Admitted,
    /// Rejected by admission control at the given queue depth.
    Rejected { depth: usize },
    /// Routed: does the planner consider the query answerable from the
    /// approximation set?
    Routed { answerable: bool },
    /// A full-DB attempt began, with the fault-plan latency it will pay.
    Attempt { attempt: u32, latency_ns: u64 },
    /// A full-DB attempt failed with an injected (or real) transient error.
    TransientError { attempt: u32 },
    /// Backoff scheduled before the next attempt.
    Backoff { attempt: u32, sleep_ns: u64 },
    /// The per-request deadline expired; the ladder degrades to subset.
    DeadlineExceeded,
    /// The retry budget ran out; the ladder degrades to subset.
    RetriesExhausted,
    /// The request resolved with an answer.
    Resolved { source: ServedSource, rows: usize },
    /// The request resolved with a fatal error.
    Failed,
    /// A streaming ingest batch was appended (`total` = table rows after).
    Appended { rows: usize, total: usize },
    /// A streaming batch of in-place row updates was applied.
    Updated { rows: usize },
    /// A data-drift observation ran; `refreshed` is whether the serving
    /// view was stale and got re-materialised.
    DataDrift { refreshed: bool },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Admitted => write!(f, "admitted"),
            EventKind::Rejected { depth } => write!(f, "rejected depth={depth}"),
            EventKind::Routed { answerable } => write!(f, "routed answerable={answerable}"),
            EventKind::Attempt {
                attempt,
                latency_ns,
            } => {
                write!(f, "attempt n={attempt} latency_ns={latency_ns}")
            }
            EventKind::TransientError { attempt } => write!(f, "transient_error n={attempt}"),
            EventKind::Backoff { attempt, sleep_ns } => {
                write!(f, "backoff n={attempt} sleep_ns={sleep_ns}")
            }
            EventKind::DeadlineExceeded => write!(f, "deadline_exceeded"),
            EventKind::RetriesExhausted => write!(f, "retries_exhausted"),
            EventKind::Resolved { source, rows } => {
                write!(f, "resolved source={source} rows={rows}")
            }
            EventKind::Failed => write!(f, "failed"),
            EventKind::Appended { rows, total } => write!(f, "appended rows={rows} total={total}"),
            EventKind::Updated { rows } => write!(f, "updated rows={rows}"),
            EventKind::DataDrift { refreshed } => write!(f, "data_drift refreshed={refreshed}"),
        }
    }
}

/// One logged event: `(request, seq)` is the canonical sort key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub request: u64,
    /// Per-request step counter (0, 1, 2, … within one request).
    pub seq: u32,
    pub kind: EventKind,
}

/// Append-only, thread-safe event log.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Poison-recovering lock: the log is a plain `Vec` push target, valid
    /// after any interrupted append, and a panicked worker must not make
    /// later diagnostics (which read this log) unavailable.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn push(&self, request: u64, seq: u32, kind: EventKind) {
        self.lock().push(Event { request, seq, kind });
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events in canonical `(request, seq)` order.
    pub fn canonical(&self) -> Vec<Event> {
        let mut evs = self.lock().clone();
        evs.sort_by_key(|e| (e.request, e.seq));
        evs
    }

    /// Canonical text transcript: one `req=<id> seq=<n> <kind>` line per
    /// event, sorted by `(request, seq)`. Byte-for-byte comparable across
    /// runs of the same deterministic schedule.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.canonical() {
            out.push_str(&format!("req={} seq={} {}\n", e.request, e.seq, e.kind));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_insertion_order_independent() {
        let a = EventLog::new();
        a.push(1, 0, EventKind::Admitted);
        a.push(1, 1, EventKind::Routed { answerable: true });
        a.push(2, 0, EventKind::Admitted);

        let b = EventLog::new();
        b.push(2, 0, EventKind::Admitted);
        b.push(1, 1, EventKind::Routed { answerable: true });
        b.push(1, 0, EventKind::Admitted);

        assert_eq!(a.render(), b.render());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn render_format_is_stable() {
        let log = EventLog::new();
        log.push(
            7,
            0,
            EventKind::Attempt {
                attempt: 0,
                latency_ns: 20,
            },
        );
        log.push(
            7,
            1,
            EventKind::Resolved {
                source: ServedSource::DegradedSubset,
                rows: 4,
            },
        );
        assert_eq!(
            log.render(),
            "req=7 seq=0 attempt n=0 latency_ns=20\nreq=7 seq=1 resolved source=degraded rows=4\n"
        );
    }
}
