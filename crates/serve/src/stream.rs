//! Living-data streaming scenario: serving while the database grows.
//!
//! The chaos simulator ([`run_sim`](crate::run_sim)) proves the serving
//! ladder on a *frozen* database. This module closes the remaining gap
//! to the paper's exploration story: the full database keeps receiving
//! rows while analysts query it, and the approximation-set view must
//! follow the data without ever serving from a torn or silently stale
//! state.
//!
//! Two pieces:
//!
//! * [`LiveBackend`] — a [`SessionBackend`] over a **mutable** full
//!   database plus an immutable serving *view* (the approximation-set
//!   stand-in: a deterministic row sample, like the `MirrorBackend` is a
//!   model-free stand-in for a trained session). Ingest goes through
//!   [`LiveBackend::append`] / [`LiveBackend::update`]; queries read a
//!   point-in-time `Arc` snapshot of the view, so a refresh never tears
//!   an in-flight answer. Staleness is a *version* property:
//!   [`LiveBackend::observe_data`] compares the live
//!   [`data_fingerprint`](asqp_db::Database::data_fingerprint) with the
//!   view's inherited one (subsets snapshot their parent's data
//!   versions) and re-materialises only on drift — the serving-tier
//!   mirror of `asqp_core::Session::observe_data`.
//! * [`run_stream`] — a deterministic interleaving of ingest batches,
//!   in-place updates, fault-injected queries, and periodic drift
//!   observations, driven entirely by splitmix64 hashes of
//!   `(seed, op)`. Same seed ⇒ byte-identical [`StreamReport::render`]
//!   transcript (including every real row count the live database
//!   returned), plus a write ledger whose `lost_writes=0` footer line is
//!   what the CI `streaming` job greps for.

use crate::backend::{MirrorBackend, RouteDecision, SessionBackend};
use crate::backoff::RetryPolicy;
use crate::error::ServedSource;
use crate::event::{EventKind, EventLog};
use crate::fault::{splitmix64, FaultPlan};
use asqp_db::{sql, Database, DbResult, Query, ResultSet, Row, Schema, Value, ValueType};
use asqp_telemetry as telemetry;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard};

/// A serving backend over a live, growing database.
///
/// Writers mutate the full database under an exclusive lock; readers
/// answer subset-routed queries from an `Arc` snapshot of the last
/// materialised view and full-routed queries from the live database
/// under a shared lock. The view deliberately lags ingest until a drift
/// observation refreshes it — exactly the approximation-set lifecycle,
/// with the fingerprint check standing in for the session's.
pub struct LiveBackend {
    live: RwLock<Database>,
    view: RwLock<Arc<Database>>,
    /// Percentage (0–100) of queries hash-routed to the view.
    subset_pct: u8,
    /// View sampling stride: every `stride`-th row per table.
    stride: usize,
}

impl LiveBackend {
    pub fn new(db: Database, subset_pct: u8, stride: usize) -> DbResult<LiveBackend> {
        let stride = stride.max(1);
        let view = Arc::new(materialize_view(&db, stride)?);
        Ok(LiveBackend {
            live: RwLock::new(db),
            view: RwLock::new(view),
            subset_pct: subset_pct.min(100),
            stride,
        })
    }

    fn read_live(&self) -> RwLockReadGuard<'_, Database> {
        self.live.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Append `rows` to `table` in the live database. Returns the number
    /// of rows acknowledged — the caller's write ledger counts these.
    pub fn append(&self, table: &str, rows: &[Row]) -> DbResult<usize> {
        let n = self
            .live
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .append_rows(table, rows)?;
        telemetry::counter("serve.stream.appended_rows", n as u64);
        Ok(n)
    }

    /// Overwrite rows of `table` in place.
    pub fn update(&self, table: &str, updates: &[(usize, Row)]) -> DbResult<usize> {
        let n = self
            .live
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .update_rows(table, updates)?;
        telemetry::counter("serve.stream.updated_rows", n as u64);
        Ok(n)
    }

    /// Current row count of `table` in the live database (0 if absent).
    pub fn row_count(&self, table: &str) -> usize {
        self.read_live()
            .table(table)
            .map(|t| t.row_count())
            .unwrap_or(0)
    }

    /// Data fingerprint of the live database.
    pub fn data_fingerprint(&self) -> u64 {
        self.read_live().data_fingerprint()
    }

    /// Point-in-time snapshot of the serving view.
    pub fn view(&self) -> Arc<Database> {
        Arc::clone(&self.view.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Data fingerprint the current view was materialised at (subsets
    /// inherit their parent tables' data versions).
    pub fn view_fingerprint(&self) -> u64 {
        self.view().data_fingerprint()
    }

    /// Observe the live database for data drift and re-materialise the
    /// serving view if it is stale. Returns `true` when a refresh ran.
    /// In-flight queries keep their old `Arc` snapshot — the swap can
    /// never tear an answer.
    pub fn observe_data(&self) -> DbResult<bool> {
        let fresh = {
            let live = self.read_live();
            if live.data_fingerprint() == self.view_fingerprint() {
                return Ok(false);
            }
            telemetry::counter("serve.stream.data_drift", 1);
            // Materialised under the same read guard that saw the drift,
            // so the new view is a consistent snapshot of one version.
            materialize_view(&live, self.stride)?
        };
        *self.view.write().unwrap_or_else(|p| p.into_inner()) = Arc::new(fresh);
        telemetry::counter("serve.stream.refresh", 1);
        Ok(true)
    }
}

impl SessionBackend for LiveBackend {
    fn plan(&self, q: &Query) -> RouteDecision {
        RouteDecision::bare(MirrorBackend::routes_to_subset(
            &q.to_sql(),
            self.subset_pct,
        ))
    }

    fn answer_subset(&self, q: &Query) -> DbResult<ResultSet> {
        self.view().execute(q)
    }

    fn answer_full(&self, q: &Query) -> DbResult<ResultSet> {
        self.read_live().execute(q)
    }
}

/// Deterministic row sample: every `stride`-th row of every table.
fn materialize_view(db: &Database, stride: usize) -> DbResult<Database> {
    let mut sel: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for t in db.tables() {
        sel.insert(
            t.name().to_string(),
            (0..t.row_count()).step_by(stride.max(1)).collect(),
        );
    }
    db.subset(&sel)
}

/// Configuration of one streaming chaos run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Total interleaved operations (ingest batches, updates, queries).
    pub ops: u64,
    /// Fault plan for full-DB query attempts; its seed also drives the
    /// operation mix, batch contents, and query generation.
    pub faults: FaultPlan,
    pub retry: RetryPolicy,
    /// Percentage (0–100) of operations that are ingest batches.
    pub append_pct: u8,
    /// Percentage (0–100) of operations that are in-place update batches.
    pub update_pct: u8,
    /// Maximum ingest batch size.
    pub batch_max: usize,
    /// Maximum rows per update batch.
    pub update_max: usize,
    /// Run a data-drift observation after every N operations (0 = only
    /// the final reconciliation observes).
    pub observe_every: u64,
    /// Percentage (0–100) of queries hash-routed to the view.
    pub subset_pct: u8,
    /// View sampling stride.
    pub stride: usize,
    /// Rows in the seed fixture before streaming starts.
    pub seed_rows: usize,
}

impl StreamConfig {
    /// The reference streaming scenario: 96 operations (≈ a third of
    /// them writes) against a 256-row fixture under [`FaultPlan::chaos`],
    /// observing for drift every 8 operations.
    pub fn chaos(seed: u64) -> StreamConfig {
        StreamConfig {
            ops: 96,
            faults: FaultPlan::chaos(seed),
            retry: RetryPolicy {
                max_retries: 3,
                base_ns: 50_000,
                cap_ns: 400_000,
            },
            append_pct: 25,
            update_pct: 15,
            batch_max: 24,
            update_max: 6,
            observe_every: 8,
            subset_pct: 50,
            stride: 4,
            seed_rows: 256,
        }
    }
}

/// Counters of one streaming run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    pub ops: u64,
    pub appends: u64,
    pub appended_rows: u64,
    pub updates: u64,
    pub updated_rows: u64,
    pub queries: u64,
    pub resolved_subset: u64,
    pub resolved_full: u64,
    pub degraded: u64,
    pub retries: u64,
    /// Drift observations that found the view stale and refreshed it.
    pub refreshes: u64,
    /// Ledger mismatch: |rows acknowledged − rows present| at the end.
    /// Anything but 0 means ingest lost (or invented) writes.
    pub lost_writes: u64,
}

/// Outcome of a streaming run.
#[derive(Debug)]
pub struct StreamReport {
    pub stats: StreamStats,
    pub log: EventLog,
    /// Data fingerprint of the live database after the run.
    pub final_fingerprint: u64,
}

impl StreamReport {
    /// Canonical transcript plus a summary footer. The last line is
    /// always `lost_writes=<n>` — the CI `streaming` job double-runs,
    /// byte-compares two renders, and greps for `^lost_writes=0$`.
    pub fn render(&self) -> String {
        let s = &self.stats;
        format!(
            "{}summary ops={} appends={} appended_rows={} updates={} updated_rows={} \
             queries={} subset={} full={} degraded={} retries={} refreshes={} \
             fingerprint={:#018x}\nlost_writes={}\n",
            self.log.render(),
            s.ops,
            s.appends,
            s.appended_rows,
            s.updates,
            s.updated_rows,
            s.queries,
            s.resolved_subset,
            s.resolved_full,
            s.degraded,
            s.retries,
            s.refreshes,
            self.final_fingerprint,
            s.lost_writes
        )
    }
}

/// Seeded streaming fixture: one `events(id, bucket, score)` table.
pub fn stream_fixture(seed: u64, rows: usize) -> DbResult<Database> {
    let mut db = Database::new();
    let t = db.create_table(
        "events",
        Schema::build(&[
            ("id", ValueType::Int),
            ("bucket", ValueType::Int),
            ("score", ValueType::Float),
        ]),
    )?;
    for i in 0..rows {
        t.push_row(&gen_event_row(seed, i as u64))?;
    }
    Ok(db)
}

/// One deterministic event row.
fn gen_event_row(seed: u64, n: u64) -> Row {
    let h = splitmix64(seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    vec![
        Value::Int(n as i64),
        Value::Int((h % 16) as i64),
        Value::Float(((h >> 16) % 1000) as f64 / 10.0),
    ]
}

/// One deterministic query over the events table; `id_bound` keeps range
/// predicates inside (or just past) the ingested id space.
fn gen_stream_query(h: u64, id_bound: u64) -> DbResult<Query> {
    let text = match h % 3 {
        0 => format!(
            "SELECT e.id FROM events e WHERE e.bucket = {}",
            splitmix64(h ^ 0xB0) % 16
        ),
        1 => {
            let a = splitmix64(h ^ 0xA1) % id_bound.max(1);
            let k = 1 + splitmix64(h ^ 0xA2) % 64;
            format!(
                "SELECT e.id FROM events e WHERE e.id >= {a} AND e.id < {}",
                a + k
            )
        }
        _ => format!(
            "SELECT COUNT(*) FROM events e WHERE e.bucket < {}",
            1 + splitmix64(h ^ 0xC0) % 15
        ),
    };
    sql::parse(&text)
}

/// Run one streaming chaos scenario: a pure function of the config. The
/// transcript records every real row count the live data produced, so a
/// byte-identical double run certifies the whole ingest + maintenance +
/// serving pipeline, not just the scheduler.
pub fn run_stream(cfg: &StreamConfig) -> DbResult<StreamReport> {
    let seed = cfg.faults.seed;
    let backend = LiveBackend::new(
        stream_fixture(seed, cfg.seed_rows)?,
        cfg.subset_pct,
        cfg.stride,
    )?;
    let log = EventLog::new();
    let mut stats = StreamStats::default();
    // The no-lost-writes ledger: every acknowledged append adds here, and
    // the final row count must match exactly.
    let mut ledger_rows = cfg.seed_rows as u64;
    let mut next_id = cfg.seed_rows as u64;

    for op in 0..cfg.ops {
        let h = splitmix64(seed ^ op.wrapping_mul(0xA076_1D64_78BD_642F));
        let roll = (h % 100) as u8;
        if roll < cfg.append_pct {
            let batch_len = 1 + (splitmix64(h ^ 0xB10C) % cfg.batch_max.max(1) as u64) as usize;
            let rows: Vec<Row> = (0..batch_len)
                .map(|i| gen_event_row(seed ^ 0xFEED, next_id + i as u64))
                .collect();
            let n = backend.append("events", &rows)?;
            next_id += n as u64;
            ledger_rows += n as u64;
            stats.appends += 1;
            stats.appended_rows += n as u64;
            log.push(
                op,
                0,
                EventKind::Appended {
                    rows: n,
                    total: backend.row_count("events"),
                },
            );
        } else if roll < cfg.append_pct.saturating_add(cfg.update_pct) {
            let live_rows = backend.row_count("events") as u64;
            let k = 1 + (splitmix64(h ^ 0x0DD5) % cfg.update_max.max(1) as u64) as usize;
            let updates: Vec<(usize, Row)> = (0..k)
                .map(|i| {
                    let rid = (splitmix64(h ^ ((i as u64) << 8)) % live_rows.max(1)) as usize;
                    let mut row = gen_event_row(seed ^ 0xD00D, splitmix64(h) ^ i as u64);
                    if let Some(cell) = row.get_mut(0) {
                        *cell = Value::Int(rid as i64);
                    }
                    (rid, row)
                })
                .collect();
            let n = backend.update("events", &updates)?;
            stats.updates += 1;
            stats.updated_rows += n as u64;
            log.push(op, 0, EventKind::Updated { rows: n });
        } else {
            let q = gen_stream_query(h, next_id)?;
            serve_stream_query(cfg, &backend, &log, &mut stats, op, &q)?;
            stats.queries += 1;
        }
        if cfg.observe_every > 0 && (op + 1) % cfg.observe_every == 0 {
            let refreshed = backend.observe_data()?;
            if refreshed {
                stats.refreshes += 1;
            }
            // seq 16 sorts after any query ladder of the same op.
            log.push(op, 16, EventKind::DataDrift { refreshed });
        }
    }

    // Final reconciliation: one last observation, then settle the ledger.
    if backend.observe_data()? {
        stats.refreshes += 1;
    }
    let actual = backend.row_count("events") as u64;
    stats.lost_writes = ledger_rows.abs_diff(actual);
    stats.ops = cfg.ops;
    Ok(StreamReport {
        final_fingerprint: backend.data_fingerprint(),
        stats,
        log,
    })
}

/// Walk one query through the retry/degrade ladder against the live
/// backend (real executions; injected faults gate the full route only).
fn serve_stream_query(
    cfg: &StreamConfig,
    backend: &LiveBackend,
    log: &EventLog,
    stats: &mut StreamStats,
    op: u64,
    q: &Query,
) -> DbResult<()> {
    let mut seq = 0u32;
    let push = |seq: &mut u32, kind: EventKind| {
        log.push(op, *seq, kind);
        *seq += 1;
    };
    let decision = backend.plan(q);
    push(
        &mut seq,
        EventKind::Routed {
            answerable: decision.answerable,
        },
    );

    if decision.answerable {
        let rs = backend.answer_subset(q)?;
        push(
            &mut seq,
            EventKind::Resolved {
                source: ServedSource::Subset,
                rows: rs.rows.len(),
            },
        );
        stats.resolved_subset += 1;
        return Ok(());
    }

    let mut attempt = 0u32;
    while attempt < cfg.retry.max_attempts() {
        let fault = cfg.faults.decide(op, attempt);
        push(
            &mut seq,
            EventKind::Attempt {
                attempt,
                latency_ns: fault.latency_ns,
            },
        );
        if fault.inject_error {
            push(&mut seq, EventKind::TransientError { attempt });
            stats.retries += 1;
            attempt += 1;
            continue;
        }
        let rs = backend.answer_full(q)?;
        push(
            &mut seq,
            EventKind::Resolved {
                source: ServedSource::Full,
                rows: rs.rows.len(),
            },
        );
        stats.resolved_full += 1;
        return Ok(());
    }

    push(&mut seq, EventKind::RetriesExhausted);
    let rs = backend.answer_subset(q)?;
    push(
        &mut seq,
        EventKind::Resolved {
            source: ServedSource::DegradedSubset,
            rows: rs.rows.len(),
        },
    );
    stats.degraded += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_renders_identically() {
        let cfg = StreamConfig::chaos(0xFEED);
        let a = run_stream(&cfg).unwrap();
        let b = run_stream(&cfg).unwrap();
        assert_eq!(a.render(), b.render());
        assert!(!a.log.is_empty());
        assert_eq!(a.stats.lost_writes, 0);
    }

    #[test]
    fn different_seeds_render_differently() {
        let a = run_stream(&StreamConfig::chaos(1)).unwrap();
        let b = run_stream(&StreamConfig::chaos(2)).unwrap();
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn view_lags_then_catches_up() {
        let backend = LiveBackend::new(stream_fixture(7, 64).unwrap(), 50, 4).unwrap();
        let fp0 = backend.view_fingerprint();
        assert_eq!(fp0, backend.data_fingerprint(), "fresh view matches");
        assert!(!backend.observe_data().unwrap());

        let rows: Vec<Row> = (0..10).map(|i| gen_event_row(7, 64 + i)).collect();
        backend.append("events", &rows).unwrap();
        assert_ne!(backend.view_fingerprint(), backend.data_fingerprint());
        assert!(backend.observe_data().unwrap());
        assert_eq!(backend.view_fingerprint(), backend.data_fingerprint());
        assert!(!backend.observe_data().unwrap(), "refresh is idempotent");
    }

    #[test]
    fn view_snapshot_survives_refresh() {
        let backend = LiveBackend::new(stream_fixture(3, 32).unwrap(), 50, 2).unwrap();
        let pinned = backend.view();
        let before = pinned.table("events").unwrap().row_count();
        let rows: Vec<Row> = (0..40).map(|i| gen_event_row(3, 32 + i)).collect();
        backend.append("events", &rows).unwrap();
        backend.observe_data().unwrap();
        assert_eq!(
            pinned.table("events").unwrap().row_count(),
            before,
            "an in-flight snapshot must not observe the refresh"
        );
        assert!(backend.view().table("events").unwrap().row_count() > before);
    }
}
