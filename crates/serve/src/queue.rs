//! Bounded admission-control queue with backpressure and drain semantics.
//!
//! `try_push` never blocks: past the configured depth it fails immediately
//! with [`ServeError::Overloaded`], which `Server::submit` surfaces
//! synchronously to the caller — load-shedding at the front door rather
//! than letting latency collect in an unbounded buffer. `pop` blocks
//! workers until a job or shutdown arrives; after `close`, remaining jobs
//! are still drained (graceful shutdown finishes admitted work) and `pop`
//! returns `None` only once the queue is empty.

use crate::error::ServeError;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`, nothing fancier.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    depth: usize,
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

impl<T> AdmissionQueue<T> {
    pub fn new(depth: usize) -> AdmissionQueue<T> {
        assert!(depth > 0, "admission queue depth must be positive");
        AdmissionQueue {
            depth,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Configured admission depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Poison-recovering lock: a worker that panicked while holding the
    /// mutex must not take the whole admission path down with it — the
    /// queue state (a `VecDeque` plus a flag) is valid after any
    /// interrupted operation.
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: `Overloaded` at depth, `ShuttingDown` after
    /// close.
    pub fn try_push(&self, item: T) -> Result<(), ServeError> {
        let mut st = self.lock();
        if st.closed {
            return Err(ServeError::ShuttingDown);
        }
        if st.items.len() >= self.depth {
            return Err(ServeError::Overloaded { depth: self.depth });
        }
        st.items.push_back(item);
        drop(st);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking worker-side pop. Returns `None` only when the queue is
    /// closed *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking pop (used by the discrete-event simulator).
    pub fn try_pop(&self) -> Option<T> {
        self.lock().items.pop_front()
    }

    /// Stop admitting; wake all blocked workers so they can drain and exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_past_depth() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(ServeError::Overloaded { depth: 2 }));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_remaining_then_none() {
        let q = AdmissionQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(ServeError::ShuttingDown));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q = Arc::new(AdmissionQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give workers a moment to block, then close with nothing queued.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(AdmissionQueue::<u64>::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        while q.try_push(p * 1000 + i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 400);
        all.dedup();
        assert_eq!(all.len(), 400, "no duplicates, no losses");
    }
}
