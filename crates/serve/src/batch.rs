//! Single-flight batching of similar in-flight subset queries.
//!
//! Two tenants whose workloads cluster together read the *same* shared
//! approximation set (see `asqp_core::cow`), so identical subset queries
//! arriving close together would run the identical scan twice.
//! [`ScanBatcher`] coalesces them: concurrent executions are keyed by
//! [`ScanKey`] — the tenant's COW group, its share epoch, and the
//! query's **exact** canonical SQL — and only the first arrival (the
//! *leader*) runs the scan; followers block on the leader's flight and
//! clone its result.
//!
//! Safety argument: a key only matches between tenants of the same group
//! with the same share epoch, for the *same query*. Epoch `0` means
//! "still on the shared base set", where subset answers are
//! definitionally identical; a forked tenant carries a process-unique
//! non-zero epoch, so its scans never coalesce with anyone (including
//! other forks of the same group). The query component is the full
//! `Query::to_sql` rendering, literals and LIMIT intact — the plan
//! cache's normalized *shape* key is deliberately NOT used here: a plan
//! transfers between literal instantiations of one template, but rows do
//! not, and coalescing `x = 1` with `x = 2` (or `LIMIT 5` with
//! `LIMIT 90`) would hand a follower another query's result.

use asqp_db::{DbError, Query, ResultSet};
use asqp_telemetry as telemetry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Identity of a coalescable subset scan.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ScanKey {
    /// COW cluster the tenant belongs to.
    pub group: u64,
    /// `CowSession::share_epoch()`: 0 = shared base, unique when forked.
    pub epoch: u64,
    /// Exact canonical SQL (`Query::to_sql`), literals and LIMIT intact —
    /// full query identity, never a normalized shape.
    pub sql: String,
}

impl ScanKey {
    /// Key for `query` issued by a tenant of `group` at `epoch`.
    pub fn for_query(group: u64, epoch: u64, query: &Query) -> ScanKey {
        ScanKey {
            group,
            epoch,
            sql: query.to_sql(),
        }
    }
}

type ScanResult = Result<ResultSet, DbError>;

/// One in-flight scan: the leader publishes into `slot`, followers wait
/// on `cv`.
struct Flight {
    slot: Mutex<Option<ScanResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, result: ScanResult) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> ScanResult {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.cv.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// How a [`ScanBatcher::execute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanRole {
    /// This call ran the scan.
    Leader,
    /// This call rode a concurrent leader's scan (a shared-scan hit).
    Follower,
}

/// Single-flight coalescer for subset scans across tenants.
pub struct ScanBatcher {
    flights: Mutex<BTreeMap<ScanKey, Arc<Flight>>>,
    leads: AtomicU64,
    hits: AtomicU64,
}

impl Default for ScanBatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanBatcher {
    pub fn new() -> ScanBatcher {
        ScanBatcher {
            flights: Mutex::new(BTreeMap::new()),
            leads: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    fn flights(&self) -> std::sync::MutexGuard<'_, BTreeMap<ScanKey, Arc<Flight>>> {
        self.flights.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Execute `run` under single-flight semantics for `key`: if an
    /// identical scan is already in flight, wait for it and clone its
    /// result instead of executing.
    pub fn execute(
        &self,
        key: ScanKey,
        run: impl FnOnce() -> ScanResult,
    ) -> (ScanResult, ScanRole) {
        let (flight, role) = {
            let mut flights = self.flights();
            match flights.get(&key) {
                Some(existing) => (Arc::clone(existing), ScanRole::Follower),
                None => {
                    let flight = Arc::new(Flight::new());
                    flights.insert(key.clone(), Arc::clone(&flight));
                    (flight, ScanRole::Leader)
                }
            }
        };
        match role {
            ScanRole::Leader => {
                let result = run();
                flight.publish(result.clone());
                // Deregister *after* publishing: followers holding the
                // Arc still see the result; later arrivals lead afresh.
                self.flights().remove(&key);
                self.leads.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.mt.scan.lead", 1);
                (result, ScanRole::Leader)
            }
            ScanRole::Follower => {
                let result = flight.wait();
                self.hits.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.mt.scan.shared", 1);
                (result, ScanRole::Follower)
            }
        }
    }

    /// Scans actually executed.
    pub fn leads(&self) -> u64 {
        self.leads.load(Ordering::Relaxed)
    }

    /// Executions saved by riding a concurrent identical scan.
    pub fn shared_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_db::ResultSet;
    use std::sync::atomic::AtomicUsize;

    fn empty_rs() -> ResultSet {
        ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    fn key(group: u64, epoch: u64, sql: &str) -> ScanKey {
        ScanKey {
            group,
            epoch,
            sql: sql.to_string(),
        }
    }

    /// Regression (REVIEW: high): same template, different literals or
    /// LIMITs must NOT share a key — a follower would be handed rows for
    /// another query. The normalized plan-shape key would collapse all
    /// four of these.
    #[test]
    fn keys_distinguish_literals_and_limits() {
        let parse = |s: &str| asqp_db::sql::parse(s).expect("valid test SQL");
        let a = parse("SELECT t.name FROM title AS t WHERE t.year > 1990 LIMIT 5");
        let b = parse("SELECT t.name FROM title AS t WHERE t.year > 2005 LIMIT 5");
        let c = parse("SELECT t.name FROM title AS t WHERE t.year > 1990 LIMIT 90");
        let d = parse("SELECT t.name FROM title AS t WHERE t.year > 1990");
        let k = |q: &asqp_db::Query| ScanKey::for_query(1, 0, q);
        assert_ne!(k(&a), k(&b), "different literals must not coalesce");
        assert_ne!(k(&a), k(&c), "different LIMITs must not coalesce");
        assert_ne!(k(&a), k(&d), "absent LIMIT must not coalesce");
        assert_eq!(k(&a), ScanKey::for_query(1, 0, &a), "identity is stable");
    }

    #[test]
    fn sequential_executions_each_lead() {
        let b = ScanBatcher::new();
        let (_, r1) = b.execute(key(1, 0, "s"), || Ok(empty_rs()));
        let (_, r2) = b.execute(key(1, 0, "s"), || Ok(empty_rs()));
        assert_eq!(r1, ScanRole::Leader);
        assert_eq!(r2, ScanRole::Leader);
        assert_eq!(b.leads(), 2);
        assert_eq!(b.shared_hits(), 0);
    }

    #[test]
    fn concurrent_identical_scans_coalesce() {
        let b = Arc::new(ScanBatcher::new());
        let executions = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let b = Arc::clone(&b);
                let executions = Arc::clone(&executions);
                std::thread::spawn(move || {
                    let (result, _) = b.execute(key(3, 0, "shape"), || {
                        executions.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open so other threads pile in.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok(empty_rs())
                    });
                    assert!(result.is_ok());
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        assert_eq!(b.leads() + b.shared_hits(), threads as u64);
        assert_eq!(b.leads(), executions.load(Ordering::SeqCst) as u64);
        assert!(
            b.shared_hits() > 0,
            "50ms window must coalesce at least one of {threads} concurrent scans"
        );
    }

    #[test]
    fn different_epochs_never_coalesce() {
        let b = Arc::new(ScanBatcher::new());
        let handles: Vec<_> = (0..4u64)
            .map(|epoch| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    // Same group + shape, distinct epochs (forked tenants).
                    let (_, role) = b.execute(key(9, epoch + 1, "shape"), || {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(empty_rs())
                    });
                    role
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().ok(), Some(ScanRole::Leader));
        }
        assert_eq!(b.shared_hits(), 0);
    }
}
