//! Retry policy with deterministic, jittered exponential backoff.
//!
//! The jitter is the "full jitter" scheme (sleep a uniform draw from
//! `[0, min(cap, base · 2^attempt)]`) that AWS popularised for thundering
//! -herd avoidance — but the draw is a pure hash of
//! `(seed, request, attempt)`, so chaos runs replay the exact same sleep
//! schedule for the same seed.

use crate::fault::splitmix64;
use serde::{Deserialize, Serialize};

/// How transient full-DB failures are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts).
    pub max_retries: u32,
    /// Backoff scale for attempt 0.
    pub base_ns: u64,
    /// Upper bound on any single backoff sleep.
    pub cap_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_ns: 100_000,  // 100µs
            cap_ns: 2_000_000, // 2ms
        }
    }
}

impl RetryPolicy {
    /// Deterministic full-jitter backoff before retry number
    /// `attempt + 1`: uniform in `[0, min(cap, base · 2^attempt)]`,
    /// drawn by hashing `(seed, request, attempt)`.
    pub fn backoff_ns(&self, seed: u64, request: u64, attempt: u32) -> u64 {
        let ceiling = self
            .base_ns
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ns);
        if ceiling == 0 {
            return 0;
        }
        let h = splitmix64(seed ^ splitmix64(request ^ 0xB0FF) ^ ((attempt as u64) << 40));
        h % (ceiling + 1)
    }

    /// Total attempts this policy allows.
    pub fn max_attempts(&self) -> u32 {
        self.max_retries + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for req in 0..100u64 {
            for attempt in 0..4u32 {
                let a = p.backoff_ns(9, req, attempt);
                let b = p.backoff_ns(9, req, attempt);
                assert_eq!(a, b);
                let ceiling = (p.base_ns << attempt).min(p.cap_ns);
                assert!(a <= ceiling, "{a} beyond ceiling {ceiling}");
            }
        }
    }

    #[test]
    fn jitter_decorrelates_requests() {
        let p = RetryPolicy::default();
        let sleeps: std::collections::BTreeSet<u64> =
            (0..64u64).map(|r| p.backoff_ns(1, r, 0)).collect();
        assert!(sleeps.len() > 32, "jitter must spread sleeps out");
    }

    #[test]
    fn exponent_grows_the_ceiling_until_the_cap() {
        let p = RetryPolicy {
            max_retries: 10,
            base_ns: 1_000,
            cap_ns: 8_000,
        };
        // With many samples, the max observed sleep should approach the
        // ceiling for each attempt: 1k, 2k, 4k, then capped at 8k.
        for (attempt, ceiling) in [(0u32, 1_000u64), (1, 2_000), (2, 4_000), (5, 8_000)] {
            let max = (0..512u64)
                .map(|r| p.backoff_ns(3, r, attempt))
                .max()
                .unwrap();
            assert!(max <= ceiling);
            assert!(
                max > ceiling / 2,
                "attempt {attempt}: max {max} ceiling {ceiling}"
            );
        }
    }

    #[test]
    fn zero_base_means_no_sleep() {
        let p = RetryPolicy {
            max_retries: 2,
            base_ns: 0,
            cap_ns: 0,
        };
        assert_eq!(p.backoff_ns(1, 2, 0), 0);
        assert_eq!(p.max_attempts(), 3);
    }
}
