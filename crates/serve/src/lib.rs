//! `asqp-serve`: the concurrent session front-end for ASQP-RL.
//!
//! The paper's exploration session is single-user; this crate turns it
//! into a serving tier suitable for many concurrent analysts sharing one
//! approximation set:
//!
//! - [`Server`] — bounded worker pool over a shared
//!   [`SessionBackend`], with admission control
//!   ([`ServeError::Overloaded`] backpressure past a configurable queue
//!   depth), per-request deadlines, retry-with-jittered-backoff for
//!   transient full-DB errors, and timeout-then-degrade semantics: a
//!   request the full database cannot answer in time is answered from
//!   the approximation set and tagged [`ServedSource::DegradedSubset`].
//! - [`FaultPlan`] — seeded, hash-based fault injection (transient
//!   errors, latency spikes, a stalled worker) whose every decision is a
//!   pure function of `(seed, request, attempt)`.
//! - [`run_sim`] — a discrete-event simulator replaying the same
//!   serving semantics on a virtual clock, so chaos runs are
//!   byte-for-byte reproducible and diffable across runs and machines.
//!
//! Telemetry: the server emits `serve.*` counters (admitted, rejected,
//! degraded, retries, resolved.{subset,full}, fatal) and a
//! `serve.queue.depth` gauge through `asqp-telemetry`.

pub mod backend;
pub mod backoff;
pub mod error;
pub mod event;
pub mod fault;
pub mod queue;
pub mod server;
pub mod sim;

pub use backend::{MirrorBackend, RouteDecision, SessionBackend};
pub use backoff::RetryPolicy;
pub use error::{Answer, ServeError, ServeResult, ServedSource};
pub use event::{Event, EventKind, EventLog};
pub use fault::{FaultDecision, FaultPlan};
pub use queue::AdmissionQueue;
pub use server::{ServeConfig, Server, ServerStats, Ticket};
pub use sim::{run_sim, SimConfig, SimReport};
