//! `asqp-serve`: the concurrent session front-end for ASQP-RL.
//!
//! The paper's exploration session is single-user; this crate turns it
//! into a serving tier suitable for many concurrent analysts sharing one
//! approximation set:
//!
//! - [`Server`] — bounded worker pool over a shared
//!   [`SessionBackend`], with admission control
//!   ([`ServeError::Overloaded`] backpressure past a configurable queue
//!   depth), per-request deadlines, retry-with-jittered-backoff for
//!   transient full-DB errors, and timeout-then-degrade semantics: a
//!   request the full database cannot answer in time is answered from
//!   the approximation set and tagged [`ServedSource::DegradedSubset`].
//! - [`FaultPlan`] — seeded, hash-based fault injection (transient
//!   errors, latency spikes, a stalled worker) whose every decision is a
//!   pure function of `(seed, request, attempt)`.
//! - [`run_sim`] — a discrete-event simulator replaying the same
//!   serving semantics on a virtual clock, so chaos runs are
//!   byte-for-byte reproducible and diffable across runs and machines.
//! - [`MtServer`] — sharded multi-tenant serving: tenants striped across
//!   independent shard pools ([`TenantRegistry`]), copy-on-write
//!   approximation-set sharing per workload cluster
//!   (`asqp_core::CowSession`), single-flight shared-scan batching
//!   ([`ScanBatcher`]) keyed by the exact query text, and exact
//!   per-tenant accounting.
//! - [`run_mt_sim`] — the multi-tenant simulator replaying a generated
//!   trace of up to ~10⁶ tenants under the same seeded fault plan, with
//!   a digest-based transcript the CI `multitenant` job diffs.
//! - [`run_stream`] — the living-data scenario: a [`LiveBackend`] serves
//!   fault-injected queries while seeded ingest batches and in-place
//!   updates mutate the full database, with periodic data-drift
//!   observations re-materialising the serving view and a write ledger
//!   proving zero lost writes (the CI `streaming` job double-runs it and
//!   byte-compares the transcripts).
//!
//! Telemetry: the server emits `serve.*` counters (admitted, rejected,
//! degraded, retries, resolved.{subset,full}, fatal) and a
//! `serve.queue.depth` gauge through `asqp-telemetry`; the multi-tenant
//! layer adds `serve.mt.*` (per-outcome, shared scans, tenants) and
//! `serve.mtsim.*` aggregates.

pub mod backend;
pub mod backoff;
pub mod batch;
pub mod error;
pub mod event;
pub mod fault;
pub mod mt_sim;
pub mod multitenant;
pub mod queue;
pub mod server;
pub mod sim;
pub mod stream;
pub mod tenant;

pub use backend::{MirrorBackend, RouteDecision, SessionBackend};
pub use backoff::RetryPolicy;
pub use batch::{ScanBatcher, ScanKey, ScanRole};
pub use error::{Answer, ServeError, ServeResult, ServedSource};
pub use event::{Event, EventKind, EventLog};
pub use fault::{FaultDecision, FaultPlan};
pub use mt_sim::{run_mt_sim, MtSimConfig, MtSimReport};
pub use multitenant::{MtConfig, MtServer};
pub use queue::AdmissionQueue;
pub use server::{ServeConfig, Server, ServerStats, Ticket};
pub use sim::{run_sim, SimConfig, SimReport};
pub use stream::{
    run_stream, stream_fixture, LiveBackend, StreamConfig, StreamReport, StreamStats,
};
pub use tenant::{StripedAllocator, TenantCounters, TenantId, TenantRegistry, TenantStats};
