//! Multi-tenant bookkeeping: striped tenant→shard allocation and exact
//! per-tenant accounting.
//!
//! The allocation policy is *striped* in the rpsql `threadgroups` sense:
//! tenants are dealt across shards in registration order, each new tenant
//! landing on the least-loaded stripe (lowest index on ties). That gives
//! three properties the multi-tenant gate asserts:
//!
//! 1. **Deterministic** — the assignment is a pure function of the
//!    register/depart sequence; replaying a trace replays the placement.
//! 2. **Balanced within ±1** — under registrations alone, greedy
//!    least-loaded placement keeps `max(load) − min(load) ≤ 1`.
//! 3. **Stable under departures** — a departing tenant only decrements
//!    its stripe's load; no surviving tenant is ever reassigned (no
//!    consistent-hashing rehash storm), and later arrivals refill the
//!    emptied stripes first.
//!
//! [`TenantRegistry`] wraps the allocator with thread-safe per-tenant
//! counters. Rejections are attributed to the *rejecting tenant* — the
//! fix for the global `AdmissionQueue` rejection counter, which under
//! sharding could not say whose requests were shed — so per-tenant
//! `admitted + rejected` always equals that tenant's submissions and the
//! accounting stays exact no matter how tenants interleave.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tenant identity: opaque to the serving layer, dense ids in the
/// simulator.
pub type TenantId = u64;

/// Deterministic striped tenant→shard allocation.
#[derive(Debug, Clone)]
pub struct StripedAllocator {
    assignment: BTreeMap<TenantId, usize>,
    load: Vec<usize>,
}

impl StripedAllocator {
    /// An allocator over `shards` stripes (clamped to ≥ 1).
    pub fn new(shards: usize) -> StripedAllocator {
        StripedAllocator {
            assignment: BTreeMap::new(),
            load: vec![0; shards.max(1)],
        }
    }

    /// Number of stripes.
    pub fn shards(&self) -> usize {
        self.load.len()
    }

    /// Tenants currently registered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The shard `tenant` is assigned to, if registered.
    pub fn shard_of(&self, tenant: TenantId) -> Option<usize> {
        self.assignment.get(&tenant).copied()
    }

    /// Current per-stripe tenant counts.
    pub fn loads(&self) -> &[usize] {
        &self.load
    }

    /// Register `tenant`, returning its stripe. Idempotent: a registered
    /// tenant keeps its stripe. New tenants go to the least-loaded stripe,
    /// lowest index on ties — round-robin striping under sequential
    /// arrivals, gap-filling after departures.
    pub fn register(&mut self, tenant: TenantId) -> usize {
        if let Some(&shard) = self.assignment.get(&tenant) {
            return shard;
        }
        let mut best = 0usize;
        let mut best_load = usize::MAX;
        for (idx, &l) in self.load.iter().enumerate() {
            if l < best_load {
                best = idx;
                best_load = l;
            }
        }
        if let Some(l) = self.load.get_mut(best) {
            *l += 1;
        }
        self.assignment.insert(tenant, best);
        best
    }

    /// Remove `tenant`, returning the stripe it held. Every other
    /// tenant's assignment is untouched.
    pub fn depart(&mut self, tenant: TenantId) -> Option<usize> {
        let shard = self.assignment.remove(&tenant)?;
        if let Some(l) = self.load.get_mut(shard) {
            *l = l.saturating_sub(1);
        }
        Some(shard)
    }

    /// `max(load) − min(load)`: 0 or 1 under arrival-only sequences.
    pub fn imbalance(&self) -> usize {
        let max = self.load.iter().copied().max().unwrap_or(0);
        let min = self.load.iter().copied().min().unwrap_or(0);
        max - min
    }
}

/// Lock-free per-tenant counters (atomics so the threaded server's
/// workers can attribute outcomes without a registry-wide lock).
#[derive(Debug, Default)]
pub struct TenantCounters {
    pub admitted: AtomicU64,
    /// Admission rejections attributed to *this* tenant.
    pub rejected: AtomicU64,
    pub resolved_subset: AtomicU64,
    pub resolved_full: AtomicU64,
    pub degraded: AtomicU64,
    pub retries: AtomicU64,
    pub fatal: AtomicU64,
    /// Subset answers obtained by riding another tenant's shared scan.
    pub shared_scan_hits: AtomicU64,
    /// `1` once the tenant forked off its cluster's shared set.
    pub forked: AtomicU64,
}

/// Snapshot of one tenant's accounting (see [`TenantRegistry::snapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    pub shard: usize,
    pub group: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub resolved_subset: u64,
    pub resolved_full: u64,
    pub degraded: u64,
    pub retries: u64,
    pub fatal: u64,
    pub shared_scan_hits: u64,
    pub forked: bool,
}

impl TenantStats {
    /// Every admitted request must land in exactly one resolution bucket.
    pub fn resolved(&self) -> u64 {
        self.resolved_subset + self.resolved_full + self.degraded + self.fatal
    }

    /// Zero lost requests for this tenant.
    pub fn lossless(&self) -> bool {
        self.resolved() == self.admitted
    }

    /// Canonical one-line rendering, the unit of the multi-tenant
    /// transcript diff.
    pub fn render(&self, tenant: TenantId) -> String {
        format!(
            "tenant={} shard={} group={} forked={} admitted={} rejected={} subset={} full={} \
             degraded={} retries={} shared={}\n",
            tenant,
            self.shard,
            self.group,
            u8::from(self.forked),
            self.admitted,
            self.rejected,
            self.resolved_subset,
            self.resolved_full,
            self.degraded,
            self.retries,
            self.shared_scan_hits,
        )
    }
}

struct TenantEntry {
    shard: usize,
    group: u64,
    counters: Arc<TenantCounters>,
}

/// Thread-safe tenant directory: striped placement plus per-tenant
/// accounting, shared between the submit path (admission/rejection
/// attribution) and the shard workers (resolution attribution).
pub struct TenantRegistry {
    alloc: Mutex<StripedAllocator>,
    tenants: Mutex<BTreeMap<TenantId, TenantEntry>>,
}

impl TenantRegistry {
    pub fn new(shards: usize) -> TenantRegistry {
        TenantRegistry {
            alloc: Mutex::new(StripedAllocator::new(shards)),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    fn alloc(&self) -> std::sync::MutexGuard<'_, StripedAllocator> {
        // Poison recovery: the allocator is a map plus a counter vector,
        // valid after any interrupted operation.
        self.alloc.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn tenants(&self) -> std::sync::MutexGuard<'_, BTreeMap<TenantId, TenantEntry>> {
        self.tenants.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Register `tenant` under approximation-set cluster `group`; returns
    /// its shard and its counters (the registry's own `Arc`, so callers
    /// can attribute outcomes without a fallible second lookup).
    /// Idempotent for an active tenant; a tenant re-registering after a
    /// departure gets a freshly allocated stripe, and its retained entry
    /// is re-synced to the new shard and group — the counters survive the
    /// round trip, but snapshots always report the actual placement.
    pub fn register(&self, tenant: TenantId, group: u64) -> (usize, Arc<TenantCounters>) {
        let shard = self.alloc().register(tenant);
        let mut tenants = self.tenants();
        let entry = tenants.entry(tenant).or_insert_with(|| TenantEntry {
            shard,
            group,
            counters: Arc::new(TenantCounters::default()),
        });
        entry.shard = shard;
        entry.group = group;
        (shard, Arc::clone(&entry.counters))
    }

    /// Remove `tenant` from placement (its accounting survives so the
    /// final transcript still covers departed tenants).
    pub fn depart(&self, tenant: TenantId) -> Option<usize> {
        self.alloc().depart(tenant)
    }

    /// The shard a registered tenant is placed on.
    pub fn shard_of(&self, tenant: TenantId) -> Option<usize> {
        self.alloc().shard_of(tenant)
    }

    /// This tenant's counters plus its shard and group, if registered.
    pub fn lookup(&self, tenant: TenantId) -> Option<(usize, u64, Arc<TenantCounters>)> {
        self.tenants()
            .get(&tenant)
            .map(|e| (e.shard, e.group, Arc::clone(&e.counters)))
    }

    /// Number of registered (ever-seen) tenants.
    pub fn len(&self) -> usize {
        self.tenants().len()
    }

    pub fn is_empty(&self) -> bool {
        self.tenants().is_empty()
    }

    /// Deterministic accounting snapshot, keyed by tenant id.
    pub fn snapshot(&self) -> BTreeMap<TenantId, TenantStats> {
        self.tenants()
            .iter()
            .map(|(&t, e)| {
                let c = &e.counters;
                (
                    t,
                    TenantStats {
                        shard: e.shard,
                        group: e.group,
                        admitted: c.admitted.load(Ordering::Relaxed),
                        rejected: c.rejected.load(Ordering::Relaxed),
                        resolved_subset: c.resolved_subset.load(Ordering::Relaxed),
                        resolved_full: c.resolved_full.load(Ordering::Relaxed),
                        degraded: c.degraded.load(Ordering::Relaxed),
                        retries: c.retries.load(Ordering::Relaxed),
                        fatal: c.fatal.load(Ordering::Relaxed),
                        shared_scan_hits: c.shared_scan_hits.load(Ordering::Relaxed),
                        forked: c.forked.load(Ordering::Relaxed) != 0,
                    },
                )
            })
            .collect()
    }

    /// Canonical per-tenant accounting transcript (one line per tenant in
    /// tenant-id order).
    pub fn render_accounting(&self) -> String {
        let mut out = String::new();
        for (tenant, stats) in self.snapshot() {
            out.push_str(&stats.render(tenant));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_registrations_round_robin() {
        let mut a = StripedAllocator::new(4);
        let shards: Vec<usize> = (0..8).map(|t| a.register(t)).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(a.imbalance(), 0);
    }

    #[test]
    fn register_is_idempotent() {
        let mut a = StripedAllocator::new(3);
        let s = a.register(42);
        assert_eq!(a.register(42), s);
        assert_eq!(a.len(), 1);
        assert_eq!(a.loads().iter().sum::<usize>(), 1);
    }

    #[test]
    fn departures_leave_survivors_alone_and_arrivals_fill_gaps() {
        let mut a = StripedAllocator::new(3);
        for t in 0..6 {
            a.register(t);
        }
        let before: Vec<Option<usize>> = (0..6).map(|t| a.shard_of(t)).collect();
        let freed = a.depart(1).expect("tenant 1 was registered");
        for t in [0u64, 2, 3, 4, 5] {
            assert_eq!(a.shard_of(t), before.get(t as usize).copied().flatten());
        }
        // The next arrival fills the stripe the departure emptied.
        assert_eq!(a.register(100), freed);
        assert_eq!(a.imbalance(), 0);
    }

    /// Regression (REVIEW): after depart + re-register, the retained
    /// entry must report the freshly allocated stripe and group, not the
    /// stale ones — while the counters carry over.
    #[test]
    fn reregistration_after_departure_resyncs_placement() {
        let reg = TenantRegistry::new(2);
        let (s1, c1) = reg.register(1, 10);
        reg.register(2, 10);
        reg.register(3, 10);
        c1.admitted.fetch_add(5, Ordering::Relaxed);
        reg.depart(1);
        // Tenant 4 fills the freed stripe; tenant 1 then lands elsewhere.
        reg.register(4, 10);
        let (s1b, c1b) = reg.register(1, 11);
        assert_ne!(
            s1b, s1,
            "this layout re-places tenant 1 on the other stripe"
        );
        assert!(Arc::ptr_eq(&c1, &c1b), "counters survive the round trip");
        let snap = reg.snapshot();
        let t1 = snap.get(&1).expect("entry retained");
        assert_eq!(
            (t1.shard, t1.group, t1.admitted),
            (s1b, 11, 5),
            "snapshot reports actual placement plus surviving counters"
        );
        assert_eq!(reg.shard_of(1), Some(s1b), "allocator and entry agree");
    }

    #[test]
    fn registry_attributes_counters_per_tenant() {
        let reg = TenantRegistry::new(2);
        reg.register(7, 1);
        reg.register(9, 1);
        let (_, _, c7) = reg.lookup(7).expect("registered");
        c7.admitted.fetch_add(3, Ordering::Relaxed);
        c7.rejected.fetch_add(2, Ordering::Relaxed);
        let snap = reg.snapshot();
        assert_eq!(snap.get(&7).map(|s| (s.admitted, s.rejected)), Some((3, 2)));
        assert_eq!(snap.get(&9).map(|s| (s.admitted, s.rejected)), Some((0, 0)));
        let txt = reg.render_accounting();
        assert!(txt.contains("tenant=7 shard=0 group=1 forked=0 admitted=3 rejected=2"));
    }
}
