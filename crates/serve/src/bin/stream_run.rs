//! Deterministic streaming chaos run: interleave seeded ingest with
//! fault-injected queries over a live database and print the canonical
//! transcript plus the write-ledger footer.
//!
//! Two invocations with the same seed print byte-identical output, and
//! the last line is always `lost_writes=<n>` — the CI `streaming` job
//! runs this twice per seed, diffs the transcripts, and greps for
//! `^lost_writes=0$`. Usage:
//!
//! ```text
//! stream_run [--seed N] [--ops N]
//! ```

use asqp_serve::{run_stream, StreamConfig};

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: stream_run [--seed N] [--ops N]");
        return;
    }
    let seed = parse_flag(&args, "--seed").unwrap_or(0xFEED_2024);
    let mut cfg = StreamConfig::chaos(seed);
    if let Some(n) = parse_flag(&args, "--ops") {
        cfg.ops = n;
    }

    match run_stream(&cfg) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("stream_run failed: {e}");
            std::process::exit(1);
        }
    }
}
