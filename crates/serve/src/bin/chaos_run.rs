//! Deterministic chaos run: replay the reference fault scenario for a
//! seed and print the canonical event transcript.
//!
//! Two invocations with the same seed print byte-identical output — the
//! CI `chaos` job runs this twice and diffs the transcripts. Usage:
//!
//! ```text
//! chaos_run [--seed N] [--requests N] [--workers N] [--queue-depth N]
//! ```

use asqp_serve::{run_sim, SimConfig};

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: chaos_run [--seed N] [--requests N] [--workers N] [--queue-depth N]");
        return;
    }
    let seed = parse_flag(&args, "--seed").unwrap_or(0xA5_2024);
    let mut cfg = SimConfig::chaos(seed);
    if let Some(n) = parse_flag(&args, "--requests") {
        cfg.requests = n;
    }
    if let Some(n) = parse_flag(&args, "--workers") {
        cfg.workers = n.max(1) as usize;
    }
    if let Some(n) = parse_flag(&args, "--queue-depth") {
        cfg.queue_depth = n.max(1) as usize;
    }

    let report = run_sim(&cfg);
    print!("{}", report.render());
}
