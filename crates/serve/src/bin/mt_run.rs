//! Deterministic multi-tenant run: replay the reference multi-tenant
//! scenario for a seed and print the canonical transcript (per-tenant
//! accounting lines, event-stream digest, summary footer).
//!
//! Two invocations with the same seed and tenant count print
//! byte-identical output — the CI `multitenant` job runs this twice per
//! seed at ≥ 10⁵ tenants and diffs the transcripts, then checks the
//! `lossless=` line. Usage:
//!
//! ```text
//! mt_run [--seed N] [--tenants N] [--shards N] [--workers-per-shard N]
//!        [--queue-depth N] [--summary-only]
//! ```
//!
//! `--summary-only` suppresses the per-tenant lines (the digest + summary
//! still certify the full event stream) for quick local inspection.

use asqp_serve::{run_mt_sim, MtSimConfig};

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: mt_run [--seed N] [--tenants N] [--shards N] \
             [--workers-per-shard N] [--queue-depth N] [--summary-only]"
        );
        return;
    }
    let seed = parse_flag(&args, "--seed").unwrap_or(0xA5_2024);
    let tenants = parse_flag(&args, "--tenants").unwrap_or(100_000);
    let mut cfg = MtSimConfig::standard(seed, tenants);
    if let Some(n) = parse_flag(&args, "--shards") {
        cfg.shards = n.max(1) as usize;
    }
    if let Some(n) = parse_flag(&args, "--workers-per-shard") {
        cfg.workers_per_shard = n.max(1) as usize;
    }
    if let Some(n) = parse_flag(&args, "--queue-depth") {
        cfg.queue_depth = n.max(1) as usize;
    }

    let report = run_mt_sim(&cfg);
    let full = report.render();
    if args.iter().any(|a| a == "--summary-only") {
        for line in full.lines().filter(|l| !l.starts_with("tenant=")) {
            println!("{line}");
        }
    } else {
        print!("{full}");
    }
    println!("lossless={}", u8::from(report.lossless()));
    println!("throughput_per_vsec={:.0}", report.throughput_per_sec());
}
