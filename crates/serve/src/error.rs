//! Typed outcomes of the serving layer.
//!
//! Every submitted request resolves to exactly one of three shapes: a
//! full-fidelity [`Answer`], a *degraded* [`Answer`] (the subset answer,
//! tagged, after the full-DB path missed its deadline or exhausted its
//! retries), or a [`ServeError`]. Admission-control rejections surface
//! synchronously from `Server::submit` as [`ServeError::Overloaded`] —
//! backpressure the client can act on immediately.

use asqp_db::{DbError, ResultSet};
use std::fmt;

/// How a request was ultimately answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedSource {
    /// Routed to and answered from the approximation set.
    Subset,
    /// Routed to and answered by the full database within the deadline.
    Full,
    /// Routed to the full database, but the deadline or retry budget ran
    /// out — answered from the approximation set instead (degraded).
    DegradedSubset,
}

impl fmt::Display for ServedSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServedSource::Subset => "subset",
            ServedSource::Full => "full",
            ServedSource::DegradedSubset => "degraded",
        };
        write!(f, "{s}")
    }
}

/// A resolved (possibly degraded) answer.
#[derive(Debug, Clone)]
pub struct Answer {
    /// Server-assigned request id (also the fault-plan key).
    pub request: u64,
    pub rows: ResultSet,
    pub source: ServedSource,
    /// Full-DB attempts consumed (0 for subset-routed requests).
    pub attempts: u32,
}

impl Answer {
    /// True when the deadline/retry ladder fell back to the subset.
    pub fn degraded(&self) -> bool {
        self.source == ServedSource::DegradedSubset
    }
}

/// Why a request could not be answered at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the queue was already at
    /// its configured depth. Backpressure — retry later.
    Overloaded {
        /// The configured admission-queue depth that was hit.
        depth: usize,
    },
    /// The server is draining and admits no new requests.
    ShuttingDown,
    /// Multi-tenant submission for a tenant that was never registered
    /// (or already departed).
    UnknownTenant {
        /// The offending tenant id.
        tenant: u64,
    },
    /// A fatal database error (bad query, unknown table). Never retried:
    /// see [`DbError::class`](asqp_db::DbError::class).
    Fatal(DbError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "overloaded: admission queue at depth {depth}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::UnknownTenant { tenant } => {
                write!(f, "unknown tenant {tenant}: register before submitting")
            }
            ServeError::Fatal(e) => write!(f, "fatal: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Fatal(e) => Some(e),
            _ => None,
        }
    }
}

/// What every submitted request resolves to.
pub type ServeResult = Result<Answer, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(
            ServeError::Overloaded { depth: 8 }.to_string(),
            "overloaded: admission queue at depth 8"
        );
        assert_eq!(
            ServeError::ShuttingDown.to_string(),
            "server is shutting down"
        );
        assert!(ServeError::Fatal(DbError::UnknownTable("t".into()))
            .to_string()
            .starts_with("fatal: unknown table"));
        assert_eq!(ServedSource::DegradedSubset.to_string(), "degraded");
    }

    #[test]
    fn degraded_flag_tracks_source() {
        let a = Answer {
            request: 1,
            rows: ResultSet {
                columns: Vec::new(),
                rows: Vec::new(),
            },
            source: ServedSource::DegradedSubset,
            attempts: 3,
        };
        assert!(a.degraded());
    }
}
