//! Deterministic discrete-event chaos simulator.
//!
//! The threaded [`Server`](crate::Server) proves the concurrency story
//! (no panics, no lost requests) but its event interleaving — and hence
//! which submissions hit a full queue — depends on OS scheduling. This
//! module replays the *same* serving semantics (admission control,
//! routing, the attempt ladder with the same [`FaultPlan`] and
//! [`RetryPolicy`] decision hashes, degradation) on a virtual clock with
//! a strictly ordered event heap, so a chaos run is a pure function of
//! its configuration: same seed ⇒ byte-for-byte identical
//! [`EventLog::render`] output. That is the artifact the chaos suite and
//! the CI `chaos` job diff across runs.

use crate::backoff::RetryPolicy;
use crate::error::ServedSource;
use crate::event::{EventKind, EventLog};
use crate::fault::{splitmix64, FaultPlan};
use crate::server::ServerStats;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// Configuration of one simulated chaos run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Total client requests injected.
    pub requests: u64,
    pub workers: usize,
    pub queue_depth: usize,
    /// Per-request deadline from admission; `0` = none.
    pub deadline_ns: u64,
    pub retry: RetryPolicy,
    pub faults: FaultPlan,
    /// Percentage (0–100) of requests hash-routed to the subset.
    pub subset_pct: u8,
    /// Virtual gap between consecutive arrivals.
    pub inter_arrival_ns: u64,
    /// Virtual cost of a subset answer.
    pub subset_service_ns: u64,
    /// Virtual cost of a successful full-DB execution (after injected
    /// latency).
    pub full_service_ns: u64,
}

impl SimConfig {
    /// The reference chaos scenario: 64 clients against a 4-worker pool
    /// under [`FaultPlan::chaos`] — arrivals fast enough to exercise
    /// queueing and (for small depths) admission rejections.
    pub fn chaos(seed: u64) -> SimConfig {
        SimConfig {
            requests: 64,
            workers: 4,
            queue_depth: 16,
            // 300µs: a base attempt (20µs latency + 60µs service) fits
            // comfortably, but a 400µs spike or an error+backoff cycle
            // blows it — so chaos runs exercise the degrade path.
            deadline_ns: 300_000,
            retry: RetryPolicy {
                max_retries: 3,
                base_ns: 50_000,
                cap_ns: 400_000,
            },
            faults: FaultPlan::chaos(seed),
            subset_pct: 50,
            inter_arrival_ns: 30_000,
            subset_service_ns: 15_000,
            full_service_ns: 60_000,
        }
    }
}

/// Outcome of a simulated run.
#[derive(Debug)]
pub struct SimReport {
    pub stats: ServerStats,
    pub log: EventLog,
    /// Virtual time at which the last request resolved.
    pub makespan_ns: u64,
}

impl SimReport {
    /// Canonical transcript (see [`EventLog::render`]) plus a summary
    /// footer — the unit the chaos suite diffs byte-for-byte.
    pub fn render(&self) -> String {
        let s = &self.stats;
        format!(
            "{}summary admitted={} rejected={} subset={} full={} degraded={} retries={} makespan_ns={}\n",
            self.log.render(),
            s.admitted,
            s.rejected,
            s.resolved_subset,
            s.resolved_full,
            s.degraded,
            s.retries,
            self.makespan_ns
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SimEvent {
    Arrival { request: u64 },
    WorkerFree { worker: usize },
}

struct PendingJob {
    request: u64,
    admitted_ns: u64,
    seq: u32,
}

/// Run one simulated chaos scenario. Pure: identical configs produce
/// identical reports.
pub fn run_sim(cfg: &SimConfig) -> SimReport {
    let log = EventLog::new();
    let mut stats = ServerStats::default();
    let mut heap: BinaryHeap<Reverse<(u64, u64, SimEvent)>> = BinaryHeap::new();
    let mut tie = 0u64;
    let mut push_event =
        |heap: &mut BinaryHeap<Reverse<(u64, u64, SimEvent)>>, t: u64, e: SimEvent| {
            heap.push(Reverse((t, tie, e)));
            tie += 1;
        };

    for r in 0..cfg.requests {
        push_event(
            &mut heap,
            r * cfg.inter_arrival_ns,
            SimEvent::Arrival { request: r },
        );
    }
    // Workers come online at t=0, except the fault plan's stalled worker.
    let mut idle: BTreeSet<usize> = BTreeSet::new();
    for w in 0..cfg.workers {
        match cfg.faults.worker_stall(w) {
            Some(stall) => push_event(&mut heap, stall, SimEvent::WorkerFree { worker: w }),
            None => {
                idle.insert(w);
            }
        }
    }

    let mut queue: VecDeque<PendingJob> = VecDeque::new();
    let mut makespan = 0u64;

    while let Some(Reverse((now, _, ev))) = heap.pop() {
        match ev {
            SimEvent::Arrival { request } => {
                if queue.len() >= cfg.queue_depth {
                    log.push(
                        request,
                        0,
                        EventKind::Rejected {
                            depth: cfg.queue_depth,
                        },
                    );
                    stats.rejected += 1;
                    continue;
                }
                log.push(request, 0, EventKind::Admitted);
                stats.admitted += 1;
                queue.push_back(PendingJob {
                    request,
                    admitted_ns: now,
                    seq: 1,
                });
                if let Some(&w) = idle.iter().next() {
                    if let Some(job) = queue.pop_front() {
                        idle.remove(&w);
                        let done = serve_one(cfg, &log, &mut stats, job, now);
                        makespan = makespan.max(done);
                        push_event(&mut heap, done, SimEvent::WorkerFree { worker: w });
                    }
                }
            }
            SimEvent::WorkerFree { worker } => match queue.pop_front() {
                Some(job) => {
                    let done = serve_one(cfg, &log, &mut stats, job, now);
                    makespan = makespan.max(done);
                    push_event(&mut heap, done, SimEvent::WorkerFree { worker });
                }
                None => {
                    idle.insert(worker);
                }
            },
        }
    }

    SimReport {
        stats,
        log,
        makespan_ns: makespan,
    }
}

/// Pure routing rule for simulated requests (mirrors `MirrorBackend`'s
/// hash routing, keyed by request id instead of query text).
fn routes_to_subset(seed: u64, request: u64, subset_pct: u8) -> bool {
    splitmix64(seed ^ splitmix64(request ^ 0x5e1f)) % 100 < subset_pct as u64
}

/// Deterministic pseudo row count for a resolved answer.
fn sim_rows(seed: u64, request: u64) -> usize {
    (splitmix64(seed ^ request.wrapping_mul(0x2545_f491_4f6c_dd1d)) % 50) as usize
}

/// Walk one request through the same degradation ladder as
/// `server::process`, on virtual time. Returns the completion time.
fn serve_one(
    cfg: &SimConfig,
    log: &EventLog,
    stats: &mut ServerStats,
    job: PendingJob,
    start_ns: u64,
) -> u64 {
    let PendingJob {
        request,
        admitted_ns,
        mut seq,
    } = job;
    let mut now = start_ns;
    let push = |seq: &mut u32, kind: EventKind| {
        log.push(request, *seq, kind);
        *seq += 1;
    };
    let deadline = if cfg.deadline_ns == 0 {
        u64::MAX
    } else {
        admitted_ns.saturating_add(cfg.deadline_ns)
    };
    let remaining = |now: u64| deadline.saturating_sub(now);

    let answerable = routes_to_subset(cfg.faults.seed, request, cfg.subset_pct);
    push(&mut seq, EventKind::Routed { answerable });

    if answerable {
        now += cfg.subset_service_ns;
        push(
            &mut seq,
            EventKind::Resolved {
                source: ServedSource::Subset,
                rows: sim_rows(cfg.faults.seed, request),
            },
        );
        stats.resolved_subset += 1;
        return now;
    }

    let mut attempts = 0u32;
    let degrade_reason = loop {
        if attempts >= cfg.retry.max_attempts() {
            break EventKind::RetriesExhausted;
        }
        let rem = remaining(now);
        if rem == 0 {
            break EventKind::DeadlineExceeded;
        }
        let fault = cfg.faults.decide(request, attempts);
        push(
            &mut seq,
            EventKind::Attempt {
                attempt: attempts,
                latency_ns: fault.latency_ns,
            },
        );
        if fault.latency_ns >= rem {
            now += rem;
            break EventKind::DeadlineExceeded;
        }
        now += fault.latency_ns;
        attempts += 1;
        if fault.inject_error {
            push(
                &mut seq,
                EventKind::TransientError {
                    attempt: attempts - 1,
                },
            );
            stats.retries += 1;
            if attempts >= cfg.retry.max_attempts() {
                break EventKind::RetriesExhausted;
            }
            let sleep = cfg.retry.backoff_ns(cfg.faults.seed, request, attempts - 1);
            push(
                &mut seq,
                EventKind::Backoff {
                    attempt: attempts - 1,
                    sleep_ns: sleep,
                },
            );
            now += sleep.min(remaining(now));
        } else {
            now += cfg.full_service_ns;
            push(
                &mut seq,
                EventKind::Resolved {
                    source: ServedSource::Full,
                    rows: sim_rows(cfg.faults.seed, request),
                },
            );
            stats.resolved_full += 1;
            return now;
        }
    };

    push(&mut seq, degrade_reason);
    now += cfg.subset_service_ns;
    push(
        &mut seq,
        EventKind::Resolved {
            source: ServedSource::DegradedSubset,
            rows: sim_rows(cfg.faults.seed, request),
        },
    );
    stats.degraded += 1;
    now
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_renders_identically() {
        let cfg = SimConfig::chaos(1234);
        let a = run_sim(&cfg);
        let b = run_sim(&cfg);
        assert_eq!(a.render(), b.render());
        assert!(!a.log.is_empty());
    }

    #[test]
    fn different_seeds_render_differently() {
        let a = run_sim(&SimConfig::chaos(1));
        let b = run_sim(&SimConfig::chaos(2));
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn every_admitted_request_resolves() {
        for seed in [0u64, 7, 99, 12345] {
            let r = run_sim(&SimConfig::chaos(seed));
            let s = &r.stats;
            assert_eq!(s.admitted + s.rejected, 64, "seed {seed}");
            assert_eq!(
                s.resolved_subset + s.resolved_full + s.degraded,
                s.admitted,
                "seed {seed}: all admitted requests must resolve"
            );
        }
    }

    #[test]
    fn chaos_actually_degrades_and_retries_somewhere() {
        // Across a handful of seeds the chaos profile must exercise the
        // interesting paths — otherwise the suite tests nothing.
        let mut degraded = 0;
        let mut retries = 0;
        for seed in 0..8u64 {
            let r = run_sim(&SimConfig::chaos(seed));
            degraded += r.stats.degraded;
            retries += r.stats.retries;
        }
        assert!(degraded > 0, "no degradations across seeds");
        assert!(retries > 0, "no retries across seeds");
    }

    #[test]
    fn tiny_queue_rejects_under_burst() {
        let cfg = SimConfig {
            queue_depth: 2,
            workers: 1,
            inter_arrival_ns: 1, // burst arrival
            ..SimConfig::chaos(5)
        };
        let r = run_sim(&cfg);
        assert!(
            r.stats.rejected > 0,
            "burst against depth-2 queue must shed load"
        );
    }
}
