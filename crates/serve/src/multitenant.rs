//! Sharded multi-tenant serving over copy-on-write approximation sets.
//!
//! [`MtServer`] scales the single-session [`Server`](crate::Server) out
//! to many tenants:
//!
//! - **Sharding** — tenants are dealt across independent shard pools
//!   (own [`AdmissionQueue`], own workers) by the deterministic striped
//!   policy in [`TenantRegistry`]; one hot shard backs up without
//!   stalling the rest.
//! - **COW set sharing** — each tenant registers its *own*
//!   [`SessionBackend`] (typically an `asqp_core::CowSession` over a
//!   cluster-shared base), so memory scales with clusters, not tenants;
//!   a drift-triggered fine-tune forks privately without touching
//!   anyone else's routing.
//! - **Shared scans** — in-flight subset queries with the same COW
//!   group, share epoch and exact query text coalesce through the
//!   single-flight [`ScanBatcher`]; followers count as per-tenant
//!   `shared_scan_hits`.
//! - **Exact per-tenant accounting** — every admission, rejection
//!   (attributed to the *rejecting* tenant, fixing the global
//!   `AdmissionQueue` counter), resolution, retry and degradation lands
//!   on the submitting tenant's [`TenantCounters`], so
//!   `admitted == resolved` holds per tenant, not just globally.
//!
//! The degradation ladder per request is identical to the single-tenant
//! server: route → subset | full-with-retries → degrade-to-subset.

use crate::backend::SessionBackend;
use crate::backoff::RetryPolicy;
use crate::batch::{ScanBatcher, ScanKey, ScanRole};
use crate::error::{Answer, ServeError, ServeResult, ServedSource};
use crate::fault::FaultPlan;
use crate::queue::AdmissionQueue;
use crate::server::{ServerStats, Ticket};
use crate::tenant::{TenantCounters, TenantId, TenantRegistry, TenantStats};
use asqp_db::{DbError, Query};
use asqp_telemetry as telemetry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Multi-tenant serving configuration.
#[derive(Debug, Clone)]
pub struct MtConfig {
    /// Independent shard pools tenants are striped across.
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Admission-queue depth per shard.
    pub queue_depth: usize,
    /// Per-request deadline from admission; `0` = none.
    pub deadline_ns: u64,
    pub retry: RetryPolicy,
    /// Fault plan; worker stalls key off the *global* worker index
    /// (`shard * workers_per_shard + local`).
    pub faults: FaultPlan,
}

impl Default for MtConfig {
    fn default() -> Self {
        MtConfig {
            shards: 4,
            workers_per_shard: 2,
            queue_depth: 32,
            deadline_ns: 5_000_000,
            retry: RetryPolicy::default(),
            faults: FaultPlan::disabled(),
        }
    }
}

/// One registered tenant: its backend plus its accounting.
struct TenantSlot<B> {
    group: u64,
    shard: usize,
    backend: B,
    counters: Arc<TenantCounters>,
}

struct MtJob<B> {
    request: u64,
    query: Query,
    admitted_at: Instant,
    reply: SyncSender<ServeResult>,
    slot: Arc<TenantSlot<B>>,
}

struct Shard<B> {
    queue: AdmissionQueue<MtJob<B>>,
}

struct MtShared<B> {
    config: MtConfig,
    shards: Vec<Shard<B>>,
    batcher: ScanBatcher,
    draining: AtomicBool,
}

/// The sharded multi-tenant front-end.
pub struct MtServer<B: SessionBackend> {
    shared: Arc<MtShared<B>>,
    registry: Arc<TenantRegistry>,
    slots: RwLock<BTreeMap<TenantId, Arc<TenantSlot<B>>>>,
    next_request: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<B: SessionBackend> MtServer<B> {
    /// Spawn `shards × workers_per_shard` workers and start serving.
    pub fn start(config: MtConfig) -> MtServer<B> {
        assert!(
            config.shards > 0 && config.workers_per_shard > 0,
            "multi-tenant server needs at least one shard and one worker"
        );
        let shards = (0..config.shards)
            .map(|_| Shard {
                queue: AdmissionQueue::new(config.queue_depth),
            })
            .collect();
        let shared = Arc::new(MtShared {
            shards,
            batcher: ScanBatcher::new(),
            draining: AtomicBool::new(false),
            config,
        });
        let mut workers = Vec::new();
        for shard in 0..shared.config.shards {
            for local in 0..shared.config.workers_per_shard {
                let global = shard * shared.config.workers_per_shard + local;
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("asqp-mt-{shard}-{local}"))
                    .spawn(move || mt_worker_loop(shard, global, shared))
                    // asqp::allow(panic-path): pool startup, before any request is admitted
                    .expect("spawn mt worker");
                workers.push(handle);
            }
        }
        let registry = Arc::new(TenantRegistry::new(shared.config.shards));
        MtServer {
            shared,
            registry,
            slots: RwLock::new(BTreeMap::new()),
            next_request: AtomicU64::new(0),
            workers: Mutex::new(workers),
        }
    }

    fn slots(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<TenantId, Arc<TenantSlot<B>>>> {
        self.slots.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Register `tenant` under COW cluster `group` with its own backend
    /// view, returning its shard. `group` asserts that this backend's
    /// subset answers are interchangeable with every same-group backend
    /// at the same [`SessionBackend::share_epoch`] — that is what
    /// licenses shared-scan batching. Re-registering an *active* tenant
    /// is a no-op that keeps its original slot (backend, group,
    /// placement); a tenant that departed and comes back gets a freshly
    /// allocated stripe and the new backend/group, while its lifetime
    /// counters carry over.
    pub fn register_tenant(&self, tenant: TenantId, group: u64, backend: B) -> usize {
        if let Some(slot) = self.slots().get(&tenant) {
            return slot.shard;
        }
        // `register` hands back the entry's counters directly (never a
        // fabricated orphan), so a returning tenant's accounting stays
        // lossless across the departure round trip.
        let (shard, counters) = self.registry.register(tenant, group);
        let mut slots = self.slots.write().unwrap_or_else(|p| p.into_inner());
        slots.entry(tenant).or_insert_with(|| {
            telemetry::counter("serve.mt.tenants", 1);
            Arc::new(TenantSlot {
                group,
                shard,
                backend,
                counters,
            })
        });
        shard
    }

    /// Deregister `tenant`: frees its stripe for future arrivals and
    /// refuses new submissions; accounting for its served requests
    /// survives in the registry snapshot.
    pub fn depart_tenant(&self, tenant: TenantId) -> Option<usize> {
        let removed = {
            let mut slots = self.slots.write().unwrap_or_else(|p| p.into_inner());
            slots.remove(&tenant)
        };
        removed.as_ref()?;
        self.registry.depart(tenant)
    }

    /// Submit a query on behalf of `tenant`. Fails synchronously with
    /// [`ServeError::UnknownTenant`] for unregistered tenants and
    /// [`ServeError::Overloaded`] when the tenant's shard is at depth —
    /// the rejection is attributed to *this* tenant's counters.
    pub fn submit(&self, tenant: TenantId, query: Query) -> Result<Ticket, ServeError> {
        if self.shared.draining.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let slot = match self.slots().get(&tenant) {
            Some(slot) => Arc::clone(slot),
            None => return Err(ServeError::UnknownTenant { tenant }),
        };
        let shard = match self.shared.shards.get(slot.shard) {
            Some(shard) => shard,
            None => return Err(ServeError::UnknownTenant { tenant }),
        };
        let request = self.next_request.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = sync_channel(1);
        let job = MtJob {
            request,
            query,
            admitted_at: Instant::now(),
            reply,
            slot: Arc::clone(&slot),
        };
        match shard.queue.try_push(job) {
            Ok(()) => {
                slot.counters.admitted.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.mt.admitted", 1);
                telemetry::gauge("serve.mt.queue.depth", shard.queue.len() as f64);
                Ok(Ticket::internal(request, rx))
            }
            Err(e) => {
                if matches!(e, ServeError::Overloaded { .. }) {
                    // The fix for the global rejection counter: the shed
                    // request belongs to the tenant that submitted it.
                    slot.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter("serve.mt.rejected", 1);
                }
                Err(e)
            }
        }
    }

    /// Submit and wait: the synchronous client path.
    pub fn query_blocking(&self, tenant: TenantId, query: Query) -> ServeResult {
        self.submit(tenant, query)?.wait()
    }

    /// The tenant directory (placement + per-tenant accounting).
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// Accounting snapshot for one tenant.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.registry.snapshot().remove(&tenant)
    }

    /// Aggregate counters across all tenants (the single-tenant
    /// [`ServerStats`] shape, so existing lossless-accounting assertions
    /// port over).
    pub fn stats(&self) -> ServerStats {
        let mut s = ServerStats::default();
        for stats in self.registry.snapshot().values() {
            s.admitted += stats.admitted;
            s.rejected += stats.rejected;
            s.resolved_subset += stats.resolved_subset;
            s.resolved_full += stats.resolved_full;
            s.degraded += stats.degraded;
            s.retries += stats.retries;
            s.fatal += stats.fatal;
        }
        s
    }

    /// Subset executions saved by shared-scan batching.
    pub fn shared_scan_hits(&self) -> u64 {
        self.shared.batcher.shared_hits()
    }

    /// Graceful shutdown: stop admitting, drain every shard, join all
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl<B: SessionBackend> Drop for MtServer<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn mt_worker_loop<B: SessionBackend>(shard: usize, global_worker: usize, shared: Arc<MtShared<B>>) {
    if let Some(stall_ns) = shared.config.faults.worker_stall(global_worker) {
        telemetry::counter("serve.mt.worker.stalled", 1);
        std::thread::sleep(Duration::from_nanos(stall_ns));
    }
    let queue = match shared.shards.get(shard) {
        Some(s) => &s.queue,
        None => return,
    };
    while let Some(job) = queue.pop() {
        mt_process(&shared, job);
    }
}

fn remaining_ns(admitted_at: Instant, deadline_ns: u64) -> u64 {
    if deadline_ns == 0 {
        return u64::MAX;
    }
    deadline_ns.saturating_sub(admitted_at.elapsed().as_nanos() as u64)
}

fn sleep_ns(ns: u64) {
    if ns > 0 {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

/// Walk one admitted request through the degradation ladder, attributing
/// every outcome to the submitting tenant.
fn mt_process<B: SessionBackend>(shared: &MtShared<B>, job: MtJob<B>) {
    let MtJob {
        request,
        query,
        admitted_at,
        reply,
        slot,
    } = job;
    let cfg = &shared.config;
    let counters = &slot.counters;

    let decision = slot.backend.plan(&query);

    let resolve = |result: ServeResult| {
        match &result {
            Ok(a) => {
                let (counter, name) = match a.source {
                    ServedSource::Subset => (&counters.resolved_subset, "serve.mt.resolved.subset"),
                    ServedSource::Full => (&counters.resolved_full, "serve.mt.resolved.full"),
                    ServedSource::DegradedSubset => (&counters.degraded, "serve.mt.degraded"),
                };
                counter.fetch_add(1, Ordering::Relaxed);
                telemetry::counter(name, 1);
                let _ = slot.backend.finish(&query, &decision);
                // `finish` may have crossed the tenant's drift trigger
                // and forked its COW session.
                if slot.backend.share_epoch() != 0 {
                    counters.forked.store(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                counters.fatal.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.mt.fatal", 1);
            }
        }
        let _ = reply.send(result);
    };

    // Subset route: answered through the single-flight batcher so
    // identical in-flight scans from same-group, same-epoch tenants
    // execute once. Epoch and scan come from one atomic backend snapshot
    // — keying on a separately-read epoch would let a concurrent fork
    // (another of this tenant's in-flight requests crossing its drift
    // trigger) slip between key construction and execution, publishing
    // fork-private rows to shared-base followers.
    if decision.answerable {
        let (epoch, scan) = slot.backend.pinned_subset_scan(&query);
        let key = ScanKey::for_query(slot.group, epoch, &query);
        let (outcome, role) = shared.batcher.execute(key, scan);
        if role == ScanRole::Follower {
            counters.shared_scan_hits.fetch_add(1, Ordering::Relaxed);
        }
        return match outcome {
            Ok(rows) => resolve(Ok(Answer {
                request,
                rows,
                source: ServedSource::Subset,
                attempts: 0,
            })),
            Err(e) => resolve(Err(ServeError::Fatal(e))),
        };
    }

    // Full route: the attempt ladder (identical to `server::process`).
    let mut attempts = 0u32;
    loop {
        if attempts >= cfg.retry.max_attempts() {
            break;
        }
        let remaining = remaining_ns(admitted_at, cfg.deadline_ns);
        if remaining == 0 {
            break;
        }
        let fault = cfg.faults.decide(request, attempts);
        if fault.latency_ns >= remaining {
            sleep_ns(remaining);
            attempts += 1;
            break;
        }
        sleep_ns(fault.latency_ns);

        let outcome = if fault.inject_error {
            Err(DbError::Busy("injected fault".into()))
        } else {
            slot.backend.answer_full(&query)
        };
        attempts += 1;
        match outcome {
            Ok(rows) => {
                return resolve(Ok(Answer {
                    request,
                    rows,
                    source: ServedSource::Full,
                    attempts,
                }));
            }
            Err(e) if e.is_transient() => {
                counters.retries.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.mt.retries", 1);
                if attempts >= cfg.retry.max_attempts() {
                    break;
                }
                let sleep = cfg.retry.backoff_ns(cfg.faults.seed, request, attempts - 1);
                sleep_ns(sleep.min(remaining_ns(admitted_at, cfg.deadline_ns)));
            }
            Err(e) => {
                return resolve(Err(ServeError::Fatal(e)));
            }
        }
    }

    // Degrade: answer from the approximation set, tagged.
    match slot.backend.answer_subset(&query) {
        Ok(rows) => resolve(Ok(Answer {
            request,
            rows,
            source: ServedSource::DegradedSubset,
            attempts,
        })),
        Err(e) => resolve(Err(ServeError::Fatal(e))),
    }
}
