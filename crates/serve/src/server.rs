//! The bounded-worker concurrent session server.
//!
//! A fixed pool of worker threads drains a bounded [`AdmissionQueue`];
//! [`Server::submit`] is the front door, rejecting synchronously with
//! [`ServeError::Overloaded`] once the queue is at depth. Each admitted
//! request walks the degradation ladder:
//!
//! 1. **Route** — the backend decides subset vs. full DB.
//! 2. **Subset route**: answered locally, never faulted.
//! 3. **Full route**: up to `retry.max_attempts()` attempts, each paying
//!    the fault plan's injected latency and possibly an injected
//!    transient error; transient failures back off with deterministic
//!    full jitter.
//! 4. **Degrade**: when the per-request deadline expires or retries are
//!    exhausted, the request falls back to the approximation set and the
//!    answer is tagged [`ServedSource::DegradedSubset`] — the ASQP bet
//!    that a subset answer now beats a full answer too late (or never).
//!
//! Because the subset path cannot fault, every admitted request resolves:
//! `Ok(full) | Ok(subset) | Ok(degraded) | Err(Fatal)` — and `Fatal` only
//! for queries the database itself rejects. Graceful shutdown closes the
//! queue, drains what was admitted, and joins the pool.

use crate::backend::SessionBackend;
use crate::backoff::RetryPolicy;
use crate::error::{Answer, ServeError, ServeResult, ServedSource};
use crate::event::{EventKind, EventLog};
use crate::fault::FaultPlan;
use crate::queue::AdmissionQueue;
use asqp_db::{DbError, Query};
use asqp_telemetry as telemetry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission-queue depth; submissions beyond it are `Overloaded`.
    pub queue_depth: usize,
    /// Per-request deadline measured from admission; `0` = no deadline.
    /// When the full-DB route cannot finish inside it, the request
    /// degrades to the subset answer.
    pub deadline_ns: u64,
    /// Retry policy for transient full-DB failures.
    pub retry: RetryPolicy,
    /// Fault-injection plan (disabled in production).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            deadline_ns: 5_000_000, // 5ms
            retry: RetryPolicy::default(),
            faults: FaultPlan::disabled(),
        }
    }
}

/// Atomic server counters; mirrors what the telemetry recorder sees, but
/// always available for request accounting in tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub admitted: u64,
    pub rejected: u64,
    pub resolved_subset: u64,
    pub resolved_full: u64,
    pub degraded: u64,
    pub retries: u64,
    pub fatal: u64,
}

impl ServerStats {
    /// Every admitted request must end up in exactly one resolution bucket.
    pub fn resolved(&self) -> u64 {
        self.resolved_subset + self.resolved_full + self.degraded + self.fatal
    }
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    resolved_subset: AtomicU64,
    resolved_full: AtomicU64,
    degraded: AtomicU64,
    retries: AtomicU64,
    fatal: AtomicU64,
}

struct Job {
    request: u64,
    query: Query,
    seq: u32,
    admitted_at: Instant,
    reply: SyncSender<ServeResult>,
}

/// A pending request: wait on it for the resolution.
pub struct Ticket {
    pub request: u64,
    rx: Receiver<ServeResult>,
}

impl Ticket {
    /// Block until the request resolves.
    pub fn wait(self) -> ServeResult {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Crate-internal constructor so other front-ends (the multi-tenant
    /// server) can hand out tickets over their own reply channels.
    pub(crate) fn internal(request: u64, rx: Receiver<ServeResult>) -> Ticket {
        Ticket { request, rx }
    }
}

struct Shared<B> {
    backend: B,
    config: ServeConfig,
    queue: AdmissionQueue<Job>,
    log: EventLog,
    counters: Counters,
    draining: AtomicBool,
}

/// The concurrent session front-end. `Server` is cheap to share: submit
/// from as many client threads as you like.
pub struct Server<B: SessionBackend> {
    shared: Arc<Shared<B>>,
    next_request: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<B: SessionBackend> Server<B> {
    /// Spawn the worker pool and start serving.
    pub fn start(backend: B, config: ServeConfig) -> Server<B> {
        assert!(config.workers > 0, "server needs at least one worker");
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(config.queue_depth),
            backend,
            config,
            log: EventLog::new(),
            counters: Counters::default(),
            draining: AtomicBool::new(false),
        });
        let workers = (0..shared.config.workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("asqp-serve-{idx}"))
                    .spawn(move || worker_loop(idx, shared))
                    // asqp::allow(panic-path): pool startup, before any request is admitted
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            next_request: AtomicU64::new(0),
            workers: Mutex::new(workers),
        }
    }

    /// Submit a query. Returns a [`Ticket`] on admission, or fails
    /// synchronously with `Overloaded` (queue at depth) / `ShuttingDown`.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        if self.shared.draining.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let request = self.next_request.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = sync_channel(1);
        let job = Job {
            request,
            query,
            seq: 1, // seq 0 is the admission event below
            admitted_at: Instant::now(),
            reply,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.log.push(request, 0, EventKind::Admitted);
                self.shared
                    .counters
                    .admitted
                    .fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.admitted", 1);
                telemetry::gauge("serve.queue.depth", self.shared.queue.len() as f64);
                Ok(Ticket { request, rx })
            }
            Err(e) => {
                if let ServeError::Overloaded { depth } = e {
                    self.shared
                        .log
                        .push(request, 0, EventKind::Rejected { depth });
                    self.shared
                        .counters
                        .rejected
                        .fetch_add(1, Ordering::Relaxed);
                    telemetry::counter("serve.rejected", 1);
                }
                Err(e)
            }
        }
    }

    /// Submit and wait: the simple synchronous client path.
    pub fn query_blocking(&self, query: Query) -> ServeResult {
        self.submit(query)?.wait()
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            resolved_subset: c.resolved_subset.load(Ordering::Relaxed),
            resolved_full: c.resolved_full.load(Ordering::Relaxed),
            degraded: c.degraded.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            fatal: c.fatal.load(Ordering::Relaxed),
        }
    }

    /// Jobs currently waiting for a worker.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// The chaos-run event log (canonical rendering via
    /// [`EventLog::render`]).
    pub fn log(&self) -> &EventLog {
        &self.shared.log
    }

    /// The backend, for post-run inspection (e.g. session stats).
    pub fn backend(&self) -> &B {
        &self.shared.backend
    }

    /// Graceful shutdown: stop admitting, drain every admitted request,
    /// join the pool. Idempotent.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.close();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl<B: SessionBackend> Drop for Server<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<B: SessionBackend>(idx: usize, shared: Arc<Shared<B>>) {
    if let Some(stall_ns) = shared.config.faults.worker_stall(idx) {
        telemetry::counter("serve.worker.stalled", 1);
        std::thread::sleep(Duration::from_nanos(stall_ns));
    }
    while let Some(job) = shared.queue.pop() {
        let result = process(&shared, job);
        // A dropped receiver means the client gave up waiting; the
        // request still counted as resolved above.
        let _ = result;
    }
}

/// Remaining budget until the request's deadline; `u64::MAX` when the
/// server runs without deadlines.
fn remaining_ns(admitted_at: Instant, deadline_ns: u64) -> u64 {
    if deadline_ns == 0 {
        return u64::MAX;
    }
    deadline_ns.saturating_sub(admitted_at.elapsed().as_nanos() as u64)
}

fn sleep_ns(ns: u64) {
    if ns > 0 {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

fn process<B: SessionBackend>(shared: &Shared<B>, job: Job) -> ServeResult {
    let Job {
        request,
        query,
        mut seq,
        admitted_at,
        reply,
    } = job;
    let cfg = &shared.config;
    let log = &shared.log;
    let push = |s: &mut u32, kind: EventKind| {
        log.push(request, *s, kind);
        *s += 1;
    };

    let decision = shared.backend.plan(&query);
    push(
        &mut seq,
        EventKind::Routed {
            answerable: decision.answerable,
        },
    );

    let resolve = |seq: &mut u32, result: ServeResult| -> ServeResult {
        match &result {
            Ok(a) => {
                let (counter, name) = match a.source {
                    ServedSource::Subset => {
                        (&shared.counters.resolved_subset, "serve.resolved.subset")
                    }
                    ServedSource::Full => (&shared.counters.resolved_full, "serve.resolved.full"),
                    ServedSource::DegradedSubset => (&shared.counters.degraded, "serve.degraded"),
                };
                counter.fetch_add(1, Ordering::Relaxed);
                telemetry::counter(name, 1);
                log.push(
                    request,
                    *seq,
                    EventKind::Resolved {
                        source: a.source,
                        rows: a.rows.rows.len(),
                    },
                );
                let _ = shared.backend.finish(&query, &decision);
            }
            Err(_) => {
                shared.counters.fatal.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.fatal", 1);
                log.push(request, *seq, EventKind::Failed);
            }
        }
        *seq += 1;
        let _ = reply.send(result.clone());
        result
    };

    // Subset route: local, outside the fault domain.
    if decision.answerable {
        return match shared.backend.answer_subset(&query) {
            Ok(rows) => resolve(
                &mut seq,
                Ok(Answer {
                    request,
                    rows,
                    source: ServedSource::Subset,
                    attempts: 0,
                }),
            ),
            Err(e) => resolve(&mut seq, Err(ServeError::Fatal(e))),
        };
    }

    // Full route: the attempt ladder.
    let mut attempts = 0u32;
    let degrade_reason = loop {
        if attempts >= cfg.retry.max_attempts() {
            break Some(EventKind::RetriesExhausted);
        }
        let remaining = remaining_ns(admitted_at, cfg.deadline_ns);
        if remaining == 0 {
            break Some(EventKind::DeadlineExceeded);
        }
        let fault = cfg.faults.decide(request, attempts);
        push(
            &mut seq,
            EventKind::Attempt {
                attempt: attempts,
                latency_ns: fault.latency_ns,
            },
        );
        if fault.latency_ns >= remaining {
            // The injected latency alone blows the deadline: pay what is
            // left of the budget, then degrade.
            sleep_ns(remaining);
            attempts += 1;
            break Some(EventKind::DeadlineExceeded);
        }
        sleep_ns(fault.latency_ns);

        let outcome = if fault.inject_error {
            Err(DbError::Busy("injected fault".into()))
        } else {
            shared.backend.answer_full(&query)
        };
        attempts += 1;
        match outcome {
            Ok(rows) => {
                return resolve(
                    &mut seq,
                    Ok(Answer {
                        request,
                        rows,
                        source: ServedSource::Full,
                        attempts,
                    }),
                );
            }
            Err(e) if e.is_transient() => {
                push(
                    &mut seq,
                    EventKind::TransientError {
                        attempt: attempts - 1,
                    },
                );
                shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.retries", 1);
                if attempts >= cfg.retry.max_attempts() {
                    break Some(EventKind::RetriesExhausted);
                }
                let sleep = cfg.retry.backoff_ns(cfg.faults.seed, request, attempts - 1);
                let capped = sleep.min(remaining_ns(admitted_at, cfg.deadline_ns));
                push(
                    &mut seq,
                    EventKind::Backoff {
                        attempt: attempts - 1,
                        sleep_ns: sleep,
                    },
                );
                sleep_ns(capped);
            }
            Err(e) => {
                return resolve(&mut seq, Err(ServeError::Fatal(e)));
            }
        }
    };

    // Degradation: deadline or retry budget exhausted — answer from the
    // approximation set, tagged.
    if let Some(reason) = degrade_reason {
        push(&mut seq, reason);
    }
    match shared.backend.answer_subset(&query) {
        Ok(rows) => resolve(
            &mut seq,
            Ok(Answer {
                request,
                rows,
                source: ServedSource::DegradedSubset,
                attempts,
            }),
        ),
        Err(e) => resolve(&mut seq, Err(ServeError::Fatal(e))),
    }
}
