//! Plan-cache effectiveness on the RL inner loop.
//!
//! Reward evaluation (`score_with_counts`) executes the same templated
//! workload against every candidate approximation set, and candidate
//! subsets share their parent database's plan cache. After the first
//! evaluation warms one entry per query *template* (literals are
//! parameterized out of the cache key), every subsequent execution should
//! hit — the acceptance bar is a > 90% hit rate over a Fig. 2-style sweep,
//! proven from the optimizer's own telemetry counters.

use asqp_core::metric::{score_with_counts, FullCounts, MetricParams};
use asqp_db::plan_cache::cache_enabled_default;
use asqp_db::sql::parse;
use asqp_db::{Database, Query, Schema, Value, ValueType, Workload};
use asqp_telemetry as telemetry;
use std::collections::BTreeMap;
use std::sync::Arc;

fn build_db() -> Database {
    let mut db = Database::new();
    let fact = db
        .create_table(
            "fact",
            Schema::build(&[
                ("id", ValueType::Int),
                ("region", ValueType::Int),
                ("amount", ValueType::Float),
            ]),
        )
        .unwrap();
    for i in 0..2_000i64 {
        fact.push_row(&[
            Value::Int(i),
            Value::Int(i % 8),
            Value::Float((i % 100) as f64 + 0.5),
        ])
        .unwrap();
    }
    let dim = db
        .create_table(
            "dim",
            Schema::build(&[("id", ValueType::Int), ("label", ValueType::Str)]),
        )
        .unwrap();
    for i in 0..50i64 {
        dim.push_row(&[Value::Int(i), Value::Str(format!("d{}", i % 5))])
            .unwrap();
    }
    db
}

/// The RL workload shape: a handful of query *templates* instantiated with
/// many different literals — exactly what the plan cache parameterizes.
fn templated_workload() -> Workload {
    let mut queries: Vec<Query> = Vec::new();
    for k in 0..12i64 {
        queries.push(
            parse(&format!(
                "SELECT f.id FROM fact AS f WHERE f.region = {}",
                k % 8
            ))
            .unwrap(),
        );
        queries.push(
            parse(&format!(
                "SELECT f.id, f.amount FROM fact AS f WHERE f.amount < {}.5 LIMIT {}",
                10 + 7 * k,
                5 + k
            ))
            .unwrap(),
        );
        queries.push(
            parse(&format!(
                "SELECT f.id FROM fact AS f, dim AS d \
                 WHERE f.region = d.id AND f.id < {}",
                100 + 50 * k
            ))
            .unwrap(),
        );
        queries.push(
            parse(&format!(
                "SELECT f.region, COUNT(*) FROM fact AS f \
                 WHERE f.amount > {}.5 GROUP BY f.region ORDER BY f.region",
                k
            ))
            .unwrap(),
        );
    }
    Workload::uniform(queries)
}

#[test]
fn reward_loop_hit_rate_exceeds_90_percent() {
    if !cache_enabled_default() {
        return; // cache disabled via ASQP_PLAN_CACHE for this process
    }
    let db = build_db();
    let workload = templated_workload();

    // Five candidate approximation sets, as an RL sweep would materialise.
    let subsets: Vec<Database> = (0..5usize)
        .map(|s| {
            let mut selection = BTreeMap::new();
            selection.insert(
                "fact".to_string(),
                (0..2_000).filter(|i| i % (s + 2) == 0).collect::<Vec<_>>(),
            );
            selection.insert("dim".to_string(), (0..50).collect::<Vec<_>>());
            db.subset(&selection).unwrap()
        })
        .collect();

    let rec = Arc::new(telemetry::MemoryRecorder::new());
    let scores = telemetry::scoped(rec.clone(), || {
        let full = FullCounts::compute(&db, &workload).unwrap();
        subsets
            .iter()
            .map(|s| score_with_counts(s, &workload, &full, MetricParams::default()).unwrap())
            .collect::<Vec<_>>()
    });
    assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));

    let report = rec.report();
    let hits = report
        .counters
        .get("db.plan_cache.hit")
        .copied()
        .unwrap_or(0);
    let misses = report
        .counters
        .get("db.plan_cache.miss")
        .copied()
        .unwrap_or(0);
    assert!(
        hits + misses > 0,
        "reward loop must route through the cost-based planner"
    );
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        rate > 0.9,
        "plan-cache hit rate {rate:.3} ({hits} hits / {misses} misses) below 90%"
    );
    // One miss per template, not per literal instance or per subset.
    assert_eq!(misses, 4, "misses must equal the number of templates");
}
