//! Property tests on the ASQP environments and coverage tracker: budget
//! compliance, mask validity, reward/score consistency under arbitrary
//! action sequences.

use asqp_core::{preprocess, AsqpEnv, CoverageTracker, EnvConfig, EnvKind, PreprocessConfig};
use asqp_data::{imdb, Scale};
use asqp_rl::Environment;
use proptest::prelude::*;
use std::sync::Arc;

fn space() -> Arc<asqp_core::ActionSpace> {
    let db = imdb::generate(Scale::Tiny, 1);
    let w = imdb::workload(12, 1);
    let cfg = PreprocessConfig {
        n_representatives: 6,
        max_actions: 64,
        per_query_cap: 30,
        ..PreprocessConfig::default()
    };
    Arc::new(preprocess(&db, &w, &cfg).unwrap().action_space)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Walking any valid action sequence in any environment kind never
    /// exceeds the budget, never offers an invalid mask, and terminates.
    #[test]
    fn random_walk_respects_invariants(
        seed in 0u64..500,
        kind_sel in 0usize..3,
        k in 10usize..60,
    ) {
        let kind = [EnvKind::Gsl, EnvKind::Drp, EnvKind::DrpGsl][kind_sel];
        let mut env = AsqpEnv::new(space(), EnvConfig {
            kind,
            k,
            batch_size: 4,
            drp_pairs: 6,
            seed,
            ..EnvConfig::default()
        });
        let mut state = env.reset();
        prop_assert_eq!(state.len(), env.state_dim());
        let mut rng_pick = seed;
        for step in 0..500 {
            let mask = env.valid_actions();
            let valid: Vec<usize> =
                (0..mask.len()).filter(|&a| mask[a]).collect();
            if valid.is_empty() {
                break;
            }
            // Deterministic pseudo-random pick.
            rng_pick = rng_pick.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = valid[(rng_pick >> 33) as usize % valid.len()];
            let t = env.step(a);
            state = t.state;
            prop_assert!(t.reward.is_finite());
            prop_assert!(state.len() == env.state_dim());
            if t.done {
                break;
            }
            prop_assert!(step < 499, "episode must terminate");
        }
    }

    /// Apply/retract on the tracker is an exact inverse for any sequence,
    /// and the incremental score always matches a fresh recomputation.
    #[test]
    fn tracker_apply_retract_roundtrip(actions in prop::collection::vec(0usize..40, 1..20)) {
        let sp = space();
        let n = sp.len();
        let mut t = CoverageTracker::new(Arc::clone(&sp));
        t.set_full_batch();
        let mut applied: Vec<usize> = Vec::new();
        let mut running = 0.0f64;
        for &a in &actions {
            let a = a % n;
            let (d, _) = t.apply(a, 1);
            running += d;
            applied.push(a);
            prop_assert!((t.score() - running).abs() < 1e-9,
                "incremental {} vs tracked {}", t.score(), running);
        }
        // Retract everything in reverse: back to zero.
        for &a in applied.iter().rev() {
            t.apply(a, -1);
        }
        prop_assert!(t.score().abs() < 1e-9);
        prop_assert_eq!(t.distinct_selected(), 0);
    }

    /// novel_tuples decreases monotonically as overlapping actions land.
    #[test]
    fn novel_tuples_monotone(first in 0usize..40, second in 0usize..40) {
        let sp = space();
        let n = sp.len();
        let (first, second) = (first % n, second % n);
        let mut t = CoverageTracker::new(Arc::clone(&sp));
        t.set_full_batch();
        let before = t.novel_tuples(second);
        t.apply(first, 1);
        let after = t.novel_tuples(second);
        prop_assert!(after <= before);
        if first == second {
            prop_assert_eq!(after, 0);
        }
    }
}

#[test]
fn greedy_rollout_stays_within_budget_and_is_deterministic() {
    use asqp_rl::ActorCritic;
    use rand::SeedableRng;
    let sp = space();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let policy = ActorCritic::new(sp.len() + 2, sp.len() + 1, &[16], &mut rng);
    let cfg = EnvConfig {
        kind: EnvKind::Gsl,
        k: 40,
        seed: 2,
        ..EnvConfig::default()
    };
    let mut env1 = AsqpEnv::new(Arc::clone(&sp), cfg.clone());
    let chosen1 = env1.greedy_rollout(&policy, None);
    let mut env2 = AsqpEnv::new(Arc::clone(&sp), cfg);
    let chosen2 = env2.greedy_rollout(&policy, None);
    assert_eq!(chosen1, chosen2, "greedy rollout must be deterministic");

    let sel = sp.materialize_selection(&chosen1);
    let total: usize = sel.values().map(Vec::len).sum();
    assert!(total <= 40, "rollout exceeded budget: {total}");
    assert!(total > 0);
}
