//! COW-sharing safety: tenants clustered onto one shared approximation
//! set stay interchangeable until one of them drifts, and a fork leaves
//! every other tenant's view byte-identical.

use asqp_core::{train, AsqpConfig, CowSession, RoutePlan, Session};
use asqp_core::{Prediction, SessionConfig};
use asqp_data::{imdb, Scale};
use asqp_db::sql;
use std::sync::Arc;

fn quick_config() -> AsqpConfig {
    let mut cfg = AsqpConfig::full(60, 20);
    cfg.preprocess.n_representatives = 6;
    cfg.preprocess.max_actions = 64;
    cfg.preprocess.per_query_cap = 40;
    cfg.trainer.num_workers = 2;
    cfg.trainer.steps_per_worker = 64;
    cfg.trainer.hidden = vec![32];
    cfg.iterations = 6;
    cfg
}

/// Queries far from the trained workload (the fork's drift fuel).
fn alien_queries() -> Vec<asqp_db::Query> {
    [
        "SELECT p.name FROM person p WHERE p.gender = 'f' AND p.name LIKE 'q%'",
        "SELECT p.name FROM person p WHERE p.gender = 'm' AND p.name LIKE 'w%'",
        "SELECT p.name FROM person p WHERE p.name LIKE 'e%'",
    ]
    .iter()
    .map(|t| sql::parse(t).unwrap())
    .collect()
}

/// A routing plan representing a confidently-deviating full-DB answer —
/// the exact condition `CowSession::finish` turns into drift.
fn deviating_plan() -> RoutePlan {
    RoutePlan {
        prediction: Prediction {
            score: 0.0,
            confidence: 0.0,
        },
        answerable: false,
    }
}

/// Byte-level fingerprint of one tenant's view: every probe query's
/// prediction (exact f64 bits) plus its subset answer's debug rendering.
fn view_fingerprint(tenant: &CowSession, probes: &[asqp_db::Query]) -> Vec<(u64, u64, String)> {
    probes
        .iter()
        .map(|q| {
            let plan = tenant.plan(q);
            let answer = tenant
                .answer_subset(q)
                .map(|rs| format!("{rs:?}"))
                .unwrap_or_else(|e| format!("err:{e}"));
            (
                plan.prediction.score.to_bits(),
                plan.prediction.confidence.to_bits(),
                answer,
            )
        })
        .collect()
}

#[test]
fn fork_leaves_the_other_tenant_byte_identical() {
    let db = Arc::new(imdb::generate(Scale::Tiny, 1));
    let workload = imdb::workload(12, 1);
    let model = train(&db, &workload, &quick_config()).unwrap();
    let base = Arc::new(Session::new(Arc::clone(&db), model, SessionConfig::default()).unwrap());

    // Two clustered tenants attach to the same shared set: one session in
    // memory, two views.
    let tenant_a = CowSession::new(Arc::clone(&base), SessionConfig::default());
    let tenant_b = CowSession::new(Arc::clone(&base), SessionConfig::default());
    assert!(Arc::ptr_eq(&tenant_a.active(), &base));
    assert!(Arc::ptr_eq(&tenant_b.active(), &base));
    assert_eq!(tenant_a.share_epoch(), 0);
    assert_eq!(tenant_b.share_epoch(), 0);
    let (epoch, session) = tenant_a.snapshot();
    assert_eq!(epoch, 0);
    assert!(
        Arc::ptr_eq(&session, &base),
        "pre-fork snapshot is the base"
    );

    let probes = workload.queries;
    let b_before = view_fingerprint(&tenant_b, &probes);
    let base_stats_before = base.stats();

    // Tenant A drifts: three consecutive confidently-deviating misses
    // trip its private trigger and fork a private session.
    let mut forked = false;
    for q in alien_queries() {
        forked = tenant_a.finish(&q, &deviating_plan()).unwrap();
    }
    assert!(forked, "third consecutive confident miss must fork");
    assert!(tenant_a.is_forked());
    assert_ne!(tenant_a.share_epoch(), 0);
    assert!(
        !Arc::ptr_eq(&tenant_a.active(), &base),
        "the fork must be a private session"
    );
    // Epoch and session are published together: one snapshot read can
    // never pair the shared epoch 0 with the private fork (the TOCTOU
    // the serving layer's batching safety relies on).
    let (epoch, session) = tenant_a.snapshot();
    assert_ne!(epoch, 0);
    assert_eq!(epoch, tenant_a.share_epoch());
    assert!(
        !Arc::ptr_eq(&session, &base),
        "post-fork snapshot is the private session, atomically with its epoch"
    );

    // Tenant B is untouched: same shared session, epoch still 0, and its
    // scores and subset answers are byte-identical to before the fork.
    assert!(!tenant_b.is_forked());
    assert_eq!(tenant_b.share_epoch(), 0);
    assert!(Arc::ptr_eq(&tenant_b.active(), &base));
    let b_after = view_fingerprint(&tenant_b, &probes);
    assert_eq!(
        b_before, b_after,
        "fork of tenant A must not perturb tenant B's view by a single bit"
    );

    // The shared base was never fine-tuned — COW read the model, it did
    // not write it.
    assert_eq!(base.stats().fine_tunes, base_stats_before.fine_tunes);

    // The forked tenant routes the drift queries more confidently than
    // the shared set did (that is the point of forking): its estimator
    // was refit around them.
    let a_stats = tenant_a.stats();
    assert!(a_stats.forked);
    assert_eq!(tenant_a.pending_drift(), 0, "fork consumes the drift set");
}

/// Data drift forks exactly like interest drift — privately. When the
/// live database moves underneath a shared base, the observing tenant
/// gets a fresh private session over the new data (same model, no
/// fine-tune) while the base and every sibling stay byte-identical.
#[test]
fn data_drift_forks_privately_and_leaves_siblings_byte_identical() {
    let db = Arc::new(imdb::generate(Scale::Tiny, 1));
    let workload = imdb::workload(12, 1);
    let model = train(&db, &workload, &quick_config()).unwrap();
    let base = Arc::new(Session::new(Arc::clone(&db), model, SessionConfig::default()).unwrap());

    let tenant_a = CowSession::new(Arc::clone(&base), SessionConfig::default());
    let tenant_b = CowSession::new(Arc::clone(&base), SessionConfig::default());
    let probes = workload.queries;
    let b_before = view_fingerprint(&tenant_b, &probes);

    // Fresh data, unchanged fingerprint → nothing happens.
    assert!(!tenant_a.observe_data(&db).unwrap());
    assert!(!tenant_a.is_forked());

    // The live database moves (an in-place rewrite bumps the version even
    // though the bytes match — staleness is a version property).
    let mut live = (*db).clone();
    let row = live.table("title").unwrap().row(0);
    live.update_rows("title", &[(0, row)]).unwrap();
    let live = Arc::new(live);

    // Tenant A observes the drift and forks deterministically.
    assert!(tenant_a.observe_data(&live).unwrap());
    assert!(tenant_a.is_forked());
    assert_ne!(tenant_a.share_epoch(), 0);
    let fork = tenant_a.active();
    assert!(!Arc::ptr_eq(&fork, &base));
    assert_eq!(fork.data_fingerprint(), live.data_fingerprint());
    assert_eq!(
        fork.stats().fine_tunes,
        0,
        "a data fork re-materialises; it must not retrain"
    );
    assert_eq!(
        tenant_a.pending_drift(),
        0,
        "data drift must not touch the interest-drift streak"
    );
    // Observing the same snapshot again is a no-op on the private fork.
    assert!(!tenant_a.observe_data(&live).unwrap());

    // Tenant B and the base never moved: still epoch 0, still routing
    // against the original snapshot, answers bit-for-bit unchanged.
    assert!(!tenant_b.is_forked());
    assert!(Arc::ptr_eq(&tenant_b.active(), &base));
    assert_eq!(base.data_fingerprint(), db.data_fingerprint());
    let b_after = view_fingerprint(&tenant_b, &probes);
    assert_eq!(
        b_before, b_after,
        "a sibling's data fork must not perturb tenant B's view by a single bit"
    );
}

#[test]
fn epoch_zero_views_of_one_base_are_interchangeable() {
    let db = Arc::new(imdb::generate(Scale::Tiny, 1));
    let workload = imdb::workload(8, 3);
    let model = train(&db, &workload, &quick_config()).unwrap();
    let base = Arc::new(Session::new(Arc::clone(&db), model, SessionConfig::default()).unwrap());

    let tenants: Vec<CowSession> = (0..3)
        .map(|_| CowSession::new(Arc::clone(&base), SessionConfig::default()))
        .collect();
    let fingerprints: Vec<_> = tenants
        .iter()
        .map(|t| view_fingerprint(t, &workload.queries))
        .collect();
    for fp in &fingerprints {
        assert_eq!(
            fp, &fingerprints[0],
            "same base + epoch 0 must answer identically — the scan-batching contract"
        );
    }
}
