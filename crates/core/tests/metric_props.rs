//! Metamorphic properties of the approximation-quality metric (Eq. 1):
//!
//! 1. **Weight-scale invariance** — multiplying every workload weight by
//!    the same positive constant leaves the score unchanged (weights are
//!    normalised to sum to 1).
//! 2. **Superset monotonicity** — growing the approximation set `S ⊆ S'`
//!    can never lower the score: every per-query answer over `S'` contains
//!    the answer over `S`.
//! 3. **Bounds** — every score lies in `[0, 1]`, for any subset and any
//!    frame size.
//!
//! Each property runs against randomly generated range/point workloads and
//! random row subsets, seeded through the proptest harness.

use asqp_core::metric::{per_query_fractions, score, FullCounts, MetricParams};
use asqp_db::{sql, Database, Schema, Value, ValueType, Workload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const ROWS: i64 = 200;

/// `t(x, y)` with `x = 0..200` and `y = x mod 7`.
fn test_db() -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(
            "t",
            Schema::build(&[("x", ValueType::Int), ("y", ValueType::Int)]),
        )
        .unwrap();
    for i in 0..ROWS {
        t.push_row(&[Value::Int(i), Value::Int(i % 7)]).unwrap();
    }
    db
}

/// A random mix of range and point queries over `t`.
fn gen_queries(rng: &mut StdRng) -> Vec<asqp_db::Query> {
    let n = rng.random_range(2..7usize);
    (0..n)
        .map(|_| {
            let text = match rng.random_range(0..3u8) {
                0 => format!(
                    "SELECT t.x FROM t WHERE t.x < {}",
                    rng.random_range(0..ROWS + 50)
                ),
                1 => {
                    let a = rng.random_range(0..ROWS);
                    format!(
                        "SELECT t.x FROM t WHERE t.x >= {a} AND t.x < {}",
                        a + rng.random_range(1..80i64)
                    )
                }
                _ => format!(
                    "SELECT t.x FROM t WHERE t.y = {}",
                    rng.random_range(0..9i64)
                ),
            };
            sql::parse(&text).unwrap()
        })
        .collect()
}

fn gen_weights(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.random_range(0.05..5.0)).collect()
}

/// A random strict subset of row indices for table `t`.
fn gen_selection(rng: &mut StdRng) -> Vec<usize> {
    let keep = rng.random_range(0..=ROWS as usize);
    let mut idx: Vec<usize> = (0..ROWS as usize).collect();
    // Fisher–Yates prefix shuffle, then sort the kept prefix.
    for i in 0..keep {
        let j = rng.random_range(i..ROWS as usize);
        idx.swap(i, j);
    }
    let mut sel = idx[..keep].to_vec();
    sel.sort_unstable();
    sel
}

fn subset_of(db: &Database, rows: &[usize]) -> Database {
    let mut sel = BTreeMap::new();
    sel.insert("t".to_string(), rows.to_vec());
    db.subset(&sel).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: score(S; c·w) == score(S; w) for any scale c > 0.
    #[test]
    fn score_is_invariant_under_uniform_weight_scaling(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = test_db();
        let queries = gen_queries(&mut rng);
        let weights = gen_weights(&mut rng, queries.len());
        let scale = rng.random_range(0.01..100.0);
        let params = MetricParams::new(rng.random_range(1..120usize));
        let sub = subset_of(&db, &gen_selection(&mut rng));

        let base = Workload::weighted(queries.clone(), weights.clone());
        let scaled = Workload::weighted(queries, weights.iter().map(|w| w * scale).collect());
        let s1 = score(&db, &sub, &base, params).unwrap();
        let s2 = score(&db, &sub, &scaled, params).unwrap();
        prop_assert!(
            (s1 - s2).abs() < 1e-9,
            "weight scaling by {scale} changed the score: {s1} vs {s2}"
        );
    }

    /// Property 2: S ⊆ S' ⇒ score(S) ≤ score(S'), per query and in total.
    #[test]
    fn score_is_monotone_under_supersets(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50);
        let db = test_db();
        let queries = gen_queries(&mut rng);
        let weights = gen_weights(&mut rng, queries.len());
        let workload = Workload::weighted(queries, weights);
        let params = MetricParams::new(rng.random_range(1..120usize));
        let full = FullCounts::compute(&db, &workload).unwrap();

        // Build S, then S' = S ∪ extra rows.
        let small = gen_selection(&mut rng);
        let mut big = small.clone();
        for _ in 0..rng.random_range(1..80usize) {
            big.push(rng.random_range(0..ROWS as usize));
        }
        big.sort_unstable();
        big.dedup();

        let sub_small = subset_of(&db, &small);
        let sub_big = subset_of(&db, &big);
        let f_small = per_query_fractions(&sub_small, &workload, &full, params).unwrap();
        let f_big = per_query_fractions(&sub_big, &workload, &full, params).unwrap();
        for (i, (a, b)) in f_small.iter().zip(&f_big).enumerate() {
            prop_assert!(
                b >= &(a - 1e-12),
                "query {i}: fraction dropped from {a} to {b} under a superset"
            );
        }
        let s_small = score(&db, &sub_small, &workload, params).unwrap();
        let s_big = score(&db, &sub_big, &workload, params).unwrap();
        prop_assert!(s_big >= s_small - 1e-12, "superset lowered score: {s_small} -> {s_big}");
    }

    /// Property 3: 0 ≤ score ≤ 1 and every per-query fraction ∈ [0, 1].
    #[test]
    fn score_and_fractions_are_bounded(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0);
        let db = test_db();
        let queries = gen_queries(&mut rng);
        let weights = gen_weights(&mut rng, queries.len());
        let workload = Workload::weighted(queries, weights);
        let params = MetricParams::new(rng.random_range(1..500usize));
        let sub = subset_of(&db, &gen_selection(&mut rng));

        let s = score(&db, &sub, &workload, params).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "score out of bounds: {s}");

        let full = FullCounts::compute(&db, &workload).unwrap();
        for (i, f) in per_query_fractions(&sub, &workload, &full, params)
            .unwrap()
            .iter()
            .enumerate()
        {
            prop_assert!((0.0..=1.0).contains(f), "fraction {i} out of bounds: {f}");
        }
    }
}

/// The full database is always a perfect approximation of itself — the
/// fixed point the metamorphic chain converges to.
#[test]
fn full_database_scores_exactly_one() {
    let db = test_db();
    let mut rng = StdRng::seed_from_u64(7);
    let queries = gen_queries(&mut rng);
    let weights = gen_weights(&mut rng, queries.len());
    let w = Workload::weighted(queries, weights);
    let s = score(&db, &db, &w, MetricParams::default()).unwrap();
    assert!((s - 1.0).abs() < 1e-12, "self-score must be 1, got {s}");
}
