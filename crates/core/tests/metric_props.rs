//! Metamorphic properties of the approximation-quality metric (Eq. 1):
//!
//! 1. **Weight-scale invariance** — multiplying every workload weight by
//!    the same positive constant leaves the score unchanged (weights are
//!    normalised to sum to 1).
//! 2. **Superset monotonicity** — growing the approximation set `S ⊆ S'`
//!    can never lower the score: every per-query answer over `S'` contains
//!    the answer over `S`.
//! 3. **Bounds** — every score lies in `[0, 1]`, for any subset and any
//!    frame size.
//!
//! Each property runs against randomly generated range/point workloads and
//! random row subsets, seeded through the proptest harness.
//!
//! A second family covers **living data** (incremental ingest through
//! [`Database::append_rows`]):
//!
//! 4. **Ingest equivalence** — scoring a subset against a database that
//!    grew incrementally is bit-identical to scoring it against a fresh
//!    database loaded with the final rows (the fingerprinted cardinality
//!    cache can never serve a stale `|q(T)|`).
//! 5. **Irrelevant-ingest invariance** — appending rows no workload query
//!    matches leaves every full count and the score bit-identical.
//! 6. **Ingest antitonicity** — growing the full database can only lower
//!    (or keep) the score of a fixed approximation set: `|q(T)|` is
//!    nondecreasing under appends, so every per-query cap is too.

use asqp_core::metric::{per_query_fractions, score, FullCounts, MetricParams};
use asqp_db::{sql, Database, Row, Schema, Value, ValueType, Workload};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const ROWS: i64 = 200;

/// `t(x, y)` with `x = 0..200` and `y = x mod 7`.
fn test_db() -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(
            "t",
            Schema::build(&[("x", ValueType::Int), ("y", ValueType::Int)]),
        )
        .unwrap();
    for i in 0..ROWS {
        t.push_row(&[Value::Int(i), Value::Int(i % 7)]).unwrap();
    }
    db
}

/// A random mix of range and point queries over `t`.
fn gen_queries(rng: &mut StdRng) -> Vec<asqp_db::Query> {
    let n = rng.random_range(2..7usize);
    (0..n)
        .map(|_| {
            let text = match rng.random_range(0..3u8) {
                0 => format!(
                    "SELECT t.x FROM t WHERE t.x < {}",
                    rng.random_range(0..ROWS + 50)
                ),
                1 => {
                    let a = rng.random_range(0..ROWS);
                    format!(
                        "SELECT t.x FROM t WHERE t.x >= {a} AND t.x < {}",
                        a + rng.random_range(1..80i64)
                    )
                }
                _ => format!(
                    "SELECT t.x FROM t WHERE t.y = {}",
                    rng.random_range(0..9i64)
                ),
            };
            sql::parse(&text).unwrap()
        })
        .collect()
}

fn gen_weights(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.random_range(0.05..5.0)).collect()
}

/// A random strict subset of row indices for table `t`.
fn gen_selection(rng: &mut StdRng) -> Vec<usize> {
    let keep = rng.random_range(0..=ROWS as usize);
    let mut idx: Vec<usize> = (0..ROWS as usize).collect();
    // Fisher–Yates prefix shuffle, then sort the kept prefix.
    for i in 0..keep {
        let j = rng.random_range(i..ROWS as usize);
        idx.swap(i, j);
    }
    let mut sel = idx[..keep].to_vec();
    sel.sort_unstable();
    sel
}

fn subset_of(db: &Database, rows: &[usize]) -> Database {
    let mut sel = BTreeMap::new();
    sel.insert("t".to_string(), rows.to_vec());
    db.subset(&sel).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: score(S; c·w) == score(S; w) for any scale c > 0.
    #[test]
    fn score_is_invariant_under_uniform_weight_scaling(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = test_db();
        let queries = gen_queries(&mut rng);
        let weights = gen_weights(&mut rng, queries.len());
        let scale = rng.random_range(0.01..100.0);
        let params = MetricParams::new(rng.random_range(1..120usize));
        let sub = subset_of(&db, &gen_selection(&mut rng));

        let base = Workload::weighted(queries.clone(), weights.clone());
        let scaled = Workload::weighted(queries, weights.iter().map(|w| w * scale).collect());
        let s1 = score(&db, &sub, &base, params).unwrap();
        let s2 = score(&db, &sub, &scaled, params).unwrap();
        prop_assert!(
            (s1 - s2).abs() < 1e-9,
            "weight scaling by {scale} changed the score: {s1} vs {s2}"
        );
    }

    /// Property 2: S ⊆ S' ⇒ score(S) ≤ score(S'), per query and in total.
    #[test]
    fn score_is_monotone_under_supersets(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50);
        let db = test_db();
        let queries = gen_queries(&mut rng);
        let weights = gen_weights(&mut rng, queries.len());
        let workload = Workload::weighted(queries, weights);
        let params = MetricParams::new(rng.random_range(1..120usize));
        let full = FullCounts::compute(&db, &workload).unwrap();

        // Build S, then S' = S ∪ extra rows.
        let small = gen_selection(&mut rng);
        let mut big = small.clone();
        for _ in 0..rng.random_range(1..80usize) {
            big.push(rng.random_range(0..ROWS as usize));
        }
        big.sort_unstable();
        big.dedup();

        let sub_small = subset_of(&db, &small);
        let sub_big = subset_of(&db, &big);
        let f_small = per_query_fractions(&sub_small, &workload, &full, params).unwrap();
        let f_big = per_query_fractions(&sub_big, &workload, &full, params).unwrap();
        for (i, (a, b)) in f_small.iter().zip(&f_big).enumerate() {
            prop_assert!(
                b >= &(a - 1e-12),
                "query {i}: fraction dropped from {a} to {b} under a superset"
            );
        }
        let s_small = score(&db, &sub_small, &workload, params).unwrap();
        let s_big = score(&db, &sub_big, &workload, params).unwrap();
        prop_assert!(s_big >= s_small - 1e-12, "superset lowered score: {s_small} -> {s_big}");
    }

    /// Property 3: 0 ≤ score ≤ 1 and every per-query fraction ∈ [0, 1].
    #[test]
    fn score_and_fractions_are_bounded(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0);
        let db = test_db();
        let queries = gen_queries(&mut rng);
        let weights = gen_weights(&mut rng, queries.len());
        let workload = Workload::weighted(queries, weights);
        let params = MetricParams::new(rng.random_range(1..500usize));
        let sub = subset_of(&db, &gen_selection(&mut rng));

        let s = score(&db, &sub, &workload, params).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "score out of bounds: {s}");

        let full = FullCounts::compute(&db, &workload).unwrap();
        for (i, f) in per_query_fractions(&sub, &workload, &full, params)
            .unwrap()
            .iter()
            .enumerate()
        {
            prop_assert!((0.0..=1.0).contains(f), "fraction {i} out of bounds: {f}");
        }
    }
}

/// Random rows inside the query vocabulary: `x` overlaps the generated
/// range bounds and `y` the point-query domain.
fn gen_matching_rows(rng: &mut StdRng, n: usize) -> Vec<Row> {
    (0..n)
        .map(|_| {
            let x = rng.random_range(0..ROWS + 40);
            vec![Value::Int(x), Value::Int(x % 7)]
        })
        .collect()
}

/// Rows no generated query can match: `x` far above every range bound
/// (bounds stay below `ROWS + 130`) and `y` outside the `0..9` domain.
fn gen_irrelevant_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| vec![Value::Int(100_000 + i as i64), Value::Int(77)])
        .collect()
}

/// A fresh database holding exactly `rows` — the from-scratch oracle the
/// incrementally grown database is scored against.
fn db_from_rows(rows: &[Row]) -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(
            "t",
            Schema::build(&[("x", ValueType::Int), ("y", ValueType::Int)]),
        )
        .unwrap();
    for r in rows {
        t.push_row(r).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 4: score over an incrementally grown database equals the
    /// score over a from-scratch database with the same final rows — to
    /// the bit. The live database's cardinality cache is warmed *before*
    /// the append, so a stale `|q(T)|` would be caught here.
    #[test]
    fn incremental_ingest_rescores_like_from_scratch(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1A);
        let mut live = test_db();
        let queries = gen_queries(&mut rng);
        let weights = gen_weights(&mut rng, queries.len());
        let workload = Workload::weighted(queries, weights);
        let params = MetricParams::new(rng.random_range(1..120usize));
        let sub = subset_of(&live, &gen_selection(&mut rng));

        // Warm the fingerprinted cardinality cache on the pre-append data.
        let warm = FullCounts::compute(&live, &workload).unwrap();
        prop_assert_eq!(warm.counts.len(), workload.len());

        let n_matching = rng.random_range(1..60usize);
        let mut batch = gen_matching_rows(&mut rng, n_matching);
        batch.extend(gen_irrelevant_rows(rng.random_range(0..20usize)));
        let mut final_rows: Vec<Row> = (0..ROWS).map(|i| vec![Value::Int(i), Value::Int(i % 7)]).collect();
        final_rows.extend(batch.iter().cloned());
        live.append_rows("t", &batch).unwrap();

        let fresh = db_from_rows(&final_rows);
        let full_live = FullCounts::compute(&live, &workload).unwrap();
        let full_fresh = FullCounts::compute(&fresh, &workload).unwrap();
        prop_assert_eq!(&full_live.counts, &full_fresh.counts, "stale |q(T)| served after ingest");

        let s_live = score(&live, &sub, &workload, params).unwrap();
        let s_fresh = score(&fresh, &sub, &workload, params).unwrap();
        prop_assert_eq!(
            s_live.to_bits(), s_fresh.to_bits(),
            "incremental score {} != from-scratch score {}", s_live, s_fresh
        );
    }

    /// Property 5: appending rows outside every query's reach changes
    /// neither the full counts nor the score, bit for bit.
    #[test]
    fn irrelevant_ingest_leaves_score_bit_identical(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2B);
        let mut live = test_db();
        let queries = gen_queries(&mut rng);
        let weights = gen_weights(&mut rng, queries.len());
        let workload = Workload::weighted(queries, weights);
        let params = MetricParams::new(rng.random_range(1..120usize));
        let sub = subset_of(&live, &gen_selection(&mut rng));

        let before_counts = FullCounts::compute(&live, &workload).unwrap();
        let s_before = score(&live, &sub, &workload, params).unwrap();

        live.append_rows("t", &gen_irrelevant_rows(rng.random_range(1..50usize))).unwrap();

        let after_counts = FullCounts::compute(&live, &workload).unwrap();
        prop_assert_eq!(&before_counts.counts, &after_counts.counts);
        let s_after = score(&live, &sub, &workload, params).unwrap();
        prop_assert_eq!(s_before.to_bits(), s_after.to_bits());
    }

    /// Property 6: ingest is antitone for a fixed subset — new matching
    /// rows can only grow `|q(T)|`, so the score never rises.
    #[test]
    fn ingest_never_raises_the_score_of_a_fixed_subset(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3C);
        let mut live = test_db();
        let queries = gen_queries(&mut rng);
        let weights = gen_weights(&mut rng, queries.len());
        let workload = Workload::weighted(queries, weights);
        let params = MetricParams::new(rng.random_range(1..120usize));
        let sub = subset_of(&live, &gen_selection(&mut rng));

        let s_before = score(&live, &sub, &workload, params).unwrap();
        let n_matching = rng.random_range(1..80usize);
        live.append_rows("t", &gen_matching_rows(&mut rng, n_matching)).unwrap();
        let s_after = score(&live, &sub, &workload, params).unwrap();
        prop_assert!(
            s_after <= s_before + 1e-12,
            "ingest raised a stale subset's score: {} -> {}", s_before, s_after
        );
    }
}

/// The full database is always a perfect approximation of itself — the
/// fixed point the metamorphic chain converges to.
#[test]
fn full_database_scores_exactly_one() {
    let db = test_db();
    let mut rng = StdRng::seed_from_u64(7);
    let queries = gen_queries(&mut rng);
    let weights = gen_weights(&mut rng, queries.len());
    let w = Workload::weighted(queries, weights);
    let s = score(&db, &db, &w, MetricParams::default()).unwrap();
    assert!((s - 1.0).abs() < 1e-12, "self-score must be 1, got {s}");
}
