//! The ANAQP problem definition (paper §3): exact solvers for small
//! instances and the max-k-vertex-cover reduction that establishes
//! NP-hardness.

use crate::metric::{score_with_counts, FullCounts, MetricParams};
use asqp_db::{
    ColumnDef, Database, DbResult, Expr, Query, Schema, Table, Value, ValueType, Workload,
};
use std::collections::BTreeMap;

/// A fully-specified ANAQP instance: `(T, Q, w, k, F)`.
#[derive(Debug, Clone)]
pub struct AnaqpInstance {
    pub db: Database,
    pub workload: Workload,
    /// Memory budget: total tuples allowed across all table subsets.
    pub k: usize,
    pub params: MetricParams,
}

/// A candidate solution: row-id selections per table.
pub type Selection = BTreeMap<String, Vec<usize>>;

impl AnaqpInstance {
    pub fn new(db: Database, workload: Workload, k: usize, frame_size: usize) -> Self {
        AnaqpInstance {
            db,
            workload,
            k,
            params: MetricParams::new(frame_size),
        }
    }

    /// Total tuples in a selection.
    pub fn selection_size(sel: &Selection) -> usize {
        sel.values().map(Vec::len).sum()
    }

    /// Score a selection under this instance's metric.
    pub fn evaluate(&self, sel: &Selection) -> DbResult<f64> {
        let sub = self.db.subset(sel)?;
        let full = FullCounts::compute(&self.db, &self.workload)?;
        score_with_counts(&sub, &self.workload, &full, self.params)
    }

    /// Exact solver by exhaustive enumeration over **single-table**
    /// instances. Exponential (`C(n, k)`); intended only for tiny instances
    /// in tests and for validating approximate solvers.
    pub fn solve_exact_single_table(&self) -> DbResult<(Selection, f64)> {
        let tables: Vec<&Table> = self.db.tables().collect();
        assert_eq!(
            tables.len(),
            1,
            "exact solver is defined for single-table instances"
        );
        let table = tables[0];
        let n = table.row_count();
        let k = self.k.min(n);
        let full = FullCounts::compute(&self.db, &self.workload)?;

        let mut best: (Selection, f64) = (BTreeMap::new(), -1.0);
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            let mut sel = BTreeMap::new();
            sel.insert(table.name().to_string(), combo.clone());
            let sub = self.db.subset(&sel)?;
            let s = score_with_counts(&sub, &self.workload, &full, self.params)?;
            if s > best.1 {
                best = (sel, s);
            }
            // Next k-combination of 0..n in lexicographic order.
            if k == 0 {
                break;
            }
            let mut i = k as isize - 1;
            while i >= 0 && combo[i as usize] == n - k + i as usize {
                i -= 1;
            }
            if i < 0 {
                break;
            }
            combo[i as usize] += 1;
            for j in (i as usize + 1)..k {
                combo[j] = combo[j - 1] + 1;
            }
        }
        Ok(best)
    }

    /// Greedy marginal-gain solver (the classic (1−1/e) heuristic for
    /// coverage-like objectives). Used as a reference point and by the GRE
    /// baseline. `max_evals` caps the number of candidate scorings — the
    /// deterministic analogue of the paper's 48-hour wall-clock cap on GRE,
    /// chosen so repeated runs reproduce byte-identical selections.
    pub fn solve_greedy(&self, max_evals: usize) -> DbResult<(Selection, f64)> {
        let mut evals = 0usize;
        let full = FullCounts::compute(&self.db, &self.workload)?;
        let mut sel: Selection = BTreeMap::new();
        let mut current = {
            let sub = self.db.subset(&sel)?;
            score_with_counts(&sub, &self.workload, &full, self.params)?
        };
        let mut exhausted = false;
        while !exhausted && Self::selection_size(&sel) < self.k {
            let mut best: Option<(String, usize, f64)> = None;
            'scan: for table in self.db.tables() {
                let chosen = sel.get(table.name()).cloned().unwrap_or_default();
                for rid in 0..table.row_count() {
                    if chosen.contains(&rid) {
                        continue;
                    }
                    if evals >= max_evals {
                        // Budget gone mid-scan: still commit the best
                        // candidate seen so far (a partial greedy set, as
                        // the paper reports for GRE), then stop.
                        exhausted = true;
                        break 'scan;
                    }
                    evals += 1;
                    let mut cand = sel.clone();
                    cand.entry(table.name().to_string()).or_default().push(rid);
                    let sub = self.db.subset(&cand)?;
                    let s = score_with_counts(&sub, &self.workload, &full, self.params)?;
                    if best.as_ref().is_none_or(|b| s > b.2) {
                        best = Some((table.name().to_string(), rid, s));
                    }
                }
            }
            match best {
                Some((t, rid, s)) if s > current => {
                    sel.entry(t).or_default().push(rid);
                    current = s;
                }
                Some((t, rid, s)) => {
                    // No strict gain: still consume budget to avoid looping.
                    sel.entry(t).or_default().push(rid);
                    current = s;
                }
                None => break,
            }
        }
        Ok((sel, current))
    }
}

/// A weighted undirected graph instance of **max-k-vertex-cover**: choose
/// `k` vertices maximising the total weight of edges with at least one
/// endpoint chosen.
#[derive(Debug, Clone)]
pub struct MaxKVertexCover {
    pub vertices: usize,
    /// `(u, v, weight)` edges.
    pub edges: Vec<(usize, usize, f64)>,
    pub k: usize,
}

impl MaxKVertexCover {
    /// The paper's NP-hardness reduction (§3): vertices become tuples of a
    /// single table, each edge becomes a query returning exactly its two
    /// endpoint tuples, edge weights become query weights, and `F = 1` so a
    /// covered edge needs only one endpoint in the subset.
    pub fn to_anaqp(&self) -> AnaqpInstance {
        let mut db = Database::new();
        let schema = Schema::new(vec![ColumnDef::new("vid", ValueType::Int).not_null()])
            .expect("valid schema");
        let t = db.create_table("vertices", schema).expect("fresh database");
        for v in 0..self.vertices {
            t.push_row(&[Value::Int(v as i64)]).expect("valid row");
        }
        let queries: Vec<Query> = self
            .edges
            .iter()
            .map(|&(u, v, _)| {
                Query::builder()
                    .select_col("vertices", "vid")
                    .from("vertices")
                    .filter(Expr::In {
                        expr: Box::new(Expr::col("vertices", "vid")),
                        list: vec![Value::Int(u as i64), Value::Int(v as i64)],
                        negated: false,
                    })
                    .build()
            })
            .collect();
        let weights: Vec<f64> = self.edges.iter().map(|&(_, _, w)| w).collect();
        AnaqpInstance::new(db, Workload::weighted(queries, weights), self.k, 1)
    }

    /// Brute-force max-k-vertex-cover (for validating the reduction).
    pub fn solve_exact(&self) -> (Vec<usize>, f64) {
        let n = self.vertices;
        let k = self.k.min(n);
        let total_w: f64 = self.edges.iter().map(|e| e.2).sum();
        let mut best = (Vec::new(), -1.0);
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            let covered: f64 = self
                .edges
                .iter()
                .filter(|&&(u, v, _)| combo.contains(&u) || combo.contains(&v))
                .map(|e| e.2)
                .sum();
            let frac = if total_w > 0.0 {
                covered / total_w
            } else {
                1.0
            };
            if frac > best.1 {
                best = (combo.clone(), frac);
            }
            if k == 0 {
                break;
            }
            let mut i = k as isize - 1;
            while i >= 0 && combo[i as usize] == n - k + i as usize {
                i -= 1;
            }
            if i < 0 {
                break;
            }
            combo[i as usize] += 1;
            for j in (i as usize + 1)..k {
                combo[j] = combo[j - 1] + 1;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_db::sql::parse;

    fn tiny_instance() -> AnaqpInstance {
        let mut db = Database::new();
        let t = db
            .create_table("t", Schema::build(&[("x", ValueType::Int)]))
            .unwrap();
        for i in 0..8 {
            t.push_row(&[Value::Int(i)]).unwrap();
        }
        let w = Workload::uniform(vec![
            parse("SELECT t.x FROM t WHERE t.x < 2").unwrap(),
            parse("SELECT t.x FROM t WHERE t.x IN (5, 6)").unwrap(),
            parse("SELECT t.x FROM t WHERE t.x = 7").unwrap(),
        ]);
        AnaqpInstance::new(db, w, 3, 1)
    }

    #[test]
    fn exact_solver_finds_optimum() {
        let inst = tiny_instance();
        let (sel, score) = inst.solve_exact_single_table().unwrap();
        // With F=1, one row per query suffices: e.g. {0 or 1, 5 or 6, 7}.
        assert!((score - 1.0).abs() < 1e-12, "score = {score}");
        let rows = &sel["t"];
        assert_eq!(rows.len(), 3);
        assert!(rows.contains(&7));
        assert!(rows.iter().any(|&r| r == 0 || r == 1));
        assert!(rows.iter().any(|&r| r == 5 || r == 6));
    }

    #[test]
    fn greedy_matches_exact_on_modular_instance() {
        let inst = tiny_instance();
        let (_, exact) = inst.solve_exact_single_table().unwrap();
        let (gsel, gscore) = inst.solve_greedy(usize::MAX).unwrap();
        assert!(
            (gscore - exact).abs() < 1e-9,
            "greedy {gscore} vs exact {exact}"
        );
        assert!(AnaqpInstance::selection_size(&gsel) <= inst.k);
    }

    #[test]
    fn budget_constraint_binds() {
        let mut inst = tiny_instance();
        inst.k = 1;
        let (sel, score) = inst.solve_exact_single_table().unwrap();
        assert_eq!(AnaqpInstance::selection_size(&sel), 1);
        // One row can perfectly answer at most one of the three queries.
        assert!(score < 0.5);
    }

    #[test]
    fn reduction_preserves_optimum() {
        // Path graph 0-1-2-3 with k=1: vertex 1 or 2 covers 2 of 3 edges.
        let g = MaxKVertexCover {
            vertices: 4,
            edges: vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)],
            k: 1,
        };
        let (cover, gfrac) = g.solve_exact();
        assert!((gfrac - 2.0 / 3.0).abs() < 1e-12);
        assert!(cover == vec![1] || cover == vec![2]);

        let inst = g.to_anaqp();
        let (sel, ascore) = inst.solve_exact_single_table().unwrap();
        assert!(
            (ascore - gfrac).abs() < 1e-9,
            "ANAQP optimum {ascore} must equal cover optimum {gfrac}"
        );
        let chosen = &sel["vertices"];
        assert!(chosen == &vec![1] || chosen == &vec![2]);
    }

    #[test]
    fn reduction_with_weights() {
        // Star with a heavy edge: covering the heavy edge dominates.
        let g = MaxKVertexCover {
            vertices: 4,
            edges: vec![(0, 1, 10.0), (0, 2, 1.0), (1, 3, 1.0)],
            k: 1,
        };
        let (_, gfrac) = g.solve_exact();
        let inst = g.to_anaqp();
        let (_, ascore) = inst.solve_exact_single_table().unwrap();
        assert!((ascore - gfrac).abs() < 1e-9);
        assert!((gfrac - 11.0 / 12.0).abs() < 1e-12);
    }
}
