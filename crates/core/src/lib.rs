//! # asqp-core — ASQP-RL: Learning Approximation Sets for Exploratory Queries
//!
//! The paper's primary contribution, end to end:
//!
//! * [`metric`] — the approximation-quality score (Eq. 1)
//! * [`anaqp`] — the ANAQP problem, exact/greedy solvers, and the
//!   max-k-vertex-cover NP-hardness reduction (§3)
//! * [`mod@preprocess`] — query relaxation, representative selection, lineage
//!   subsampling and action-space construction (§4.2, Algorithm 1)
//! * [`envs`] — the GSL / DRP / hybrid tabular RL environments with
//!   incremental Δscore rewards (§5.2)
//! * [`model`] — training (Algorithm 1), inference (Algorithm 2), and the
//!   full / ASQP-Light / adaptive configurations (§4.5)
//! * [`estimator`] — the answerability estimator (§4.4)
//! * [`session`] — query routing, drift detection and fine-tuning (§4.4)
//! * [`cow`] — copy-on-write approximation-set sharing between clustered
//!   tenants, with private forking on drift-triggered fine-tune
//! * [`aggregates`] — scale-corrected approximate aggregates + relative
//!   error (§6.4)
//! * [`workload_synth`] — the unknown-workload mode (§4.5)
//! * [`diversity`] — pairwise-Jaccard answer diversity (§6.2)
//!
//! ## Quickstart
//!
//! ```
//! use asqp_core::{train, AsqpConfig};
//! use asqp_data::{imdb, Scale};
//!
//! let db = imdb::generate(Scale::Tiny, 1);
//! let workload = imdb::workload(12, 1);
//! let mut cfg = AsqpConfig::full(60, 20);
//! cfg.iterations = 5; // doc-test budget
//! cfg.trainer.num_workers = 1;
//! let model = train(&db, &workload, &cfg).unwrap();
//! let subset = model.materialize(&db, None).unwrap();
//! assert!(subset.total_rows() > 0);
//! ```

pub mod aggregates;
pub mod anaqp;
pub mod cow;
pub mod diversity;
pub mod envs;
pub mod estimator;
pub mod metric;
pub mod model;
pub mod preprocess;
pub mod session;
pub mod workload_synth;

pub use aggregates::{
    approximate_aggregate, operator_class, relative_error, result_relative_error,
};
pub use anaqp::{AnaqpInstance, MaxKVertexCover, Selection};
pub use cow::{CowSession, CowStats};
pub use diversity::{result_diversity, workload_diversity};
pub use envs::{AsqpEnv, CoverageTracker, EnvConfig, EnvKind};
pub use estimator::{AnswerabilityEstimator, Prediction};
pub use metric::{per_query_fractions, score, score_with_counts, FullCounts, MetricParams};
pub use model::{fine_tune, train, AsqpConfig, ModelSnapshot, TrainedModel};
pub use preprocess::{
    preprocess, relax_query, Action, ActionSpace, PreprocessConfig, Preprocessed,
};
pub use session::{AnswerSource, RoutePlan, Session, SessionConfig, SessionState, SessionStats};
pub use workload_synth::{detect_joins, synthesize_workload, JoinEdge};
