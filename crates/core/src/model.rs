//! Training (Algorithm 1) and inference (Algorithm 2): the top-level
//! ASQP-RL entry points, with the paper's three operating points — the
//! full configuration, **ASQP-Light** (§4.5: fewer representatives, higher
//! learning rate, tighter early stopping, ~½ the setup time for ~10% less
//! quality) and the **adaptive** interpolation between them.

use crate::envs::{AsqpEnv, EnvConfig, EnvKind};
use crate::metric::MetricParams;
use crate::preprocess::{preprocess, ActionSpace, PreprocessConfig, Preprocessed};
use asqp_db::{Database, DbResult, Workload};
use asqp_embed::Embedder;
use asqp_rl::{ActorCritic, AgentKind, IterationStats, Trainer, TrainerConfig};
use asqp_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Full ASQP-RL configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsqpConfig {
    /// Memory budget `k`: total tuples in the approximation set.
    pub k: usize,
    /// Frame size `F` (Eq. 1).
    pub frame_size: usize,
    pub preprocess: PreprocessConfig,
    pub env_kind: EnvKind,
    /// Queries per training batch (per episode).
    pub batch_size: usize,
    pub diversity_coef: f32,
    pub drp_pairs: usize,
    pub trainer: TrainerConfig,
    /// Max training iterations (each = parallel rollouts + updates).
    pub iterations: usize,
    /// Early stopping: halt after this many iterations without reward
    /// improvement (Algorithm 1 line 11).
    pub early_stop_patience: usize,
    pub seed: u64,
}

impl AsqpConfig {
    /// The paper's default configuration (§6.1 hyper-parameters).
    pub fn full(k: usize, frame_size: usize) -> Self {
        AsqpConfig {
            k,
            frame_size,
            preprocess: PreprocessConfig {
                frame_size,
                ..PreprocessConfig::default()
            },
            env_kind: EnvKind::Gsl,
            batch_size: 8,
            diversity_coef: 0.05,
            drp_pairs: 32,
            trainer: TrainerConfig {
                agent: AgentKind::Ppo,
                // Paper trains ~1h on a GPU server with lr 5e-5; at our
                // network/action-space scale a moderately higher lr reaches
                // the same relative quality in seconds (swept in Fig. 11).
                learning_rate: 5e-3,
                kl_coef: 0.2,
                entropy_coef: 0.001,
                num_workers: 4,
                steps_per_worker: 128,
                minibatch_size: 64,
                update_epochs: 4,
                hidden: vec![128, 64],
                ..TrainerConfig::default()
            },
            iterations: 60,
            early_stop_patience: 15,
            seed: 0,
        }
    }

    /// ASQP-Light (§4.5): half the representatives, a higher learning rate
    /// and earlier stopping — a fraction of the setup time for a ~10%
    /// quality drop (the paper's Light reduces the executed workload to 25%
    /// and raises the learning rate by two orders; at this scale those
    /// exact factors collapse quality, so Light keeps the same *kind* of
    /// cuts at gentler ratios — see EXPERIMENTS.md).
    pub fn light(k: usize, frame_size: usize) -> Self {
        let mut cfg = AsqpConfig::full(k, frame_size);
        cfg.preprocess.n_representatives = (cfg.preprocess.n_representatives / 2).max(4);
        cfg.preprocess.per_query_cap /= 2;
        cfg.trainer.learning_rate *= 4.0;
        cfg.iterations /= 2;
        cfg.early_stop_patience = 5;
        cfg
    }

    /// Adaptive configuration (§4.5): interpolate between Light (0.0) and
    /// full (1.0) by the fraction of the time budget the user grants.
    pub fn adaptive(k: usize, frame_size: usize, budget_fraction: f64) -> Self {
        let t = budget_fraction.clamp(0.0, 1.0);
        let full = AsqpConfig::full(k, frame_size);
        let light = AsqpConfig::light(k, frame_size);
        let lerp = |a: f64, b: f64| a + (b - a) * t;
        let mut cfg = full.clone();
        cfg.preprocess.n_representatives = lerp(
            light.preprocess.n_representatives as f64,
            full.preprocess.n_representatives as f64,
        )
        .round() as usize;
        cfg.preprocess.per_query_cap = lerp(
            light.preprocess.per_query_cap as f64,
            full.preprocess.per_query_cap as f64,
        )
        .round() as usize;
        cfg.trainer.learning_rate = lerp(
            light.trainer.learning_rate as f64,
            full.trainer.learning_rate as f64,
        ) as f32;
        cfg.iterations = lerp(light.iterations as f64, full.iterations as f64).round() as usize;
        cfg.early_stop_patience = lerp(
            light.early_stop_patience as f64,
            full.early_stop_patience as f64,
        )
        .round() as usize;
        cfg
    }

    /// Apply a seed to every seeded component consistently.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.preprocess.seed = seed;
        self.trainer.seed = seed;
        self
    }

    fn env_config(&self) -> EnvConfig {
        EnvConfig {
            kind: self.env_kind,
            k: self.k,
            batch_size: self.batch_size,
            diversity_coef: self.diversity_coef,
            drp_pairs: self.drp_pairs,
            seed: self.seed,
        }
    }

    pub fn metric_params(&self) -> MetricParams {
        MetricParams::new(self.frame_size)
    }
}

/// A trained ASQP-RL model: policy + action space + embeddings.
#[derive(Clone)]
pub struct TrainedModel {
    pub policy: ActorCritic,
    pub space: Arc<ActionSpace>,
    pub embedder: Embedder,
    /// Embeddings of the original training queries (estimator input).
    pub train_embeddings: Vec<Vec<f32>>,
    pub train_workload: Workload,
    pub config: AsqpConfig,
    pub history: Vec<IterationStats>,
}

impl TrainedModel {
    /// Algorithm 2: greedily roll out the policy until `req_tuples` (default
    /// `config.k`) tuples are gathered; returns chosen action indices.
    pub fn select_actions(&self, req_tuples: Option<usize>) -> Vec<usize> {
        if self.space.is_empty() {
            return Vec::new();
        }
        let mut env = AsqpEnv::new(Arc::clone(&self.space), self.config.env_config());
        env.greedy_rollout(&self.policy, req_tuples)
    }

    /// The approximation set as per-table row selections.
    pub fn selection(&self, req_tuples: Option<usize>) -> BTreeMap<String, Vec<usize>> {
        let chosen = self.select_actions(req_tuples);
        self.space.materialize_selection(&chosen)
    }

    /// Materialise the approximation set as a queryable sub-database.
    pub fn materialize(&self, db: &Database, req_tuples: Option<usize>) -> DbResult<Database> {
        db.subset(&self.selection(req_tuples))
    }

    /// Mean episode reward of the last training iteration (monitoring).
    pub fn final_reward(&self) -> f32 {
        self.history
            .last()
            .map(|s| s.mean_episode_reward)
            .unwrap_or(0.0)
    }
}

/// A serialisable snapshot of a [`TrainedModel`] — train once, persist, and
/// reload into later sessions without re-running Algorithm 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSnapshot {
    pub policy: ActorCritic,
    pub space: ActionSpace,
    pub embedder: Embedder,
    pub train_embeddings: Vec<Vec<f32>>,
    pub train_workload: Workload,
    pub config: AsqpConfig,
    pub history: Vec<IterationStats>,
}

impl TrainedModel {
    /// Snapshot for persistence (serialise with any serde format).
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot {
            policy: self.policy.clone(),
            space: (*self.space).clone(),
            embedder: self.embedder.clone(),
            train_embeddings: self.train_embeddings.clone(),
            train_workload: self.train_workload.clone(),
            config: self.config.clone(),
            history: self.history.clone(),
        }
    }

    /// Rebuild a model from a snapshot.
    pub fn from_snapshot(snapshot: ModelSnapshot) -> TrainedModel {
        TrainedModel {
            policy: snapshot.policy,
            space: Arc::new(snapshot.space),
            embedder: snapshot.embedder,
            train_embeddings: snapshot.train_embeddings,
            train_workload: snapshot.train_workload,
            config: snapshot.config,
            history: snapshot.history,
        }
    }
}

/// Train ASQP-RL on a database and workload (Algorithm 1).
pub fn train(db: &Database, workload: &Workload, config: &AsqpConfig) -> DbResult<TrainedModel> {
    let mut cfg = config.clone();
    cfg.preprocess.frame_size = cfg.frame_size;

    let _train_span = telemetry::span("train");
    let pre_span = telemetry::span("train.preprocess");
    let Preprocessed {
        action_space,
        embedder,
        train_embeddings,
    } = preprocess(db, workload, &cfg.preprocess)?;
    drop(pre_span);
    let space = Arc::new(action_space);

    if space.is_empty() {
        // Degenerate: nothing to learn (empty workload / all-empty results).
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        use rand::SeedableRng;
        let policy = ActorCritic::new(2, 1, &cfg.trainer.hidden, &mut rng);
        return Ok(TrainedModel {
            policy,
            space,
            embedder,
            train_embeddings,
            train_workload: workload.clone(),
            config: cfg,
            history: Vec::new(),
        });
    }

    let env = AsqpEnv::new(Arc::clone(&space), cfg.env_config());
    use asqp_rl::Environment;
    let mut trainer = Trainer::new(cfg.trainer.clone(), env.state_dim(), env.action_count());

    let rl_span = telemetry::span("train.rl");
    let mut history = Vec::with_capacity(cfg.iterations);
    let mut best = f32::NEG_INFINITY;
    let mut since_best = 0usize;
    for _ in 0..cfg.iterations {
        let stats = trainer.train_iteration(&env);
        let reward = stats.mean_episode_reward;
        history.push(stats);
        if reward > best + 1e-4 {
            best = reward;
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= cfg.early_stop_patience {
                telemetry::counter("train.early_stops", 1);
                break; // Algorithm 1: early stopping on plateau
            }
        }
    }
    drop(rl_span);
    telemetry::counter("train.iterations_run", history.len() as u64);

    Ok(TrainedModel {
        policy: trainer.policy.clone(),
        space,
        embedder,
        train_embeddings,
        train_workload: workload.clone(),
        config: cfg,
        history,
    })
}

/// Fine-tune an existing model on additional queries (drift response, §4.4):
/// the drift queries are merged into the workload with boosted weight and a
/// shortened training run rebuilds the model around them.
pub fn fine_tune(
    db: &Database,
    model: &TrainedModel,
    drift_queries: &[asqp_db::Query],
    boost: f64,
) -> DbResult<TrainedModel> {
    let drift = Workload::weighted(
        drift_queries.to_vec(),
        vec![boost.max(1e-9); drift_queries.len()],
    );
    let merged = model.train_workload.merge(&drift);
    let mut cfg = model.config.clone();
    cfg.iterations = (cfg.iterations / 2).max(5);
    cfg.early_stop_patience = (cfg.early_stop_patience / 2).max(3);
    train(db, &merged, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{score, MetricParams};
    use asqp_data::{imdb, Scale};

    fn quick_config() -> AsqpConfig {
        let mut cfg = AsqpConfig::full(60, 20);
        cfg.preprocess.n_representatives = 6;
        cfg.preprocess.max_actions = 64;
        cfg.preprocess.per_query_cap = 40;
        cfg.trainer.num_workers = 2;
        cfg.trainer.steps_per_worker = 64;
        cfg.trainer.hidden = vec![32];
        cfg.iterations = 8;
        cfg
    }

    #[test]
    fn train_produces_usable_model() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(12, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        assert!(!model.history.is_empty());

        let sel = model.selection(None);
        let total: usize = sel.values().map(Vec::len).sum();
        assert!(total > 0, "selection must not be empty");
        assert!(total <= 60 + 10, "budget roughly respected: {total}");

        let sub = model.materialize(&db, None).unwrap();
        let s = score(&db, &sub, &w, MetricParams::new(20)).unwrap();
        assert!(s > 0.0, "trained subset must answer part of the workload");
    }

    #[test]
    fn trained_beats_empty_and_reward_improves_vs_start() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(12, 2);
        let model = train(&db, &w, &quick_config()).unwrap();
        let sub = model.materialize(&db, None).unwrap();
        let s = score(&db, &sub, &w, MetricParams::new(20)).unwrap();
        let empty = db.subset(&BTreeMap::new()).unwrap();
        let s0 = score(&db, &empty, &w, MetricParams::new(20)).unwrap();
        assert!(s > s0, "trained {s} must beat empty {s0}");
    }

    #[test]
    fn req_size_controls_subset_size() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(8, 3);
        let model = train(&db, &w, &quick_config()).unwrap();
        let small: usize = model.selection(Some(10)).values().map(Vec::len).sum();
        let large: usize = model.selection(Some(50)).values().map(Vec::len).sum();
        assert!(
            small <= large,
            "req_size must scale the set: {small} vs {large}"
        );
        assert!(small <= 10 + 5);
    }

    #[test]
    fn light_config_is_cheaper() {
        let full = AsqpConfig::full(1000, 50);
        let light = AsqpConfig::light(1000, 50);
        assert!(light.preprocess.n_representatives < full.preprocess.n_representatives);
        assert!(light.trainer.learning_rate > full.trainer.learning_rate);
        assert!(light.iterations < full.iterations);
    }

    #[test]
    fn adaptive_interpolates() {
        let a0 = AsqpConfig::adaptive(1000, 50, 0.0);
        let a1 = AsqpConfig::adaptive(1000, 50, 1.0);
        let mid = AsqpConfig::adaptive(1000, 50, 0.5);
        assert_eq!(
            a0.preprocess.n_representatives,
            AsqpConfig::light(1000, 50).preprocess.n_representatives
        );
        assert_eq!(
            a1.preprocess.n_representatives,
            AsqpConfig::full(1000, 50).preprocess.n_representatives
        );
        assert!(mid.iterations > a0.iterations && mid.iterations < a1.iterations);
    }

    #[test]
    fn empty_workload_degenerates_gracefully() {
        let db = imdb::generate(Scale::Tiny, 1);
        let model = train(&db, &Workload::uniform(vec![]), &quick_config()).unwrap();
        assert!(model.selection(None).is_empty());
        assert!(model.materialize(&db, None).unwrap().total_rows() == 0);
    }

    #[test]
    fn fine_tune_improves_on_drift_queries() {
        let db = imdb::generate(Scale::Tiny, 1);
        let train_w = imdb::workload(10, 4);
        let model = train(&db, &train_w, &quick_config()).unwrap();

        // Drift: queries from a different seed (different predicates).
        let drift = imdb::workload(20, 99).queries[12..16].to_vec();
        let tuned = fine_tune(&db, &model, &drift, 0.5).unwrap();
        let drift_w = Workload::uniform(drift);
        let params = MetricParams::new(20);
        let before = score(
            &db,
            &model.materialize(&db, None).unwrap(),
            &drift_w,
            params,
        )
        .unwrap();
        let after = score(
            &db,
            &tuned.materialize(&db, None).unwrap(),
            &drift_w,
            params,
        )
        .unwrap();
        assert!(
            after >= before - 0.05,
            "fine-tuning must not regress on drift queries: {before} -> {after}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(8, 5);
        let cfg = quick_config().with_seed(11);
        let a = train(&db, &w, &cfg).unwrap().selection(None);
        let b = train(&db, &w, &cfg).unwrap().selection(None);
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_roundtrip_preserves_selection() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(8, 6);
        let model = train(&db, &w, &quick_config()).unwrap();
        let json = serde_json::to_string(&model.snapshot()).unwrap();
        let restored = TrainedModel::from_snapshot(serde_json::from_str(&json).unwrap());
        assert_eq!(model.selection(None), restored.selection(None));
        assert_eq!(model.train_workload.len(), restored.train_workload.len());
    }
}
