//! The tabular RL environments (paper §5.2): **GSL** (gradual-set-learning,
//! the production environment), **DRP** (drop-one) and the **DRP+GSL**
//! hybrid, all over the pre-processed [`ActionSpace`].
//!
//! All three share one action encoding — indices `0..|A|` select an action
//! from the space, index `|A|` is the DRP no-op — and one observation
//! layout: the selected-action indicator vector plus a budget-fraction and
//! a phase flag. Rewards are Δscore (Eq. 1) over the episode's query batch,
//! computed incrementally from the pre-computed coverage table rather than
//! by re-executing queries (DESIGN.md §5.1).

use crate::preprocess::ActionSpace;
use asqp_rl::{Environment, Transition};
use rand::rngs::SmallRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which environment shape to train in (the Fig. 3 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnvKind {
    /// Start empty, add actions until the tuple budget is reached.
    Gsl,
    /// Start from a random full set; swap (remove, add) pairs.
    Drp,
    /// GSL build-up followed by DRP refinement in the same episode.
    DrpGsl,
}

/// Environment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnvConfig {
    pub kind: EnvKind,
    /// Tuple budget `k` for the approximation set.
    pub k: usize,
    /// Representative queries sampled per episode (training batches, §4.3).
    pub batch_size: usize,
    /// Bonus for covering a query for the first time (the reward-side
    /// diversity regulariser, §5.1 "further improvements").
    pub diversity_coef: f32,
    /// Number of (remove, add) pairs in a DRP episode / refinement phase.
    pub drp_pairs: usize,
    pub seed: u64,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            kind: EnvKind::Gsl,
            k: 1000,
            batch_size: 8,
            diversity_coef: 0.05,
            drp_pairs: 32,
            seed: 0,
        }
    }
}

/// Incremental scorer at **tuple granularity**: a representative result row
/// counts as answered once *all* its lineage tuples are selected, no matter
/// which actions supplied them — so tuples shared across queries (the Zipf
/// head) earn their full credit. Converts coverage changes into Δscore over
/// the current query batch in O(affected rows).
#[derive(Debug, Clone)]
pub struct CoverageTracker {
    space: Arc<ActionSpace>,
    /// Selection multiplicity per tuple (several chosen actions may share
    /// a tuple; it stays selected until all of them are retracted).
    tuple_sel: Vec<u16>,
    /// Per result row: how many required tuples are still unselected.
    row_missing: Vec<u32>,
    /// Per representative: completed result rows.
    covered: Vec<u32>,
    /// Distinct selected tuples (the memory budget actually consumed).
    distinct_selected: usize,
    /// Batch membership (weight multiplier; 0.0 = not in batch).
    batch_weight: Vec<f64>,
}

impl CoverageTracker {
    pub fn new(space: Arc<ActionSpace>) -> Self {
        let n = space.reps.len();
        let row_missing: Vec<u32> = space
            .result_rows
            .iter()
            .map(|(_, ids)| ids.len() as u32)
            .collect();
        let tuple_sel = vec![0u16; space.tuples.len()];
        CoverageTracker {
            space,
            tuple_sel,
            row_missing,
            covered: vec![0; n],
            distinct_selected: 0,
            batch_weight: vec![0.0; n],
        }
    }

    /// Restrict scoring to `batch` (rep indices); weights renormalised over
    /// the batch so per-episode rewards stay on a comparable scale.
    pub fn set_batch(&mut self, batch: &[usize]) {
        self.batch_weight.iter_mut().for_each(|w| *w = 0.0);
        let total: f64 = batch
            .iter()
            .map(|&q| self.space.reps.weights[q])
            .sum::<f64>()
            .max(f64::MIN_POSITIVE);
        for &q in batch {
            self.batch_weight[q] = self.space.reps.weights[q] / total;
        }
    }

    /// Score the whole batch against every representative (all-query batch).
    pub fn set_full_batch(&mut self) {
        let all: Vec<usize> = (0..self.space.reps.len()).collect();
        self.set_batch(&all);
    }

    pub fn reset_coverage(&mut self) {
        self.covered.iter_mut().for_each(|c| *c = 0);
        self.tuple_sel.iter_mut().for_each(|c| *c = 0);
        self.distinct_selected = 0;
        for (ri, (_, ids)) in self.space.result_rows.iter().enumerate() {
            self.row_missing[ri] = ids.len() as u32;
        }
    }

    /// Distinct selected tuples — the budget consumed so far.
    pub fn distinct_selected(&self) -> usize {
        self.distinct_selected
    }

    /// Tuples this action would newly add to the selection.
    pub fn novel_tuples(&self, action: usize) -> usize {
        self.space.actions[action]
            .tuple_ids
            .iter()
            .filter(|&&t| self.tuple_sel[t as usize] == 0)
            .count()
    }

    fn fraction(&self, q: usize, covered: u32) -> f64 {
        let cap = self.space.rep_caps[q].max(1) as f64;
        (covered as f64 / cap).min(1.0)
    }

    /// Apply an action (+1) or retract it (−1); returns `(Δscore,
    /// newly_covered_weight)` over the current batch.
    pub fn apply(&mut self, action: usize, sign: i64) -> (f64, f64) {
        let mut delta = 0.0;
        let mut newly = 0.0;
        let space = Arc::clone(&self.space);
        for &t in &space.actions[action].tuple_ids {
            let t = t as usize;
            if sign > 0 {
                self.tuple_sel[t] += 1;
                if self.tuple_sel[t] != 1 {
                    continue; // already selected via another action
                }
                self.distinct_selected += 1;
                for &ri in &space.tuple_to_rows[t] {
                    let ri = ri as usize;
                    self.row_missing[ri] -= 1;
                    if self.row_missing[ri] == 0 {
                        let q = space.result_rows[ri].0 as usize;
                        let old = self.covered[q];
                        self.covered[q] = old + 1;
                        let w = self.batch_weight[q];
                        if w > 0.0 {
                            let cap = space.rep_caps[q].max(1) as u32;
                            if old < cap {
                                delta += w / cap as f64;
                            }
                            if old == 0 {
                                newly += w;
                            }
                        }
                    }
                }
            } else {
                debug_assert!(self.tuple_sel[t] > 0, "retracting unselected tuple");
                self.tuple_sel[t] -= 1;
                if self.tuple_sel[t] != 0 {
                    continue; // still held by another action
                }
                self.distinct_selected -= 1;
                for &ri in &space.tuple_to_rows[t] {
                    let ri = ri as usize;
                    if self.row_missing[ri] == 0 {
                        let q = space.result_rows[ri].0 as usize;
                        let old = self.covered[q];
                        self.covered[q] = old - 1;
                        let w = self.batch_weight[q];
                        if w > 0.0 {
                            let cap = space.rep_caps[q].max(1) as u32;
                            if old <= cap {
                                delta -= w / cap as f64;
                            }
                        }
                    }
                    self.row_missing[ri] += 1;
                }
            }
        }
        (delta, newly)
    }

    /// Current batch score in `[0, 1]`.
    pub fn score(&self) -> f64 {
        (0..self.covered.len())
            .map(|q| self.batch_weight[q] * self.fraction(q, self.covered[q]))
            .sum()
    }
}

/// What phase a hybrid/DRP episode is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// GSL growth (also the whole episode for `EnvKind::Gsl`).
    Grow,
    /// DRP: choosing which selected action to drop (or no-op).
    Remove,
    /// DRP: choosing which unselected action to add.
    Add,
}

/// The ASQP environment over a pre-processed action space.
#[derive(Debug, Clone)]
pub struct AsqpEnv {
    space: Arc<ActionSpace>,
    config: EnvConfig,
    tracker: CoverageTracker,
    selected: Vec<bool>,
    tuples_used: usize,
    phase: Phase,
    pairs_done: usize,
    rng: SmallRng,
    episode: u64,
}

impl AsqpEnv {
    pub fn new(space: Arc<ActionSpace>, config: EnvConfig) -> Self {
        let n = space.len();
        let tracker = CoverageTracker::new(Arc::clone(&space));
        let rng = SmallRng::seed_from_u64(config.seed ^ 0xe7a1_5ced_0f1e_2d3c);
        AsqpEnv {
            space,
            config,
            tracker,
            selected: vec![false; n],
            tuples_used: 0,
            phase: Phase::Grow,
            pairs_done: 0,
            rng,
            episode: 0,
        }
    }

    pub fn space(&self) -> &ActionSpace {
        &self.space
    }

    /// No-op action index (DRP phases only).
    pub fn noop_action(&self) -> usize {
        self.space.len()
    }

    fn observation(&self) -> Vec<f32> {
        let mut obs: Vec<f32> = self
            .selected
            .iter()
            .map(|&s| if s { 1.0 } else { 0.0 })
            .collect();
        obs.push((self.tuples_used as f32 / self.config.k.max(1) as f32).min(1.0));
        obs.push(match self.phase {
            Phase::Grow => 0.0,
            Phase::Remove => 1.0,
            Phase::Add => 2.0,
        });
        obs
    }

    fn remaining_budget(&self) -> usize {
        self.config.k.saturating_sub(self.tuples_used)
    }

    /// An action is addable when it contributes at least one new tuple and
    /// its novel tuples fit the remaining budget (fully-redundant actions
    /// are masked: they would burn a step for zero reward).
    fn fits(&self, a: usize) -> bool {
        let novel = self.tracker.novel_tuples(a);
        novel > 0 && novel <= self.remaining_budget()
    }

    fn any_grow_action(&self) -> bool {
        (0..self.space.len()).any(|a| !self.selected[a] && self.fits(a))
    }

    fn sample_batch(&mut self) {
        let n = self.space.reps.len();
        let bs = self.config.batch_size.min(n).max(1);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..idx.len()).rev() {
            let j = self.rng.random_range(0..=i);
            idx.swap(i, j);
        }
        idx.truncate(bs);
        self.tracker.set_batch(&idx);
    }

    /// Random initial set for DRP episodes: fill to the tuple budget.
    fn random_fill(&mut self) {
        let mut order: Vec<usize> = (0..self.space.len()).collect();
        for i in (1..order.len()).rev() {
            let j = self.rng.random_range(0..=i);
            order.swap(i, j);
        }
        for a in order {
            if self.fits(a) && !self.selected[a] {
                self.selected[a] = true;
                self.tracker.apply(a, 1);
                self.tuples_used = self.tracker.distinct_selected();
            }
            if self.remaining_budget() == 0 {
                break;
            }
        }
    }

    fn grow_done(&self) -> bool {
        !self.any_grow_action()
    }

    /// Greedy policy rollout used at inference time (Algorithm 2): reset
    /// (in the environment's own kind — GSL grows from empty, DRP starts
    /// from its random fill and swaps), score against **all**
    /// representatives, repeatedly take the policy's argmax action, and
    /// return the finally-selected action indices. `budget` overrides the
    /// configured tuple budget when given.
    pub fn greedy_rollout(
        &mut self,
        policy: &asqp_rl::ActorCritic,
        budget: Option<usize>,
    ) -> Vec<usize> {
        let saved_k = self.config.k;
        if let Some(b) = budget {
            self.config.k = b;
        }
        let mut obs = self.reset();
        self.tracker.set_full_batch();
        let mut steps = 0usize;
        let step_cap = 4 * self.space.len() + 4 * self.config.drp_pairs + 8;
        loop {
            let mask = self.valid_actions();
            if !mask.iter().any(|&m| m) {
                break;
            }
            let a = policy.act_greedy(&obs, &mask);
            let t = self.step(a);
            obs = t.state;
            steps += 1;
            if t.done || steps >= step_cap {
                break;
            }
        }
        self.config.k = saved_k;
        (0..self.space.len())
            .filter(|&a| self.selected[a])
            .collect()
    }
}

impl Environment for AsqpEnv {
    fn action_count(&self) -> usize {
        self.space.len() + 1 // + no-op
    }

    fn state_dim(&self) -> usize {
        self.space.len() + 2 // indicator + budget fraction + phase flag
    }

    fn reset(&mut self) -> Vec<f32> {
        self.episode += 1;
        self.selected.iter_mut().for_each(|s| *s = false);
        self.tuples_used = 0;
        self.pairs_done = 0;
        self.tracker.reset_coverage();
        self.sample_batch();
        self.phase = match self.config.kind {
            EnvKind::Gsl | EnvKind::DrpGsl => Phase::Grow,
            EnvKind::Drp => {
                self.random_fill();
                Phase::Remove
            }
        };
        self.observation()
    }

    fn valid_actions(&self) -> Vec<bool> {
        let n = self.space.len();
        let mut mask = vec![false; n + 1];
        match self.phase {
            Phase::Grow => {
                for (a, m) in mask.iter_mut().enumerate().take(n) {
                    *m = !self.selected[a] && self.fits(a);
                }
            }
            Phase::Remove => {
                mask[..n].copy_from_slice(&self.selected[..n]);
                mask[n] = true; // no-op: keep the set as is
            }
            Phase::Add => {
                let mut any = false;
                for (a, m) in mask.iter_mut().enumerate().take(n) {
                    if !self.selected[a] && self.fits(a) {
                        *m = true;
                        any = true;
                    }
                }
                if !any {
                    mask[n] = true; // nothing addable: allow no-op
                }
            }
        }
        mask
    }

    fn step(&mut self, action: usize) -> Transition {
        let n = self.space.len();
        let noop = action == n;
        let mut reward = 0.0f32;

        match self.phase {
            Phase::Grow => {
                assert!(!noop, "no-op is masked during GSL growth");
                assert!(!self.selected[action], "invalid action re-selected");
                self.selected[action] = true;
                let (delta, newly) = self.tracker.apply(action, 1);
                self.tuples_used = self.tracker.distinct_selected();
                reward = delta as f32 + self.config.diversity_coef * newly as f32;
                let grow_finished = self.grow_done();
                match self.config.kind {
                    EnvKind::Gsl => {
                        return Transition {
                            state: self.observation(),
                            reward,
                            done: grow_finished,
                        };
                    }
                    EnvKind::DrpGsl => {
                        if grow_finished {
                            self.phase = Phase::Remove;
                        }
                        return Transition {
                            state: self.observation(),
                            reward,
                            done: false,
                        };
                    }
                    EnvKind::Drp => unreachable!("DRP never grows"),
                }
            }
            Phase::Remove => {
                if !noop {
                    assert!(self.selected[action], "cannot remove unselected action");
                    self.selected[action] = false;
                    let (delta, _) = self.tracker.apply(action, -1);
                    self.tuples_used = self.tracker.distinct_selected();
                    reward = delta as f32; // usually ≤ 0
                    self.phase = Phase::Add;
                } else {
                    // Keep the set: the pair completes immediately.
                    self.pairs_done += 1;
                }
            }
            Phase::Add => {
                if !noop {
                    assert!(!self.selected[action], "cannot add selected action");
                    self.selected[action] = true;
                    let (delta, newly) = self.tracker.apply(action, 1);
                    self.tuples_used = self.tracker.distinct_selected();
                    reward = delta as f32 + self.config.diversity_coef * newly as f32;
                }
                self.phase = Phase::Remove;
                self.pairs_done += 1;
            }
        }

        let done = self.pairs_done >= self.config.drp_pairs && self.phase == Phase::Remove;
        Transition {
            state: self.observation(),
            reward,
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, PreprocessConfig};
    use asqp_data::{imdb, Scale};

    fn space() -> Arc<ActionSpace> {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(12, 1);
        let cfg = PreprocessConfig {
            n_representatives: 6,
            max_actions: 64,
            per_query_cap: 30,
            ..PreprocessConfig::default()
        };
        Arc::new(preprocess(&db, &w, &cfg).unwrap().action_space)
    }

    fn env(kind: EnvKind, k: usize) -> AsqpEnv {
        AsqpEnv::new(
            space(),
            EnvConfig {
                kind,
                k,
                batch_size: 4,
                drp_pairs: 5,
                seed: 3,
                ..EnvConfig::default()
            },
        )
    }

    #[test]
    fn gsl_episode_respects_budget_and_rewards_coverage() {
        let mut e = env(EnvKind::Gsl, 30);
        let s0 = e.reset();
        assert_eq!(s0.len(), e.state_dim());
        let mut total = 0.0f32;
        let mut steps = 0;
        loop {
            let mask = e.valid_actions();
            assert!(!mask[e.noop_action()], "no-op masked in GSL");
            let Some(a) = mask.iter().position(|&m| m) else {
                break;
            };
            let t = e.step(a);
            total += t.reward;
            steps += 1;
            if t.done {
                break;
            }
            assert!(steps < 1000, "episode must terminate");
        }
        assert!(e.tuples_used <= 30, "budget respected: {}", e.tuples_used);
        assert!(total > 0.0, "covering actions must earn reward");
    }

    #[test]
    fn tracker_delta_matches_score_recomputation() {
        let sp = space();
        let mut t = CoverageTracker::new(Arc::clone(&sp));
        t.set_full_batch();
        let mut acc = 0.0;
        for a in 0..sp.len().min(10) {
            let before = t.score();
            let (delta, _) = t.apply(a, 1);
            let after = t.score();
            acc += delta;
            assert!(
                (after - before - delta).abs() < 1e-9,
                "incremental delta must equal recomputed difference"
            );
        }
        assert!((t.score() - acc).abs() < 1e-9);
        assert!(t.score() <= 1.0 + 1e-9);
    }

    #[test]
    fn tracker_retract_inverts_apply() {
        let sp = space();
        let mut t = CoverageTracker::new(Arc::clone(&sp));
        t.set_full_batch();
        t.apply(0, 1);
        let mid = t.score();
        t.apply(1, 1);
        t.apply(1, -1);
        assert!((t.score() - mid).abs() < 1e-9);
    }

    #[test]
    fn drp_alternates_phases_and_terminates() {
        let mut e = env(EnvKind::Drp, 40);
        e.reset();
        assert!(e.tuples_used > 0, "DRP starts from a filled set");
        let start_tuples = e.tuples_used;
        let mut steps = 0;
        loop {
            let mask = e.valid_actions();
            let a = mask.iter().position(|&m| m).unwrap();
            let t = e.step(a);
            steps += 1;
            if t.done {
                break;
            }
            assert!(steps < 200);
        }
        assert!(e.tuples_used <= 40);
        // Pairs preserve the set size modulo action granularity.
        assert!(e.tuples_used + 10 >= start_tuples.saturating_sub(10));
    }

    #[test]
    fn drp_noop_allowed_in_remove_phase() {
        let mut e = env(EnvKind::Drp, 40);
        e.reset();
        let mask = e.valid_actions();
        assert!(mask[e.noop_action()]);
        let before = e.tuples_used;
        let t = e.step(e.noop_action());
        assert_eq!(e.tuples_used, before, "no-op must not change the set");
        assert_eq!(t.reward, 0.0);
    }

    #[test]
    fn hybrid_grows_then_refines() {
        let mut e = env(EnvKind::DrpGsl, 25);
        e.reset();
        // Grow phase: no-op masked.
        assert!(!e.valid_actions()[e.noop_action()]);
        let mut steps = 0;
        loop {
            let mask = e.valid_actions();
            let a = mask.iter().position(|&m| m).unwrap();
            let t = e.step(a);
            steps += 1;
            if t.done {
                break;
            }
            assert!(steps < 500);
        }
        assert!(e.pairs_done >= 5, "refinement pairs must run");
    }

    #[test]
    fn batches_vary_between_episodes() {
        let mut e = env(EnvKind::Gsl, 30);
        e.reset();
        let b1 = e.tracker.batch_weight.clone();
        let mut changed = false;
        for _ in 0..10 {
            e.reset();
            if e.tracker.batch_weight != b1 {
                changed = true;
                break;
            }
        }
        assert!(changed, "episode batches should vary");
    }
}
