//! Result-diversity measurement (paper §6.2 "Diversity Comparison"): the
//! standard pairwise-Jaccard-distance metric over query answers.

use asqp_db::{Database, DbResult, Query, Row, Value, Workload};
// Ordered sets: token iteration stays deterministic (iter-order invariant).
use std::collections::BTreeSet;

/// Token set of one result row (string values tokenize; others stringify).
fn row_tokens(row: &Row) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for v in row {
        match v {
            Value::Str(s) => {
                for t in asqp_embed::tokenize(s) {
                    set.insert(t);
                }
            }
            other => {
                set.insert(other.to_string());
            }
        }
    }
    set
}

/// Jaccard distance between two rows' token sets.
fn jaccard_distance(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.union(b).count();
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

/// Mean pairwise Jaccard distance over a result's rows. Results with fewer
/// than two rows have no pairs and score 0. Row count should be bounded by
/// the caller (the paper uses `LIMIT 100`).
pub fn result_diversity(rows: &[Row]) -> f64 {
    if rows.len() < 2 {
        return 0.0;
    }
    let tokens: Vec<BTreeSet<String>> = rows.iter().map(row_tokens).collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..tokens.len() {
        for j in (i + 1)..tokens.len() {
            total += jaccard_distance(&tokens[i], &tokens[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Average diversity of a workload's answers on a database, each query
/// executed with `LIMIT limit` (paper: 100). Queries with empty answers are
/// skipped.
pub fn workload_diversity(db: &Database, workload: &Workload, limit: usize) -> DbResult<f64> {
    let mut total = 0.0;
    let mut counted = 0usize;
    for q in &workload.queries {
        let mut q: Query = q.clone();
        q.limit = Some(limit.min(q.limit.unwrap_or(usize::MAX)));
        let rows = db.execute(&q)?.rows;
        if rows.len() >= 2 {
            total += result_diversity(&rows);
            counted += 1;
        }
    }
    Ok(if counted == 0 {
        0.0
    } else {
        total / counted as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rows_have_zero_diversity() {
        let rows = vec![
            vec![Value::Str("same words".into())],
            vec![Value::Str("same words".into())],
        ];
        assert_eq!(result_diversity(&rows), 0.0);
    }

    #[test]
    fn disjoint_rows_have_full_diversity() {
        let rows = vec![
            vec![Value::Str("alpha beta".into())],
            vec![Value::Str("gamma delta".into())],
        ];
        assert!((result_diversity(&rows) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_in_between() {
        let rows = vec![
            vec![Value::Str("alpha beta".into())],
            vec![Value::Str("beta gamma".into())],
        ];
        let d = result_diversity(&rows);
        assert!(d > 0.0 && d < 1.0, "d = {d}");
    }

    #[test]
    fn single_row_scores_zero() {
        assert_eq!(result_diversity(&[vec![Value::Int(1)]]), 0.0);
        assert_eq!(result_diversity(&[]), 0.0);
    }

    #[test]
    fn workload_diversity_on_dataset() {
        use asqp_data::{imdb, Scale};
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(8, 1);
        let d = workload_diversity(&db, &w, 50).unwrap();
        assert!(d > 0.2 && d <= 1.0, "IMDB answers should be diverse: {d}");
    }
}
