//! The answerability estimator (paper §4.4): given a user query, predict
//! whether the approximation set can answer it, from (a) the query's
//! embedding-space closeness to the training workload and (b) the model's
//! measured per-query quality on that workload.

use crate::metric::{per_query_fractions, FullCounts, MetricParams};
use crate::model::TrainedModel;
use asqp_db::{Database, DbResult, Query};
use asqp_embed::{cosine, Embedder};
use serde::{Deserialize, Serialize};

/// Prediction for one query.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted Eq.-1 fraction in `[0, 1]`.
    pub score: f64,
    /// Confidence: similarity to the nearest training query in `[0, 1]`.
    pub confidence: f64,
}

impl Prediction {
    pub fn answerable(&self, threshold: f64) -> bool {
        self.score >= threshold
    }
}

/// k-NN regressor over query embeddings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnswerabilityEstimator {
    embedder: Embedder,
    train_points: Vec<Vec<f32>>,
    /// Measured Eq.-1 fraction of each training query on the approximation
    /// set (the "existing model's performance on the training workload").
    train_scores: Vec<f64>,
    pub k_neighbors: usize,
    /// A query scoring at least this is considered answerable (paper: 0.5).
    pub threshold: f64,
}

impl AnswerabilityEstimator {
    /// Fit the estimator: evaluate the training workload on the materialised
    /// approximation set and remember (embedding, achieved fraction) pairs.
    pub fn fit(
        model: &TrainedModel,
        db: &Database,
        subset: &Database,
        params: MetricParams,
    ) -> DbResult<Self> {
        let full = FullCounts::compute(db, &model.train_workload)?;
        let fractions = per_query_fractions(subset, &model.train_workload, &full, params)?;
        Ok(AnswerabilityEstimator {
            embedder: model.embedder.clone(),
            train_points: model.train_embeddings.clone(),
            train_scores: fractions,
            k_neighbors: 5,
            threshold: 0.5,
        })
    }

    /// Construct directly from (embedding, score) pairs — used in tests and
    /// by the no-workload mode.
    pub fn from_points(
        embedder: Embedder,
        train_points: Vec<Vec<f32>>,
        train_scores: Vec<f64>,
    ) -> Self {
        assert_eq!(train_points.len(), train_scores.len());
        AnswerabilityEstimator {
            embedder,
            train_points,
            train_scores,
            k_neighbors: 5,
            threshold: 0.5,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.train_points.is_empty()
    }

    /// Predict the achievable fraction for a query: similarity-weighted
    /// average over the k nearest training queries. Aggregates are rewritten
    /// to SPJ first, exactly as at answer time.
    pub fn predict(&self, q: &Query) -> Prediction {
        if self.train_points.is_empty() {
            return Prediction {
                score: 0.0,
                confidence: 0.0,
            };
        }
        let v = self.embedder.embed_query(&q.strip_aggregates());
        let mut sims: Vec<(f64, f64)> = self
            .train_points
            .iter()
            .zip(&self.train_scores)
            .map(|(p, &s)| (cosine(p, &v).max(0.0) as f64, s))
            .collect();
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let top = &sims[..self.k_neighbors.min(sims.len())];
        let confidence = top.first().map(|t| t.0).unwrap_or(0.0);
        // Sharpened similarity weights (sim^8): an (almost-)exact training
        // match dominates its neighbourhood instead of being smoothed away,
        // while genuinely-new queries still average their nearest cluster.
        let wsum: f64 = top.iter().map(|t| t.0.powi(8)).sum();
        let score = if wsum > 1e-9 {
            top.iter().map(|(w, s)| w.powi(8) * s).sum::<f64>() / wsum
        } else {
            0.0 // nothing similar in the training workload
        };
        // Far-away queries are discounted: similarity gates the prediction.
        let gated = score * confidence.sqrt();
        Prediction {
            score: gated.clamp(0.0, 1.0),
            confidence,
        }
    }

    /// Classification quality against measured ground truth:
    /// `(precision, recall)` of the "answerable" label at the configured
    /// threshold (the Fig. 5 measurement).
    pub fn precision_recall(&self, queries: &[Query], true_fractions: &[f64]) -> (f64, f64) {
        assert_eq!(queries.len(), true_fractions.len());
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fnn = 0usize;
        for (q, &truth) in queries.iter().zip(true_fractions) {
            let pred = self.predict(q).answerable(self.threshold);
            let real = truth >= self.threshold;
            match (pred, real) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fnn += 1,
                (false, false) => {}
            }
        }
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fnn == 0 {
            1.0
        } else {
            tp as f64 / (tp + fnn) as f64
        };
        (precision, recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_db::sql::parse;

    fn estimator() -> AnswerabilityEstimator {
        let e = Embedder::new(128);
        let q_good = parse("SELECT t.title FROM title t WHERE t.production_year > 2000").unwrap();
        let q_good2 = parse("SELECT t.title FROM title t WHERE t.production_year > 2005").unwrap();
        let q_bad = parse("SELECT f.origin FROM flights f WHERE f.dep_delay > 30").unwrap();
        let pts = vec![
            e.embed_query(&q_good),
            e.embed_query(&q_good2),
            e.embed_query(&q_bad),
        ];
        AnswerabilityEstimator::from_points(e, pts, vec![0.9, 0.85, 0.05])
    }

    #[test]
    fn similar_query_predicted_answerable() {
        let est = estimator();
        let q = parse("SELECT t.title FROM title t WHERE t.production_year > 2010").unwrap();
        let p = est.predict(&q);
        assert!(p.confidence > 0.5, "confidence = {}", p.confidence);
        assert!(p.answerable(0.5), "score = {}", p.score);
    }

    #[test]
    fn dissimilar_query_predicted_unanswerable() {
        let est = estimator();
        let q = parse("SELECT a.name FROM author a WHERE a.affiliation LIKE 'x%'").unwrap();
        let p = est.predict(&q);
        assert!(!p.answerable(0.5), "score = {}", p.score);
    }

    #[test]
    fn flight_query_maps_to_low_scoring_neighbor() {
        let est = estimator();
        let q = parse("SELECT f.origin FROM flights f WHERE f.dep_delay > 45").unwrap();
        let p = est.predict(&q);
        assert!(p.confidence > 0.5, "close to a training query");
        assert!(p.score < 0.5, "but that query scored poorly: {}", p.score);
    }

    #[test]
    fn empty_estimator_says_unanswerable() {
        let e = Embedder::new(32);
        let est = AnswerabilityEstimator::from_points(e, vec![], vec![]);
        let q = parse("SELECT t.x FROM t").unwrap();
        let p = est.predict(&q);
        assert_eq!(p.score, 0.0);
        assert_eq!(p.confidence, 0.0);
        assert!(est.is_empty());
    }

    #[test]
    fn precision_recall_on_known_labels() {
        let est = estimator();
        let queries = vec![
            parse("SELECT t.title FROM title t WHERE t.production_year > 2008").unwrap(),
            parse("SELECT f.origin FROM flights f WHERE f.dep_delay > 60").unwrap(),
        ];
        let truths = vec![0.88, 0.02];
        let (p, r) = est.precision_recall(&queries, &truths);
        assert_eq!(p, 1.0);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn aggregate_queries_rewritten_before_prediction() {
        let est = estimator();
        let agg = parse(
            "SELECT t.production_year, COUNT(*) FROM title t \
             WHERE t.production_year > 2003 GROUP BY t.production_year",
        )
        .unwrap();
        let p = est.predict(&agg);
        assert!(
            p.confidence > 0.3,
            "SPJ rewrite should match training: {}",
            p.confidence
        );
    }
}
