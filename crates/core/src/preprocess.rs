//! Data and query pre-processing (paper §4.2, Algorithm 1 lines 1–4):
//!
//! 1. **Query relaxation** — widen predicate constants so representative
//!    results include tuples beyond the exact workload answers,
//!    generalising toward future queries (challenge C4).
//! 2. **Representative selection** — embed the relaxed queries, cluster,
//!    and keep one representative per cluster with the cluster's merged
//!    weight (challenge C2: fewer queries to execute).
//! 3. **Action-space construction** — execute representatives *with
//!    lineage*, subsample their result rows (the variational-subsampling
//!    role: bounding the pool while keeping rare-query rows), and turn each
//!    surviving result row's base-table lineage into one RL **action**
//!    (challenge C1: a reduced, join-consistent action space — tuples picked
//!    together are guaranteed joinable because they came from a real join
//!    result).
//!
//! Each action records which representative queries it contributes to and
//! by how many result rows — the `cover[action][query]` table that lets the
//! GSL/DRP environments compute Δscore rewards incrementally instead of
//! re-executing queries every step.

use crate::metric::MetricParams;
use asqp_db::{CmpOp, Database, DbResult, Expr, Query, Value, Workload};
use asqp_embed::{kmeans, Embedder};
use asqp_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Pre-processing configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Number of query representatives (clusters) to execute.
    pub n_representatives: usize,
    /// Cap on the RL action space after subsampling.
    pub max_actions: usize,
    /// Embedding dimensionality.
    pub embed_dim: usize,
    /// Relative widening applied to numeric predicate constants (0.1 = ±10%).
    pub relaxation: f64,
    /// Max result rows kept per representative (subsampling cap).
    pub per_query_cap: usize,
    pub frame_size: usize,
    /// Reward caps during training use `min(mult · F, |q(T)|)` instead of
    /// `min(F, |q(T)|)`: demanding more rows per representative than a user
    /// frame spreads the selection *within* each representative, which is
    /// what lets narrower future queries find their specific rows covered
    /// (the training-side face of challenge C4).
    pub train_frame_multiplier: usize,
    pub seed: u64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            n_representatives: 16,
            max_actions: 512,
            embed_dim: 128,
            relaxation: 0.1,
            per_query_cap: 200,
            frame_size: 50,
            train_frame_multiplier: 1,
            seed: 0,
        }
    }
}

/// One RL action: a join-consistent group of base-table tuples (the lineage
/// of one representative result row), referenced by ids into
/// [`ActionSpace::tuples`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Action {
    /// Ids into [`ActionSpace::tuples`] (sorted, deduplicated).
    pub tuple_ids: Vec<u32>,
    /// `(representative index, result rows this action completes alone)` —
    /// diagnostics and rarity-based capping; the environments score via the
    /// tuple-level [`ActionSpace::result_rows`] instead, which also credits
    /// rows completed by tuples arriving through *different* actions.
    pub coverage: Vec<(u32, u32)>,
}

impl Action {
    /// Base tuples this action references.
    pub fn tuple_count(&self) -> usize {
        self.tuple_ids.len()
    }
}

/// The reduced action space handed to the RL environments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActionSpace {
    pub actions: Vec<Action>,
    /// Global tuple pool: id → (table name, base row id).
    pub tuples: Vec<(String, usize)>,
    /// Sampled representative result rows: `(rep index, required tuple
    /// ids)`. A row counts as answered once **all** its tuples are selected,
    /// no matter which actions supplied them.
    pub result_rows: Vec<(u32, Vec<u32>)>,
    /// Inverted index: tuple id → indices into `result_rows`.
    pub tuple_to_rows: Vec<Vec<u32>>,
    /// Representative queries (relaxed), with merged cluster weights.
    pub reps: Workload,
    /// `min(F, |q(T)|)` per representative — the reward denominator.
    pub rep_caps: Vec<usize>,
    pub params: MetricParams,
}

impl ActionSpace {
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Union of actions → per-table row selection (sorted, deduplicated).
    pub fn materialize_selection(&self, chosen: &[usize]) -> BTreeMap<String, Vec<usize>> {
        let mut sel: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for &a in chosen {
            for &t in &self.actions[a].tuple_ids {
                let (table, rid) = &self.tuples[t as usize];
                sel.entry(table.clone()).or_default().push(*rid);
            }
        }
        for rows in sel.values_mut() {
            rows.sort_unstable();
            rows.dedup();
        }
        sel
    }
}

/// Everything pre-processing produces.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    pub action_space: ActionSpace,
    pub embedder: Embedder,
    /// Embeddings of the *original* (unrelaxed) training queries, aligned
    /// with the input workload — consumed by the answerability estimator.
    pub train_embeddings: Vec<Vec<f32>>,
}

/// Widen a query's numeric predicate constants by `factor` in the
/// permissive direction (paper's query-relaxation step). Non-numeric
/// predicates are kept as-is; the result set can only grow.
pub fn relax_query(q: &Query, factor: f64) -> Query {
    let mut out = q.clone();
    if let Some(p) = &q.predicate {
        out.predicate = Some(relax_expr(p, factor));
    }
    // A LIMIT would clip the enlarged result, defeating relaxation.
    out.limit = None;
    out
}

fn widen(v: &Value, factor: f64, upward: bool) -> Value {
    let delta = |x: f64| x.abs() * factor + 1.0;
    match v {
        Value::Int(i) => {
            let d = delta(*i as f64).ceil() as i64;
            Value::Int(if upward { i + d } else { i - d })
        }
        Value::Float(f) => {
            let d = delta(*f);
            Value::Float(if upward { f + d } else { f - d })
        }
        other => other.clone(),
    }
}

fn relax_expr(e: &Expr, factor: f64) -> Expr {
    match e {
        Expr::Cmp { op, lhs, rhs } => {
            // Only relax `col OP literal` / `literal OP col` shapes.
            match (op, lhs.as_ref(), rhs.as_ref()) {
                (CmpOp::Gt | CmpOp::Ge, _, Expr::Literal(v)) => Expr::Cmp {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: Box::new(Expr::Literal(widen(v, factor, false))),
                },
                (CmpOp::Lt | CmpOp::Le, _, Expr::Literal(v)) => Expr::Cmp {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: Box::new(Expr::Literal(widen(v, factor, true))),
                },
                (CmpOp::Gt | CmpOp::Ge, Expr::Literal(v), _) => Expr::Cmp {
                    op: *op,
                    lhs: Box::new(Expr::Literal(widen(v, factor, true))),
                    rhs: rhs.clone(),
                },
                (CmpOp::Lt | CmpOp::Le, Expr::Literal(v), _) => Expr::Cmp {
                    op: *op,
                    lhs: Box::new(Expr::Literal(widen(v, factor, false))),
                    rhs: rhs.clone(),
                },
                _ => e.clone(),
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let low = match low.as_ref() {
                Expr::Literal(v) => Box::new(Expr::Literal(widen(v, factor, false))),
                other => Box::new(other.clone()),
            };
            let high = match high.as_ref() {
                Expr::Literal(v) => Box::new(Expr::Literal(widen(v, factor, true))),
                other => Box::new(other.clone()),
            };
            Expr::Between {
                expr: expr.clone(),
                low,
                high,
                negated: false,
            }
        }
        Expr::And(a, b) => Expr::And(
            Box::new(relax_expr(a, factor)),
            Box::new(relax_expr(b, factor)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(relax_expr(a, factor)),
            Box::new(relax_expr(b, factor)),
        ),
        other => other.clone(),
    }
}

/// Cluster query embeddings and return `(representatives, embeddings)`:
/// one representative per cluster carrying the cluster's summed weight.
pub fn select_representatives(
    workload: &Workload,
    embedder: &Embedder,
    n_reps: usize,
    seed: u64,
) -> (Workload, Vec<Vec<f32>>) {
    let embeddings: Vec<Vec<f32>> = workload
        .queries
        .iter()
        .map(|q| embedder.embed_query(q))
        .collect();
    if workload.is_empty() {
        return (Workload::uniform(Vec::new()), embeddings);
    }
    if n_reps >= workload.len() {
        // Enough budget to execute every query: no clustering loss.
        return (workload.clone(), embeddings);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e1ec7);
    let clustering = kmeans(&embeddings, n_reps.max(1), 40, &mut rng);
    let reps = clustering.representatives(&embeddings);

    let mut queries = Vec::with_capacity(reps.len());
    let mut weights = Vec::with_capacity(reps.len());
    for (ci, &rep_idx) in reps.iter().enumerate() {
        let weight: f64 = clustering
            .assignment
            .iter()
            .zip(&workload.weights)
            .filter(|(&a, _)| a == ci)
            .map(|(_, &w)| w)
            .sum();
        if weight > 0.0 {
            queries.push(workload.queries[rep_idx].clone());
            weights.push(weight);
        }
    }
    (Workload::weighted(queries, weights), embeddings)
}

/// Run the full pre-processing pipeline.
pub fn preprocess(
    db: &Database,
    workload: &Workload,
    cfg: &PreprocessConfig,
) -> DbResult<Preprocessed> {
    let embedder = Embedder::new(cfg.embed_dim);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);

    // Aggregates in the workload are rewritten to SPJ (paper §3); then relax.
    let relaxed = {
        let _s = telemetry::span("preprocess.relax");
        let spj: Vec<Query> = workload
            .queries
            .iter()
            .map(|q| relax_query(&q.strip_aggregates(), cfg.relaxation))
            .collect();
        Workload::weighted(spj, workload.weights.clone())
    };

    // Representative selection on the relaxed queries; estimator embeddings
    // on the original queries (user queries arrive unrelaxed).
    let reps_span = telemetry::span("preprocess.representatives");
    let (reps_all, _) =
        select_representatives(&relaxed, &embedder, cfg.n_representatives, cfg.seed);
    let train_embeddings: Vec<Vec<f32>> = workload
        .queries
        .iter()
        .map(|q| embedder.embed_query(q))
        .collect();
    drop(reps_span);

    let actions_span = telemetry::span("preprocess.actions");

    // Execute representatives with lineage; drop empty-result reps (they
    // contribute score 1 for free and teach the policy nothing).
    let mut reps_kept: Vec<Query> = Vec::new();
    let mut weights_kept: Vec<f64> = Vec::new();
    let mut rep_caps: Vec<usize> = Vec::new();
    // Global tuple pool: (table, row id) → tuple id.
    let mut tuple_ids: HashMap<(String, usize), u32> = HashMap::new();
    let mut tuples: Vec<(String, usize)> = Vec::new();
    // Sampled result rows: (rep idx, required tuple ids).
    let mut result_rows: Vec<(u32, Vec<u32>)> = Vec::new();
    // Action dedup: canonical tuple-id set → index in `actions`.
    let mut dedup: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut actions: Vec<Action> = Vec::new();
    let params = MetricParams::new(cfg.frame_size);

    for (q, w) in reps_all.iter() {
        let out = db.execute_with_lineage(q)?;
        let full_count = out.result.rows.len();
        if full_count == 0 {
            continue;
        }
        let rep_idx = reps_kept.len() as u32;
        reps_kept.push(q.clone());
        weights_kept.push(w);
        let train_cap = (params.frame_size * cfg.train_frame_multiplier.max(1)).min(full_count);
        rep_caps.push(train_cap.max(1));

        // Subsample result rows (variational-subsampling role): keep at
        // most `per_query_cap`, uniformly without replacement. Queries with
        // small results keep everything — their tuples matter most (C3).
        let mut idx: Vec<usize> = (0..out.lineage.len()).collect();
        if idx.len() > cfg.per_query_cap {
            for i in (1..idx.len()).rev() {
                let j = rng.random_range(0..=i);
                idx.swap(i, j);
            }
            idx.truncate(cfg.per_query_cap);
        }

        for &ri in &idx {
            let lin = &out.lineage[ri];
            // Canonical tuple-id set for this result row.
            let mut ids: Vec<u32> = lin
                .iter()
                .enumerate()
                .map(|(bi, &rid)| {
                    let key = (out.binding_tables[bi].clone(), rid);
                    match tuple_ids.get(&key) {
                        Some(&id) => id,
                        None => {
                            let id = tuples.len() as u32;
                            tuples.push(key.clone());
                            tuple_ids.insert(key, id);
                            id
                        }
                    }
                })
                .collect();
            ids.sort_unstable();
            ids.dedup();
            result_rows.push((rep_idx, ids.clone()));

            match dedup.get(&ids) {
                Some(&ai) => {
                    // Existing action completes one more row of rep_idx.
                    let cov = &mut actions[ai].coverage;
                    match cov.iter_mut().find(|(q, _)| *q == rep_idx) {
                        Some((_, c)) => *c += 1,
                        None => cov.push((rep_idx, 1)),
                    }
                }
                None => {
                    dedup.insert(ids.clone(), actions.len());
                    actions.push(Action {
                        tuple_ids: ids,
                        coverage: vec![(rep_idx, 1)],
                    });
                }
            }
        }
    }

    // Cap the action space. Keep actions covering rare (small-cap) queries
    // first — their tuples carry the most score — then fill randomly.
    if actions.len() > cfg.max_actions {
        let mut order: Vec<usize> = (0..actions.len()).collect();
        let rarity = |a: &Action| -> usize {
            a.coverage
                .iter()
                .map(|&(q, _)| rep_caps[q as usize])
                .min()
                .unwrap_or(usize::MAX)
        };
        // Shuffle first so ties break randomly, then stable-sort by rarity.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        order.sort_by_key(|&i| rarity(&actions[i]));
        order.truncate(cfg.max_actions);
        order.sort_unstable();
        actions = order.into_iter().map(|i| actions[i].clone()).collect();

        // Prune the tuple pool to what the kept actions can still supply,
        // and drop result rows that can no longer complete.
        let mut keep_tuple = vec![false; tuples.len()];
        for a in &actions {
            for &t in &a.tuple_ids {
                keep_tuple[t as usize] = true;
            }
        }
        let mut remap = vec![u32::MAX; tuples.len()];
        let mut new_tuples = Vec::new();
        for (old, keep) in keep_tuple.iter().enumerate() {
            if *keep {
                remap[old] = new_tuples.len() as u32;
                new_tuples.push(tuples[old].clone());
            }
        }
        tuples = new_tuples;
        for a in &mut actions {
            for t in &mut a.tuple_ids {
                *t = remap[*t as usize];
            }
        }
        result_rows.retain_mut(|(_, ids)| {
            if ids.iter().any(|&t| remap[t as usize] == u32::MAX) {
                return false;
            }
            for t in ids.iter_mut() {
                *t = remap[*t as usize];
            }
            true
        });
    }

    // Inverted index: tuple id → result rows requiring it.
    let mut tuple_to_rows: Vec<Vec<u32>> = vec![Vec::new(); tuples.len()];
    for (ri, (_, ids)) in result_rows.iter().enumerate() {
        for &t in ids {
            tuple_to_rows[t as usize].push(ri as u32);
        }
    }
    drop(actions_span);
    if telemetry::enabled() {
        telemetry::counter("preprocess.actions", actions.len() as u64);
        telemetry::counter("preprocess.tuples", tuples.len() as u64);
        telemetry::counter("preprocess.reps_kept", reps_kept.len() as u64);
    }

    Ok(Preprocessed {
        action_space: ActionSpace {
            actions,
            tuples,
            result_rows,
            tuple_to_rows,
            reps: Workload::weighted(reps_kept, weights_kept),
            rep_caps,
            params,
        },
        embedder,
        train_embeddings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_data::{imdb, Scale};
    use asqp_db::sql::parse;

    #[test]
    fn relaxation_grows_results() {
        let db = imdb::generate(Scale::Tiny, 1);
        let q = parse("SELECT t.title FROM title t WHERE t.production_year > 2015").unwrap();
        let relaxed = relax_query(&q, 0.002);
        let before = db.execute(&q).unwrap().rows.len();
        let after = db.execute(&relaxed).unwrap().rows.len();
        assert!(after >= before, "relaxation must not shrink results");
        assert!(after > before, "widened year threshold should add tuples");
    }

    #[test]
    fn relaxation_widens_between_and_removes_limit() {
        let q = parse("SELECT t.x FROM t WHERE t.x BETWEEN 10 AND 20 LIMIT 5").unwrap();
        let r = relax_query(&q, 0.1);
        assert!(r.limit.is_none());
        let p = r.predicate.unwrap().to_string();
        assert!(p.contains("BETWEEN 8 AND 23"), "got: {p}");
    }

    #[test]
    fn representatives_merge_weights() {
        let w = Workload::uniform(vec![
            parse("SELECT t.x FROM t WHERE t.x > 10").unwrap(),
            parse("SELECT t.x FROM t WHERE t.x > 11").unwrap(),
            parse("SELECT u.y FROM u WHERE u.y LIKE 'abc%'").unwrap(),
        ]);
        let e = Embedder::new(128);
        let (reps, emb) = select_representatives(&w, &e, 2, 1);
        assert_eq!(emb.len(), 3);
        assert_eq!(reps.len(), 2);
        assert!((reps.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The two similar queries should share a cluster → one rep has 2/3.
        let mut ws = reps.weights.clone();
        ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((ws[1] - 2.0 / 3.0).abs() < 1e-9, "weights: {ws:?}");
    }

    #[test]
    fn action_space_is_join_consistent_and_covers_reps() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(12, 1);
        let cfg = PreprocessConfig {
            n_representatives: 6,
            max_actions: 200,
            per_query_cap: 50,
            ..PreprocessConfig::default()
        };
        let pre = preprocess(&db, &w, &cfg).unwrap();
        let space = &pre.action_space;
        assert!(!space.is_empty());
        assert!(space.len() <= 200);
        assert_eq!(space.reps.len(), space.rep_caps.len());
        assert_eq!(pre.train_embeddings.len(), 12);

        for a in &space.actions {
            assert!(a.tuple_count() >= 1);
            assert!(!a.coverage.is_empty());
            // Tuple ids must resolve to in-range base rows.
            for &t in &a.tuple_ids {
                let (table, rid) = &space.tuples[t as usize];
                assert!(*rid < db.table(table).unwrap().row_count());
            }
            for &(q, c) in &a.coverage {
                assert!((q as usize) < space.reps.len());
                assert!(c >= 1);
            }
        }

        // Result-row index invariants: every row's tuples exist and the
        // inverted index round-trips.
        for (ri, (q, ids)) in space.result_rows.iter().enumerate() {
            assert!((*q as usize) < space.reps.len());
            assert!(!ids.is_empty());
            for &t in ids {
                assert!((t as usize) < space.tuples.len());
                assert!(space.tuple_to_rows[t as usize].contains(&(ri as u32)));
            }
        }
    }

    #[test]
    fn materialized_actions_reproduce_result_rows() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(6, 2);
        let pre = preprocess(&db, &w, &PreprocessConfig::default()).unwrap();
        let space = &pre.action_space;
        if space.is_empty() {
            return;
        }
        // Selecting action 0 must make its covered queries return ≥1 row.
        let sel = space.materialize_selection(&[0]);
        let sub = db.subset(&sel).unwrap();
        let &(q, _) = &space.actions[0].coverage[0];
        let r = sub.execute(&space.reps.queries[q as usize]).unwrap();
        assert!(
            !r.rows.is_empty(),
            "action lineage must reproduce at least one result row"
        );
    }

    #[test]
    fn max_actions_cap_respected_and_prefers_rare_queries() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(12, 3);
        let cfg = PreprocessConfig {
            max_actions: 20,
            ..PreprocessConfig::default()
        };
        let pre = preprocess(&db, &w, &cfg).unwrap();
        assert!(pre.action_space.len() <= 20);
    }

    #[test]
    fn empty_workload_yields_empty_space() {
        let db = imdb::generate(Scale::Tiny, 1);
        let pre = preprocess(
            &db,
            &Workload::uniform(vec![]),
            &PreprocessConfig::default(),
        )
        .unwrap();
        assert!(pre.action_space.is_empty());
    }

    #[test]
    fn aggregate_queries_are_rewritten_before_training() {
        let db = asqp_data::flights::generate(Scale::Tiny, 1);
        let w = asqp_data::flights::aggregate_workload(6, 1);
        let pre = preprocess(&db, &w, &PreprocessConfig::default()).unwrap();
        // Representatives must be SPJ (no aggregates survive).
        for q in &pre.action_space.reps.queries {
            assert!(!q.is_aggregate());
        }
        assert!(!pre.action_space.is_empty());
    }

    #[test]
    fn arith_untouched_by_relaxation() {
        let q = parse("SELECT t.x FROM t WHERE t.x + 1 = t.y").unwrap();
        let r = relax_query(&q, 0.5);
        assert_eq!(r.predicate, q.predicate);
    }
}
