//! Approximate aggregate answering over the approximation set (paper §6.4).
//!
//! COUNT and SUM computed on a subset are scaled by the per-table sampling
//! ratio (a Horvitz–Thompson-style estimate under the uniform-inclusion
//! assumption; joins multiply per-table ratios). AVG / MIN / MAX pass
//! through unscaled. Relative error (Eq. 2) handles GROUP BY outputs by
//! matching groups and charging missing groups a full error of 1.

use asqp_db::{AggExpr, AggFunc, Database, DbResult, Query, ResultSet, Row, SelectItem, Value};
use std::collections::BTreeMap;

/// Per-query scale factor: product over FROM tables of
/// `|T_full| / |T_subset|` (tables with an empty subset part make the query
/// unanswerable — the caller should have fallen back to the full DB).
pub fn scale_factor(full: &Database, subset: &Database, q: &Query) -> DbResult<f64> {
    let mut factor = 1.0;
    for t in q.referenced_tables() {
        let nf = full.table(t)?.row_count() as f64;
        let ns = subset.table(t)?.row_count() as f64;
        if ns > 0.0 && nf > 0.0 {
            factor *= nf / ns;
        }
    }
    Ok(factor)
}

/// Execute an aggregate query on the approximation set, scaling COUNT/SUM
/// outputs by the sampling ratio.
pub fn approximate_aggregate(full: &Database, subset: &Database, q: &Query) -> DbResult<ResultSet> {
    assert!(
        q.is_aggregate(),
        "approximate_aggregate expects an aggregate query"
    );
    let mut rs = subset.execute(q)?;
    let factor = scale_factor(full, subset, q)?;

    // Column positions of scalable aggregates in the select list.
    let scalable: Vec<usize> = q
        .select
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            SelectItem::Aggregate(AggExpr {
                func: AggFunc::Count | AggFunc::Sum,
                ..
            }) => Some(i),
            _ => None,
        })
        .collect();

    for row in &mut rs.rows {
        for &c in &scalable {
            row[c] = match &row[c] {
                Value::Int(i) => Value::Float((*i as f64 * factor).round()),
                Value::Float(f) => Value::Float(f * factor),
                other => other.clone(),
            };
        }
    }
    Ok(rs)
}

/// Relative error of one scalar estimate (Eq. 2). A zero truth with a
/// non-zero estimate counts as error 1.
pub fn relative_error(pred: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if pred == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        ((pred - truth).abs() / truth.abs()).min(1.0)
    }
}

/// Average relative error between a predicted and a true aggregate result.
///
/// For GROUP BY queries, groups are matched on the group-key columns;
/// missing groups get error 1 per aggregate column (paper §6.4). Extra
/// (spurious) predicted groups also get error 1 — symmetric treatment.
pub fn result_relative_error(q: &Query, pred: &ResultSet, truth: &ResultSet) -> f64 {
    // Identify key vs aggregate columns by select-list shape.
    let mut key_cols = Vec::new();
    let mut agg_cols = Vec::new();
    for (i, s) in q.select.iter().enumerate() {
        match s {
            SelectItem::Aggregate(_) => agg_cols.push(i),
            _ => key_cols.push(i),
        }
    }
    if agg_cols.is_empty() {
        return 0.0;
    }

    let key_of = |row: &Row| -> Vec<Value> { key_cols.iter().map(|&c| row[c].clone()).collect() };
    // BTreeMaps so the f64 error accumulation below runs in key order:
    // with hash maps the sum order (and thus the reported error, f64
    // addition being non-associative) varied run to run.
    let truth_map: BTreeMap<Vec<Value>, &Row> = truth.rows.iter().map(|r| (key_of(r), r)).collect();
    let pred_map: BTreeMap<Vec<Value>, &Row> = pred.rows.iter().map(|r| (key_of(r), r)).collect();

    let mut total = 0.0;
    let mut terms = 0usize;
    for (key, trow) in &truth_map {
        match pred_map.get(key) {
            Some(prow) => {
                for &c in &agg_cols {
                    let t = trow[c].as_f64().unwrap_or(0.0);
                    let p = prow[c].as_f64().unwrap_or(0.0);
                    total += relative_error(p, t);
                    terms += 1;
                }
            }
            None => {
                total += agg_cols.len() as f64; // missing group: full error
                terms += agg_cols.len();
            }
        }
    }
    for key in pred_map.keys() {
        if !truth_map.contains_key(key) {
            total += agg_cols.len() as f64; // spurious group
            terms += agg_cols.len();
        }
    }
    if terms == 0 {
        0.0
    } else {
        total / terms as f64
    }
}

/// Label for the six Fig.-12 operator classes.
pub fn operator_class(q: &Query) -> &'static str {
    let grouped = !q.group_by.is_empty();
    let func = q.select.iter().find_map(|s| match s {
        SelectItem::Aggregate(a) => Some(a.func),
        _ => None,
    });
    match (func, grouped) {
        (Some(AggFunc::Count), true) => "G+CNT",
        (Some(AggFunc::Count), false) => "CNT",
        (Some(AggFunc::Sum), true) => "G+SUM",
        (Some(AggFunc::Sum), false) => "SUM",
        (Some(AggFunc::Avg), true) => "G+AVG",
        (Some(AggFunc::Avg), false) => "AVG",
        (Some(AggFunc::Min | AggFunc::Max), true) => "G+EXT",
        (Some(AggFunc::Min | AggFunc::Max), false) => "EXT",
        (None, _) => "SPJ",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_db::sql::parse;
    use asqp_db::{Schema, ValueType};
    use std::collections::BTreeMap;

    fn db_pair() -> (Database, Database) {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::build(&[("g", ValueType::Str), ("x", ValueType::Int)]),
            )
            .unwrap();
        for i in 0..100i64 {
            let g = if i % 2 == 0 { "even" } else { "odd" };
            t.push_row(&[Value::Str(g.into()), Value::Int(i)]).unwrap();
        }
        // 10% uniform subset: every 10th row.
        let mut sel = BTreeMap::new();
        sel.insert("t".to_string(), (0..100).step_by(10).collect::<Vec<_>>());
        let sub = db.subset(&sel).unwrap();
        (db, sub)
    }

    #[test]
    fn count_scales_back_to_truth() {
        let (db, sub) = db_pair();
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        let approx = approximate_aggregate(&db, &sub, &q).unwrap();
        let truth = db.execute(&q).unwrap();
        let err = result_relative_error(&q, &approx, &truth);
        assert!(err < 0.05, "uniform 10% sample scales COUNT well: {err}");
    }

    #[test]
    fn avg_not_scaled() {
        let (db, sub) = db_pair();
        let q = parse("SELECT AVG(t.x) FROM t").unwrap();
        let approx = approximate_aggregate(&db, &sub, &q).unwrap();
        // subset = {0,10,...,90}, avg = 45; truth avg = 49.5.
        let a = approx.rows[0][0].as_f64().unwrap();
        assert!((a - 45.0).abs() < 1e-9);
        let truth = db.execute(&q).unwrap();
        let err = result_relative_error(&q, &approx, &truth);
        assert!(err < 0.1, "err = {err}");
    }

    #[test]
    fn group_by_scaling_and_missing_groups() {
        let (db, sub) = db_pair();
        let q = parse("SELECT t.g, COUNT(*) FROM t GROUP BY t.g").unwrap();
        let approx = approximate_aggregate(&db, &sub, &q).unwrap();
        let truth = db.execute(&q).unwrap();
        // Subset rows are all even (0,10,...,90) → "odd" group missing.
        assert_eq!(approx.rows.len(), 1);
        let err = result_relative_error(&q, &approx, &truth);
        // even group: pred 10*10=100 vs truth 50 → err capped at 1; odd
        // missing → 1. Average = (1 + 1)/2... even err = |100-50|/50 = 1.0.
        assert!(err > 0.5, "missing group must be punished: {err}");
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(5.0, 0.0), 1.0);
        assert!((relative_error(90.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(500.0, 100.0), 1.0, "capped at 1");
    }

    #[test]
    fn operator_classes() {
        assert_eq!(
            operator_class(&parse("SELECT COUNT(*) FROM t").unwrap()),
            "CNT"
        );
        assert_eq!(
            operator_class(&parse("SELECT t.g, SUM(t.x) FROM t GROUP BY t.g").unwrap()),
            "G+SUM"
        );
        assert_eq!(
            operator_class(&parse("SELECT AVG(t.x) FROM t").unwrap()),
            "AVG"
        );
        assert_eq!(operator_class(&parse("SELECT t.x FROM t").unwrap()), "SPJ");
    }

    #[test]
    fn spurious_groups_punished() {
        let q = parse("SELECT t.g, COUNT(*) FROM t GROUP BY t.g").unwrap();
        let truth = ResultSet {
            columns: vec!["t.g".into(), "COUNT(*)".into()],
            rows: vec![vec![Value::Str("a".into()), Value::Int(10)]],
        };
        let pred = ResultSet {
            columns: truth.columns.clone(),
            rows: vec![
                vec![Value::Str("a".into()), Value::Int(10)],
                vec![Value::Str("ghost".into()), Value::Int(5)],
            ],
        };
        let err = result_relative_error(&q, &pred, &truth);
        assert!((err - 0.5).abs() < 1e-12, "err = {err}");
    }
}
