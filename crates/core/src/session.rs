//! The user-facing inference session (paper §4.4 / Figure 1b): each query
//! is routed either to the approximation set or to the full database by the
//! answerability estimator; confidently-deviating queries accumulate and,
//! at three or more, trigger interest-drift fine-tuning (challenge C5).

use crate::aggregates::approximate_aggregate;
use crate::estimator::AnswerabilityEstimator;
use crate::model::{fine_tune, TrainedModel};
use asqp_db::{Database, DbResult, Query, ResultSet};
use asqp_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Where an answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnswerSource {
    ApproximationSet,
    FullDatabase,
}

/// Session telemetry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionStats {
    pub queries: usize,
    pub subset_answers: usize,
    pub full_db_answers: usize,
    pub fine_tunes: usize,
}

/// Session routing/drift policy (paper defaults: answerability threshold
/// 0.5; drift after 3 deviating queries with confidence ≥ 0.8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Predicted-score threshold below which the full DB is queried.
    pub answer_threshold: f64,
    /// A query "deviates" when its predicted score is below the answer
    /// threshold *and* the deviation confidence exceeds this value.
    pub drift_confidence: f64,
    /// Number of deviating queries that triggers fine-tuning.
    pub drift_trigger: usize,
    /// Disable automatic fine-tuning (drift queries still tracked).
    pub auto_fine_tune: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            answer_threshold: 0.5,
            drift_confidence: 0.8,
            drift_trigger: 3,
            auto_fine_tune: true,
        }
    }
}

/// A live exploration session over a trained model.
pub struct Session<'a> {
    full_db: &'a Database,
    pub model: TrainedModel,
    pub subset: Database,
    pub estimator: AnswerabilityEstimator,
    pub config: SessionConfig,
    pub stats: SessionStats,
    drift_queries: Vec<Query>,
}

impl<'a> Session<'a> {
    /// Materialise the approximation set and fit the estimator.
    pub fn new(
        full_db: &'a Database,
        model: TrainedModel,
        config: SessionConfig,
    ) -> DbResult<Self> {
        let subset = model.materialize(full_db, None)?;
        let estimator =
            AnswerabilityEstimator::fit(&model, full_db, &subset, model.config.metric_params())?;
        Ok(Session {
            full_db,
            model,
            subset,
            estimator,
            config,
            stats: SessionStats::default(),
            drift_queries: Vec::new(),
        })
    }

    /// Number of deviating queries currently accumulated.
    pub fn pending_drift(&self) -> usize {
        self.drift_queries.len()
    }

    /// Answer a query (Figure 1b): consult the estimator, route, and track
    /// drift. Aggregates answered from the subset are scale-corrected.
    /// With a telemetry recorder installed, each call emits the route
    /// decision and a subset-vs-full-DB latency observation.
    pub fn query(&mut self, q: &Query) -> DbResult<(ResultSet, AnswerSource)> {
        let _query_span = telemetry::span("session.query");
        let t0 = telemetry::enabled().then(Instant::now);
        self.stats.queries += 1;
        telemetry::counter("session.queries", 1);
        let pred = self.estimator.predict(q);
        telemetry::gauge("session.predicted_score", pred.score);
        let answerable = pred.score >= self.config.answer_threshold;

        if answerable {
            self.stats.subset_answers += 1;
            let rs = if q.is_aggregate() {
                approximate_aggregate(self.full_db, &self.subset, q)?
            } else {
                self.subset.execute(q)?
            };
            telemetry::counter("session.route.subset", 1);
            if let Some(t0) = t0 {
                telemetry::observe_duration("session.latency.subset_ns", t0.elapsed());
            }
            return Ok((rs, AnswerSource::ApproximationSet));
        }

        // Deviation: low predicted score. High confidence means the query
        // is *similar* to training yet predicted unanswerable — a genuine
        // gap; low confidence means it is simply far from the workload.
        // Both are drift signals; the paper gates on confidence ≥ 0.8,
        // which we read as deviation certainty (1 − predicted score).
        let deviation_certainty = 1.0 - pred.score;
        if deviation_certainty >= self.config.drift_confidence {
            self.drift_queries.push(q.clone());
            telemetry::counter("session.drift.detected", 1);
        }

        self.stats.full_db_answers += 1;
        let rs = self.full_db.execute(q)?;
        telemetry::counter("session.route.full_db", 1);
        if let Some(t0) = t0 {
            telemetry::observe_duration("session.latency.full_db_ns", t0.elapsed());
        }

        if self.config.auto_fine_tune && self.drift_queries.len() >= self.config.drift_trigger {
            self.run_fine_tune()?;
        }
        Ok((rs, AnswerSource::FullDatabase))
    }

    /// Force a fine-tuning pass on the accumulated drift queries.
    pub fn run_fine_tune(&mut self) -> DbResult<()> {
        if self.drift_queries.is_empty() {
            return Ok(());
        }
        let _ft_span = telemetry::span("session.fine_tune");
        telemetry::counter("session.fine_tune.runs", 1);
        let drift = std::mem::take(&mut self.drift_queries);
        // Boost each drift query to the weight mass of the average original.
        let boost = 1.0 / self.model.train_workload.len().max(1) as f64;
        self.model = fine_tune(self.full_db, &self.model, &drift, boost)?;
        self.subset = self.model.materialize(self.full_db, None)?;
        self.estimator = AnswerabilityEstimator::fit(
            &self.model,
            self.full_db,
            &self.subset,
            self.model.config.metric_params(),
        )?;
        self.stats.fine_tunes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{train, AsqpConfig};
    use asqp_data::{imdb, Scale};

    fn quick_config() -> AsqpConfig {
        let mut cfg = AsqpConfig::full(60, 20);
        cfg.preprocess.n_representatives = 6;
        cfg.preprocess.max_actions = 64;
        cfg.preprocess.per_query_cap = 40;
        cfg.trainer.num_workers = 2;
        cfg.trainer.steps_per_worker = 64;
        cfg.trainer.hidden = vec![32];
        cfg.iterations = 6;
        cfg
    }

    #[test]
    fn session_routes_known_queries_to_subset() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(12, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        // The unit-test budget (k=60 across 12 queries) yields fractions
        // around 0.3, so route with a threshold matched to that scale.
        let cfg = SessionConfig {
            answer_threshold: 0.25,
            ..SessionConfig::default()
        };
        let mut session = Session::new(&db, model, cfg).unwrap();

        let mut subset_hits = 0;
        for q in &w.queries {
            let (_, src) = session.query(q).unwrap();
            if src == AnswerSource::ApproximationSet {
                subset_hits += 1;
            }
        }
        assert!(
            subset_hits > 0,
            "some training queries must be answered from the subset"
        );
        assert_eq!(session.stats.queries, 12);
    }

    #[test]
    fn unknown_queries_fall_back_to_full_db_and_accumulate_drift() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(8, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        let cfg = SessionConfig {
            auto_fine_tune: false,
            ..SessionConfig::default()
        };
        let mut session = Session::new(&db, model, cfg).unwrap();

        // A MAS-style query the IMDB model has never seen (unknown tables
        // would fail execution, so use an IMDB table with an alien shape).
        let alien = asqp_db::sql::parse(
            "SELECT p.name FROM person p WHERE p.name LIKE 'zzz%' AND p.gender = 'f'",
        )
        .unwrap();
        let (_, src) = session.query(&alien).unwrap();
        assert_eq!(src, AnswerSource::FullDatabase);
        assert!(session.stats.full_db_answers >= 1);
    }

    #[test]
    fn fine_tune_triggers_after_drift_trigger_queries() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(8, 2);
        let model = train(&db, &w, &quick_config()).unwrap();
        let cfg = SessionConfig {
            drift_trigger: 2,
            ..SessionConfig::default()
        };
        let mut session = Session::new(&db, model, cfg).unwrap();

        let drift = [
            "SELECT p.name FROM person p WHERE p.gender = 'f' AND p.name LIKE 'q%'",
            "SELECT p.name FROM person p WHERE p.gender = 'm' AND p.name LIKE 'w%'",
            "SELECT p.name FROM person p WHERE p.name LIKE 'e%'",
        ];
        for t in drift {
            let q = asqp_db::sql::parse(t).unwrap();
            session.query(&q).unwrap();
        }
        assert!(
            session.stats.fine_tunes >= 1 || session.pending_drift() < 2,
            "drift accumulation must trigger fine-tuning: {:?}",
            session.stats
        );
    }

    #[test]
    fn aggregates_answered_from_subset_are_scaled() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(12, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        let cfg = SessionConfig {
            answer_threshold: 0.0, // force subset answering
            ..SessionConfig::default()
        };
        let mut session = Session::new(&db, model, cfg).unwrap();
        let agg =
            asqp_db::sql::parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 1900")
                .unwrap();
        let (rs, src) = session.query(&agg).unwrap();
        assert_eq!(src, AnswerSource::ApproximationSet);
        // Scaled count should be in the order of the true count, not the
        // raw subset count.
        let truth = db.execute(&agg).unwrap().rows[0][0].as_i64().unwrap() as f64;
        let pred = rs.rows[0][0].as_f64().unwrap();
        assert!(pred > 0.0 && pred <= truth * 20.0);
    }
}
