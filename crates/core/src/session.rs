//! The user-facing inference session (paper §4.4 / Figure 1b): each query
//! is routed either to the approximation set or to the full database by the
//! answerability estimator; confidently-deviating queries accumulate and,
//! at three or more *consecutive* misses, trigger interest-drift
//! fine-tuning (challenge C5). A confident hit — the estimator recognising
//! a query as answerable from `S` — breaks the miss streak and resets the
//! counter.
//!
//! The session is **thread-shareable**: all interior state (the
//! model-derived routing state, the drift tracker, the statistics) lives
//! behind interior locks, so `asqp-serve` can fan queries out from a pool
//! of worker threads over one `Arc<Session>`. The routing pipeline is also
//! decomposed into [`Session::plan`] / [`Session::answer_subset`] /
//! [`Session::answer_full`] / [`Session::finish`] so a serving layer can
//! interleave its own deadline and degradation logic between the routing
//! decision and the answer; [`Session::query`] composes them for the
//! simple synchronous path.
//!
//! Sessions also track **data drift**, which is distinct from interest
//! drift: interest drift means the *user* moved (their queries left the
//! trained region) and is answered by fine-tuning the model on the drift
//! queries; data drift means the *database* moved (rows were appended or
//! updated underneath the session) and is answered by
//! [`Session::observe_data`] — a targeted refresh that re-materialises
//! the approximation set and refits the estimator from the **same**
//! model, without any retraining. The state records the
//! [`Database::data_fingerprint`] it was built against, so staleness is
//! detected by a single fingerprint comparison.

use crate::aggregates::approximate_aggregate;
use crate::estimator::{AnswerabilityEstimator, Prediction};
use crate::model::{fine_tune, TrainedModel};
use asqp_db::{Database, DbResult, Query, ResultSet};
use asqp_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use std::time::Instant;

/// Where an answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnswerSource {
    ApproximationSet,
    FullDatabase,
}

/// Point-in-time snapshot of session telemetry (see [`Session::stats`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionStats {
    pub queries: usize,
    pub subset_answers: usize,
    pub full_db_answers: usize,
    pub fine_tunes: usize,
    /// Data-drift refreshes (same model re-materialised over new data),
    /// counted separately from interest-drift `fine_tunes`.
    #[serde(default)]
    pub data_refreshes: usize,
}

/// Session routing/drift policy (paper defaults: answerability threshold
/// 0.5; drift after 3 deviating queries with confidence ≥ 0.8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Predicted-score threshold below which the full DB is queried.
    pub answer_threshold: f64,
    /// A query "deviates" when its predicted score is below the answer
    /// threshold *and* the deviation confidence exceeds this value. A
    /// subset hit whose estimator confidence reaches the same bar resets
    /// the consecutive-miss counter.
    pub drift_confidence: f64,
    /// Number of consecutive deviating queries that triggers fine-tuning.
    pub drift_trigger: usize,
    /// Disable automatic fine-tuning (drift queries still tracked).
    pub auto_fine_tune: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            answer_threshold: 0.5,
            drift_confidence: 0.8,
            drift_trigger: 3,
            auto_fine_tune: true,
        }
    }
}

/// The model-derived routing state, replaced wholesale by fine-tuning.
/// Reached through [`Session::state`].
pub struct SessionState {
    pub model: TrainedModel,
    pub subset: Database,
    pub estimator: AnswerabilityEstimator,
    /// [`Database::data_fingerprint`] of the full database this state was
    /// materialised against; a mismatch with the live database means the
    /// subset and estimator describe stale data.
    pub data_fingerprint: u64,
}

impl SessionState {
    fn build(full_db: &Database, model: TrainedModel) -> DbResult<SessionState> {
        let data_fingerprint = full_db.data_fingerprint();
        let subset = model.materialize(full_db, None)?;
        let estimator =
            AnswerabilityEstimator::fit(&model, full_db, &subset, model.config.metric_params())?;
        Ok(SessionState {
            model,
            subset,
            estimator,
            data_fingerprint,
        })
    }
}

/// The estimator's verdict for one query: the interior routing plan a
/// serving layer acts on (and reports back through [`Session::finish`]).
#[derive(Debug, Clone, Copy)]
pub struct RoutePlan {
    pub prediction: Prediction,
    /// `true` → answer from the approximation set.
    pub answerable: bool,
}

#[derive(Default)]
struct Counters {
    queries: AtomicUsize,
    subset_answers: AtomicUsize,
    full_db_answers: AtomicUsize,
    fine_tunes: AtomicUsize,
    data_refreshes: AtomicUsize,
}

/// A live exploration session over a trained model, shareable across
/// threads (`&self` methods throughout).
pub struct Session {
    /// The full database answered against and fine-tuned over. Behind a
    /// lock so a data-drift refresh ([`Session::observe_data`]) can swap
    /// in the new snapshot together with the rebuilt routing state.
    full_db: RwLock<Arc<Database>>,
    pub config: SessionConfig,
    state: RwLock<SessionState>,
    /// Consecutive confidently-deviating queries since the last confident
    /// hit or fine-tune.
    drift: Mutex<Vec<Query>>,
    counters: Counters,
}

impl Session {
    /// Materialise the approximation set and fit the estimator.
    pub fn new(
        full_db: Arc<Database>,
        model: TrainedModel,
        config: SessionConfig,
    ) -> DbResult<Self> {
        let state = SessionState::build(&full_db, model)?;
        Ok(Session {
            full_db: RwLock::new(full_db),
            config,
            state: RwLock::new(state),
            drift: Mutex::new(Vec::new()),
            counters: Counters::default(),
        })
    }

    /// The full database this session currently falls back to (a cheap
    /// `Arc` snapshot; [`Session::observe_data`] may swap it later).
    pub fn full_db(&self) -> Arc<Database> {
        Arc::clone(&self.full_db.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Fingerprint of the data the current routing state was built on.
    pub fn data_fingerprint(&self) -> u64 {
        self.state().data_fingerprint
    }

    /// Read access to the model-derived state (estimator, subset, model).
    /// The guard blocks fine-tuning while held — keep it short-lived.
    pub fn state(&self) -> RwLockReadGuard<'_, SessionState> {
        self.state.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Snapshot of the session statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            subset_answers: self.counters.subset_answers.load(Ordering::Relaxed),
            full_db_answers: self.counters.full_db_answers.load(Ordering::Relaxed),
            fine_tunes: self.counters.fine_tunes.load(Ordering::Relaxed),
            data_refreshes: self.counters.data_refreshes.load(Ordering::Relaxed),
        }
    }

    /// Number of deviating queries currently accumulated.
    pub fn pending_drift(&self) -> usize {
        self.drift.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Consult the estimator and decide the route for `q` (pure: no
    /// statistics or drift bookkeeping — that happens in [`finish`]).
    ///
    /// [`finish`]: Session::finish
    pub fn plan(&self, q: &Query) -> RoutePlan {
        let prediction = self.state().estimator.predict(q);
        RoutePlan {
            prediction,
            answerable: prediction.score >= self.config.answer_threshold,
        }
    }

    /// Answer `q` from the approximation set. Aggregates are
    /// scale-corrected against the full database (§6.4).
    pub fn answer_subset(&self, q: &Query) -> DbResult<ResultSet> {
        let state = self.state();
        if q.is_aggregate() {
            approximate_aggregate(&self.full_db(), &state.subset, q)
        } else {
            state.subset.execute(q)
        }
    }

    /// Answer `q` from the full database.
    pub fn answer_full(&self, q: &Query) -> DbResult<ResultSet> {
        self.full_db().execute(q)
    }

    /// Record the outcome of one routed query: statistics, the
    /// consecutive-miss drift counter (a miss with deviation certainty
    /// ≥ `drift_confidence` extends the streak; an answerable query whose
    /// estimator confidence reaches the same bar resets it), and — at
    /// `drift_trigger` consecutive misses — automatic fine-tuning.
    /// Returns `true` when a fine-tune ran.
    pub fn finish(&self, q: &Query, plan: &RoutePlan) -> DbResult<bool> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        telemetry::counter("session.queries", 1);

        if plan.answerable {
            self.counters.subset_answers.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("session.route.subset", 1);
            // A confident hit breaks the miss streak: the estimator still
            // recognises the user's interest region, so the accumulated
            // deviations were noise, not drift.
            if plan.prediction.confidence >= self.config.drift_confidence {
                let mut drift = self.drift.lock().unwrap_or_else(|p| p.into_inner());
                if !drift.is_empty() {
                    telemetry::counter("session.drift.reset", 1);
                    drift.clear();
                }
            }
            return Ok(false);
        }

        self.counters
            .full_db_answers
            .fetch_add(1, Ordering::Relaxed);
        telemetry::counter("session.route.full_db", 1);

        // Deviation: low predicted score. High confidence means the query
        // is *similar* to training yet predicted unanswerable — a genuine
        // gap; low confidence means it is simply far from the workload.
        // Both are drift signals; the paper gates on confidence ≥ 0.8,
        // which we read as deviation certainty (1 − predicted score).
        let deviation_certainty = 1.0 - plan.prediction.score;
        let mut should_fine_tune = false;
        if deviation_certainty >= self.config.drift_confidence {
            let mut drift = self.drift.lock().unwrap_or_else(|p| p.into_inner());
            drift.push(q.clone());
            telemetry::counter("session.drift.detected", 1);
            should_fine_tune =
                self.config.auto_fine_tune && drift.len() >= self.config.drift_trigger;
        }
        if should_fine_tune {
            self.run_fine_tune()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Answer a query (Figure 1b): consult the estimator, route, and track
    /// drift. Aggregates answered from the subset are scale-corrected.
    /// With a telemetry recorder installed, each call emits the route
    /// decision and a subset-vs-full-DB latency observation.
    pub fn query(&self, q: &Query) -> DbResult<(ResultSet, AnswerSource)> {
        let _query_span = telemetry::span("session.query");
        let t0 = telemetry::enabled().then(Instant::now);
        let plan = self.plan(q);
        telemetry::gauge("session.predicted_score", plan.prediction.score);

        if plan.answerable {
            let rs = self.answer_subset(q)?;
            self.finish(q, &plan)?;
            if let Some(t0) = t0 {
                telemetry::observe_duration("session.latency.subset_ns", t0.elapsed());
            }
            return Ok((rs, AnswerSource::ApproximationSet));
        }

        let rs = self.answer_full(q)?;
        self.finish(q, &plan)?;
        if let Some(t0) = t0 {
            telemetry::observe_duration("session.latency.full_db_ns", t0.elapsed());
        }
        Ok((rs, AnswerSource::FullDatabase))
    }

    /// Force a fine-tuning pass on the accumulated drift queries. The new
    /// model is trained outside the state lock — concurrent readers keep
    /// routing against the old state until the atomic swap at the end.
    pub fn run_fine_tune(&self) -> DbResult<()> {
        // Taking the queries up front also serialises concurrent callers:
        // the second one sees an empty drift set and returns immediately.
        let drift = {
            let mut guard = self.drift.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        if drift.is_empty() {
            return Ok(());
        }
        let _ft_span = telemetry::span("session.fine_tune");
        telemetry::counter("session.fine_tune.runs", 1);
        let full_db = self.full_db();
        let old_model = self.state().model.clone();
        // Boost each drift query to the weight mass of the average original.
        let boost = 1.0 / old_model.train_workload.len().max(1) as f64;
        let new_model = fine_tune(&full_db, &old_model, &drift, boost)?;
        let new_state = SessionState::build(&full_db, new_model)?;
        *self.state.write().unwrap_or_else(|p| p.into_inner()) = new_state;
        self.counters.fine_tunes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Observe the live database for **data drift**: rows appended or
    /// updated since this session's routing state was materialised. A
    /// fingerprint match returns `false` immediately (the cheap steady
    /// state). On a mismatch the session runs a *targeted refresh* — the
    /// approximation set is re-materialised and the estimator refit from
    /// the **same** trained model over the new snapshot (no retraining;
    /// the user's interest region did not move, the data under it did) —
    /// and the new database replaces the old one for full-DB fallbacks.
    /// Returns `true` when a refresh ran.
    ///
    /// The rebuild happens outside the state lock, so concurrent readers
    /// keep routing against the old (internally consistent) state until
    /// the swap; a concurrent refresh to the same fingerprint is detected
    /// under the write lock and skipped.
    pub fn observe_data(&self, live: &Arc<Database>) -> DbResult<bool> {
        let live_fp = live.data_fingerprint();
        if live_fp == self.state().data_fingerprint {
            return Ok(false);
        }
        telemetry::counter("session.data_drift.detected", 1);
        let _refresh_span = telemetry::span("session.data_refresh");
        let model = self.state().model.clone();
        let new_state = SessionState::build(live, model)?;
        {
            // Lock order: state before full_db, matching `answer_subset`
            // (which reads full_db while holding the state guard).
            let mut state_guard = self.state.write().unwrap_or_else(|p| p.into_inner());
            if state_guard.data_fingerprint == live_fp {
                // Another thread refreshed to this snapshot while we were
                // building; ours is byte-identical, so drop it.
                return Ok(false);
            }
            let mut db_guard = self.full_db.write().unwrap_or_else(|p| p.into_inner());
            *db_guard = Arc::clone(live);
            *state_guard = new_state;
        }
        self.counters.data_refreshes.fetch_add(1, Ordering::Relaxed);
        telemetry::counter("session.data_refresh.runs", 1);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{train, AsqpConfig};
    use asqp_data::{imdb, Scale};

    fn quick_config() -> AsqpConfig {
        let mut cfg = AsqpConfig::full(60, 20);
        cfg.preprocess.n_representatives = 6;
        cfg.preprocess.max_actions = 64;
        cfg.preprocess.per_query_cap = 40;
        cfg.trainer.num_workers = 2;
        cfg.trainer.steps_per_worker = 64;
        cfg.trainer.hidden = vec![32];
        cfg.iterations = 6;
        cfg
    }

    fn alien_queries() -> Vec<Query> {
        [
            "SELECT p.name FROM person p WHERE p.gender = 'f' AND p.name LIKE 'q%'",
            "SELECT p.name FROM person p WHERE p.gender = 'm' AND p.name LIKE 'w%'",
            "SELECT p.name FROM person p WHERE p.name LIKE 'e%'",
            "SELECT p.name FROM person p WHERE p.name LIKE 'zzz%' AND p.gender = 'f'",
            "SELECT p.name FROM person p WHERE p.gender = 'f' AND p.name LIKE 'x%'",
        ]
        .iter()
        .map(|t| asqp_db::sql::parse(t).unwrap())
        .collect()
    }

    #[test]
    fn session_routes_known_queries_to_subset() {
        let db = Arc::new(imdb::generate(Scale::Tiny, 1));
        let w = imdb::workload(12, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        // The unit-test budget (k=60 across 12 queries) yields fractions
        // around 0.3, so route with a threshold matched to that scale.
        let cfg = SessionConfig {
            answer_threshold: 0.25,
            ..SessionConfig::default()
        };
        let session = Session::new(db, model, cfg).unwrap();

        let mut subset_hits = 0;
        for q in &w.queries {
            let (_, src) = session.query(q).unwrap();
            if src == AnswerSource::ApproximationSet {
                subset_hits += 1;
            }
        }
        assert!(
            subset_hits > 0,
            "some training queries must be answered from the subset"
        );
        assert_eq!(session.stats().queries, 12);
    }

    #[test]
    fn unknown_queries_fall_back_to_full_db_and_accumulate_drift() {
        let db = Arc::new(imdb::generate(Scale::Tiny, 1));
        let w = imdb::workload(8, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        let cfg = SessionConfig {
            auto_fine_tune: false,
            ..SessionConfig::default()
        };
        let session = Session::new(db, model, cfg).unwrap();

        // A MAS-style query the IMDB model has never seen (unknown tables
        // would fail execution, so use an IMDB table with an alien shape).
        let alien = asqp_db::sql::parse(
            "SELECT p.name FROM person p WHERE p.name LIKE 'zzz%' AND p.gender = 'f'",
        )
        .unwrap();
        let (_, src) = session.query(&alien).unwrap();
        assert_eq!(src, AnswerSource::FullDatabase);
        assert!(session.stats().full_db_answers >= 1);
    }

    #[test]
    fn fine_tune_triggers_after_drift_trigger_queries() {
        let db = Arc::new(imdb::generate(Scale::Tiny, 1));
        let w = imdb::workload(8, 2);
        let model = train(&db, &w, &quick_config()).unwrap();
        let cfg = SessionConfig {
            drift_trigger: 2,
            ..SessionConfig::default()
        };
        let session = Session::new(db, model, cfg).unwrap();

        for q in alien_queries().iter().take(3) {
            session.query(q).unwrap();
        }
        assert!(
            session.stats().fine_tunes >= 1 || session.pending_drift() < 2,
            "drift accumulation must trigger fine-tuning: {:?}",
            session.stats()
        );
    }

    /// Regression for the consecutive-miss semantics: a confident hit in
    /// the middle of a miss streak resets the counter, so the ≥3-miss
    /// fine-tune trigger only fires on three *consecutive* misses.
    #[test]
    fn confident_hit_resets_consecutive_miss_counter() {
        let db = Arc::new(imdb::generate(Scale::Tiny, 1));
        let w = imdb::workload(12, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        // drift_confidence 0.0: every miss extends the streak and every
        // hit (training queries have estimator confidence 1.0) resets it,
        // making the boundary deterministic.
        let cfg = SessionConfig {
            answer_threshold: 0.25,
            drift_confidence: 0.0,
            drift_trigger: 3,
            auto_fine_tune: true,
        };
        let session = Session::new(db, model, cfg).unwrap();

        let hit = w
            .queries
            .iter()
            .find(|q| session.plan(q).answerable)
            .expect("at least one training query routes to the subset")
            .clone();
        let aliens: Vec<Query> = alien_queries()
            .into_iter()
            .filter(|q| !session.plan(q).answerable)
            .collect();
        assert!(
            aliens.len() >= 3,
            "need ≥3 missing queries for the boundary"
        );

        // Two misses, then a confident hit: streak resets, no fine-tune.
        for q in aliens.iter().take(2) {
            session.query(q).unwrap();
        }
        assert_eq!(session.pending_drift(), 2);
        session.query(&hit).unwrap();
        assert_eq!(
            session.pending_drift(),
            0,
            "a confident hit must reset the consecutive-miss counter"
        );

        // Two more misses stay under the trigger (would have fired at 3
        // and 4 without the reset)...
        for q in aliens.iter().take(2) {
            session.query(q).unwrap();
        }
        assert_eq!(session.stats().fine_tunes, 0);
        assert_eq!(session.pending_drift(), 2);

        // ...and the third consecutive miss fires exactly at the boundary.
        session.query(&aliens[2]).unwrap();
        assert_eq!(session.stats().fine_tunes, 1);
        assert_eq!(session.pending_drift(), 0, "fine-tune consumes the streak");
    }

    /// Data drift (the database moved) must trigger a targeted refresh —
    /// same model, new materialisation — never an interest-drift retrain.
    #[test]
    fn data_drift_refreshes_without_retraining() {
        let db = Arc::new(imdb::generate(Scale::Tiny, 1));
        let w = imdb::workload(12, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        let cfg = SessionConfig {
            answer_threshold: 0.25,
            ..SessionConfig::default()
        };
        let session = Session::new(Arc::clone(&db), model, cfg).unwrap();
        let before = session.data_fingerprint();

        // Same snapshot → steady-state no-op.
        assert!(!session.observe_data(&db).unwrap());
        assert_eq!(session.stats().data_refreshes, 0);

        // Rewrite one row in place: contents identical, but the data
        // version moved, so the routing state is provably stale.
        let mut live = (*db).clone();
        let row = live.table("title").unwrap().row(0);
        live.update_rows("title", &[(0, row)]).unwrap();
        let live = Arc::new(live);
        assert_ne!(live.data_fingerprint(), before);

        assert!(session.observe_data(&live).unwrap());
        assert_eq!(session.stats().data_refreshes, 1);
        assert_eq!(session.stats().fine_tunes, 0, "refresh must not retrain");
        assert_eq!(session.data_fingerprint(), live.data_fingerprint());
        assert!(
            Arc::ptr_eq(&session.full_db(), &live),
            "full-DB fallbacks must move to the new snapshot"
        );

        // Observing the same snapshot again is a no-op, and queries still
        // route against the refreshed state.
        assert!(!session.observe_data(&live).unwrap());
        assert_eq!(session.stats().data_refreshes, 1);
        session.query(&w.queries[0]).unwrap();
    }

    #[test]
    fn aggregates_answered_from_subset_are_scaled() {
        let db = Arc::new(imdb::generate(Scale::Tiny, 1));
        let w = imdb::workload(12, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        let cfg = SessionConfig {
            answer_threshold: 0.0, // force subset answering
            ..SessionConfig::default()
        };
        let session = Session::new(db.clone(), model, cfg).unwrap();
        let agg =
            asqp_db::sql::parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 1900")
                .unwrap();
        let (rs, src) = session.query(&agg).unwrap();
        assert_eq!(src, AnswerSource::ApproximationSet);
        // Scaled count should be in the order of the true count, not the
        // raw subset count.
        let truth = db.execute(&agg).unwrap().rows[0][0].as_i64().unwrap() as f64;
        let pred = rs.rows[0][0].as_f64().unwrap();
        assert!(pred > 0.0 && pred <= truth * 20.0);
    }

    #[test]
    fn session_is_shareable_across_threads() {
        let db = Arc::new(imdb::generate(Scale::Tiny, 1));
        let w = imdb::workload(12, 1);
        let model = train(&db, &w, &quick_config()).unwrap();
        let cfg = SessionConfig {
            answer_threshold: 0.25,
            auto_fine_tune: false,
            ..SessionConfig::default()
        };
        let session = Arc::new(Session::new(db, model, cfg).unwrap());

        std::thread::scope(|s| {
            for t in 0..4 {
                let session = Arc::clone(&session);
                let queries = w.queries.clone();
                s.spawn(move || {
                    for q in queries.iter().skip(t).step_by(4) {
                        session.query(q).unwrap();
                    }
                });
            }
        });
        assert_eq!(session.stats().queries, 12);
        assert_eq!(
            session.stats().subset_answers + session.stats().full_db_answers,
            12
        );
    }
}
