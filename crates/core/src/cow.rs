//! Copy-on-write sharing of approximation sets between tenants.
//!
//! The paper's serving story is one analyst per approximation set, but
//! tenants whose workload embeddings cluster together explore the same
//! interest region — their learned sets are interchangeable until one of
//! them drifts. [`CowSession`] makes that sharing explicit: every tenant
//! in a cluster holds a `CowSession` over one shared base [`Session`]
//! (one materialised approximation set, one estimator, one model in
//! memory no matter how many tenants), and routing/answering delegates to
//! the base until the tenant's *own* consecutive-miss drift streak
//! trips. The first drift-triggered fine-tune then **forks**: the tenant
//! gets a private `Session` rebuilt around its drift queries, while the
//! base — and every other tenant still reading it — is left byte-for-byte
//! untouched. There is no write path to the shared state at all, so the
//! safety argument is structural, not lock-ordering.
//!
//! Fork identity is exposed through [`CowSession::share_epoch`]: `0`
//! means "still on the shared set" (two tenants of the same base with
//! epoch 0 answer subset queries identically, which is what lets the
//! serving layer batch their scans), and a forked tenant carries a
//! process-unique non-zero epoch so it never coalesces with anyone.
//!
//! **Data drift** forks the same way interest drift does, but for a
//! different reason and with a different remedy: when the live database
//! moves underneath a shared base (appends/updates bump its
//! [`data_fingerprint`](asqp_db::Database::data_fingerprint)),
//! [`CowSession::observe_data`] gives the observing tenant a private
//! session rebuilt from the base's **unchanged** model over the new data
//! — no fine-tuning, the base and its other tenants stay byte-for-byte
//! untouched, and the fork decision is a pure function of the two
//! fingerprints, so every replica of the same interleaving forks at the
//! same point. A tenant that already owns a private fork refreshes it in
//! place instead.

use crate::model::fine_tune;
use crate::session::{RoutePlan, Session, SessionConfig};
use asqp_db::{Database, DbResult, Query, ResultSet};
use asqp_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// The private fork: epoch and session are published *together* under
/// the fork lock, so a reader can never observe the fork at epoch 0 (or
/// the epoch without the fork) — see [`CowSession::snapshot`].
struct ForkState {
    epoch: u64,
    session: Arc<Session>,
}

/// Process-wide fork-epoch allocator: forked sessions need *unique*
/// epochs (so two forked tenants never batch together), not reproducible
/// ones — the epoch value never reaches scores or transcripts.
static NEXT_FORK_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Point-in-time per-tenant statistics (see [`CowSession::stats`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CowStats {
    pub queries: usize,
    pub subset_answers: usize,
    pub full_db_answers: usize,
    /// `true` once this tenant has forked off the shared set.
    pub forked: bool,
}

#[derive(Default)]
struct Counters {
    queries: AtomicUsize,
    subset_answers: AtomicUsize,
    full_db_answers: AtomicUsize,
}

/// One tenant's copy-on-write view over a shared approximation set.
///
/// Cheap to create (two `Arc` clones); the expensive work — materialising
/// a private set — happens only on the first drift-triggered fine-tune.
pub struct CowSession {
    base: Arc<Session>,
    config: SessionConfig,
    /// The private fork (epoch + session), present only after the first
    /// fine-tune.
    fork: RwLock<Option<ForkState>>,
    /// This tenant's consecutive confidently-deviating queries.
    drift: Mutex<Vec<Query>>,
    counters: Counters,
}

impl CowSession {
    /// Attach a tenant to a shared base session. `config` governs this
    /// tenant's own routing thresholds and drift policy (it may differ
    /// from the base's) and becomes the config of the private fork.
    pub fn new(base: Arc<Session>, config: SessionConfig) -> CowSession {
        CowSession {
            base,
            config,
            fork: RwLock::new(None),
            drift: Mutex::new(Vec::new()),
            counters: Counters::default(),
        }
    }

    /// The shared base this tenant started from.
    pub fn base(&self) -> &Arc<Session> {
        &self.base
    }

    /// Atomically observe `(share_epoch, routing session)`: `(0, base)`
    /// while shared, `(unique epoch, fork)` once forked. Both come from
    /// one read of the fork lock, so a concurrent fork can never be seen
    /// half-published — this is the snapshot the serving layer must key
    /// shared-scan batching on.
    pub fn snapshot(&self) -> (u64, Arc<Session>) {
        let guard = self.fork.read().unwrap_or_else(|p| p.into_inner());
        match guard.as_ref() {
            Some(fork) => (fork.epoch, Arc::clone(&fork.session)),
            None => (0, Arc::clone(&self.base)),
        }
    }

    /// The session this tenant currently routes against: the private fork
    /// once one exists, the shared base before that.
    pub fn active(&self) -> Arc<Session> {
        self.snapshot().1
    }

    /// True once this tenant has a private approximation set.
    pub fn is_forked(&self) -> bool {
        self.share_epoch() != 0
    }

    /// Scan-sharing identity: `0` while on the shared set (tenants of the
    /// same base with epoch 0 answer subset queries identically), unique
    /// and non-zero after forking. To key work on the epoch *and* execute
    /// against the matching session, use [`CowSession::snapshot`] instead
    /// of pairing this with [`CowSession::active`].
    pub fn share_epoch(&self) -> u64 {
        self.snapshot().0
    }

    /// Deviating queries accumulated towards this tenant's fork trigger.
    pub fn pending_drift(&self) -> usize {
        self.drift.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Snapshot of this tenant's statistics.
    pub fn stats(&self) -> CowStats {
        CowStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            subset_answers: self.counters.subset_answers.load(Ordering::Relaxed),
            full_db_answers: self.counters.full_db_answers.load(Ordering::Relaxed),
            forked: self.is_forked(),
        }
    }

    /// Route `q` against the active session, applying this tenant's own
    /// answerability threshold.
    pub fn plan(&self, q: &Query) -> RoutePlan {
        let prediction = self.active().state().estimator.predict(q);
        RoutePlan {
            prediction,
            answerable: prediction.score >= self.config.answer_threshold,
        }
    }

    /// Answer from the active approximation set.
    pub fn answer_subset(&self, q: &Query) -> DbResult<ResultSet> {
        self.active().answer_subset(q)
    }

    /// Answer from the full database (shared by base and fork).
    pub fn answer_full(&self, q: &Query) -> DbResult<ResultSet> {
        self.active().answer_full(q)
    }

    /// Record the outcome of one routed query, with the same
    /// consecutive-miss semantics as [`Session::finish`] — except that the
    /// drift streak is *per tenant* and the fine-tune it triggers forks a
    /// private session instead of mutating the shared one. Returns `true`
    /// when this call forked (or, post-fork, fine-tuned the fork).
    pub fn finish(&self, q: &Query, plan: &RoutePlan) -> DbResult<bool> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);

        if plan.answerable {
            self.counters.subset_answers.fetch_add(1, Ordering::Relaxed);
            if plan.prediction.confidence >= self.config.drift_confidence {
                let mut drift = self.drift.lock().unwrap_or_else(|p| p.into_inner());
                if !drift.is_empty() {
                    telemetry::counter("session.cow.drift.reset", 1);
                    drift.clear();
                }
            }
            return Ok(false);
        }

        self.counters
            .full_db_answers
            .fetch_add(1, Ordering::Relaxed);

        let deviation_certainty = 1.0 - plan.prediction.score;
        let mut should_fine_tune = false;
        if deviation_certainty >= self.config.drift_confidence {
            let mut drift = self.drift.lock().unwrap_or_else(|p| p.into_inner());
            drift.push(q.clone());
            telemetry::counter("session.cow.drift.detected", 1);
            should_fine_tune =
                self.config.auto_fine_tune && drift.len() >= self.config.drift_trigger;
        }
        if should_fine_tune {
            self.fork_fine_tune()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Force a fine-tune on the accumulated drift queries. On the first
    /// call this **forks**: the shared base is read (model clone) but
    /// never written, and the tenant's routing switches to a private
    /// session built around the drift queries. Later calls fine-tune the
    /// private fork in place (it is exclusively ours).
    pub fn fork_fine_tune(&self) -> DbResult<()> {
        // Taking the queries up front serialises concurrent callers: the
        // loser sees an empty drift set and returns immediately.
        let drift = {
            let mut guard = self.drift.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        if drift.is_empty() {
            return Ok(());
        }
        let active = self.active();
        let old_model = active.state().model.clone();
        let full_db = active.full_db();
        let boost = 1.0 / old_model.train_workload.len().max(1) as f64;
        let new_model = fine_tune(&full_db, &old_model, &drift, boost)?;
        let forked = Arc::new(Session::new(full_db, new_model, self.config.clone())?);
        let mut guard = self.fork.write().unwrap_or_else(|p| p.into_inner());
        match guard.as_mut() {
            Some(fork) => {
                // Post-fork refinement: the session is exclusively ours,
                // the epoch (already unique) stays.
                fork.session = forked;
                telemetry::counter("session.cow.refine", 1);
            }
            None => {
                // First fork: epoch and session become visible in the
                // same store, so no reader can key a scan at epoch 0 and
                // then execute it against the fork.
                let epoch = NEXT_FORK_EPOCH.fetch_add(1, Ordering::Relaxed);
                *guard = Some(ForkState {
                    epoch,
                    session: forked,
                });
                telemetry::counter("session.cow.fork", 1);
            }
        }
        Ok(())
    }

    /// Observe the live database for **data drift** — the tenant-side
    /// counterpart of [`Session::observe_data`]. While this tenant still
    /// shares the base, a stale fingerprint **forks**: the tenant gets a
    /// private session built from the base's unchanged model over `live`
    /// (a data refresh, not interest retraining — the drift streak is
    /// untouched), the base and its other tenants are never written. A
    /// tenant that already owns a fork refreshes it in place. Returns
    /// `true` when a fork or refresh happened.
    pub fn observe_data(&self, live: &Arc<Database>) -> DbResult<bool> {
        let (epoch, active) = self.snapshot();
        if live.data_fingerprint() == active.data_fingerprint() {
            return Ok(false);
        }
        if epoch != 0 {
            // The fork is exclusively ours: refresh it in place.
            telemetry::counter("session.cow.data_refresh", 1);
            return active.observe_data(live);
        }
        telemetry::counter("session.cow.data_drift.detected", 1);
        let model = active.state().model.clone();
        let refreshed = Arc::new(Session::new(Arc::clone(live), model, self.config.clone())?);
        let mut guard = self.fork.write().unwrap_or_else(|p| p.into_inner());
        if let Some(fork) = guard.as_ref() {
            // Lost a fork race: another thread published a private session
            // (with a possibly fine-tuned model) between our snapshot and
            // this lock. Its model supersedes the shared one — refresh it
            // rather than overwrite it.
            let session = Arc::clone(&fork.session);
            drop(guard);
            return session.observe_data(live);
        }
        let epoch = NEXT_FORK_EPOCH.fetch_add(1, Ordering::Relaxed);
        *guard = Some(ForkState {
            epoch,
            session: refreshed,
        });
        telemetry::counter("session.cow.data_fork", 1);
        Ok(true)
    }

    /// Answer a query end to end (plan → route → finish), the synchronous
    /// single-tenant path mirroring [`Session::query`].
    pub fn query(&self, q: &Query) -> DbResult<(ResultSet, bool)> {
        let plan = self.plan(q);
        let rs = if plan.answerable {
            self.answer_subset(q)?
        } else {
            self.answer_full(q)?
        };
        self.finish(q, &plan)?;
        Ok((rs, plan.answerable))
    }
}
