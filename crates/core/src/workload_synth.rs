//! Workload synthesis for the *unknown query workload* mode (paper §4.5):
//! queries are generated from table statistics — numeric ranges around
//! mean ± std, categorical filters sampled from the (popularity-weighted)
//! top values — plus joins discovered by value containment.

use asqp_db::{ColRef, Database, Expr, Query, TableStats, Value, ValueType, Workload};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// A discovered foreign-key-like edge: `from_table.from_col` values are
/// contained in (near-unique) `to_table.to_col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    pub from_table: String,
    pub from_col: String,
    pub to_table: String,
    pub to_col: String,
}

/// Detect joinable column pairs by value containment: the referenced column
/// must be near-unique and contain (a sample of) the referencing column's
/// values. String columns rely on containment alone; integer columns also
/// require a name affinity (`*_id` → `id`, or equal names) because dense
/// integer key ranges contain each other by accident.
pub fn detect_joins(db: &Database) -> Vec<JoinEdge> {
    const SAMPLE: usize = 32;
    const UNIQUENESS: f64 = 0.9;
    const CONTAINMENT: f64 = 0.9;

    // Memoised in the catalog: repeated calls (or a later synthesize pass)
    // reuse the same per-table statistics instead of rescanning.
    let stats: Vec<Arc<TableStats>> = db
        .table_names()
        .map(|n| db.table_stats(n).expect("name comes from the catalog"))
        .collect();
    let mut edges = Vec::new();

    for from in db.tables() {
        for (fci, fcol) in from.schema().columns().iter().enumerate() {
            if !matches!(fcol.ty, ValueType::Int | ValueType::Str) {
                continue;
            }
            for to in db.tables() {
                if to.name() == from.name() {
                    continue;
                }
                let Some(tci) = to
                    .schema()
                    .index_of(&fcol_join_target(&fcol.name, to, fcol.ty))
                else {
                    continue;
                };
                let tcol = to.schema().column(tci);
                if tcol.ty != fcol.ty {
                    continue;
                }
                // Referenced column must be near-unique.
                let tstats = stats
                    .iter()
                    .find(|s| s.table == to.name())
                    .expect("stats per table");
                let tcol_stats = &tstats.columns[tci];
                if tstats.row_count == 0
                    || (tcol_stats.distinct as f64) < UNIQUENESS * tstats.row_count as f64
                {
                    continue;
                }
                // Containment of a sample of referencing values.
                let distinct: HashSet<Value> =
                    (0..to.row_count()).map(|r| to.value(r, tci)).collect();
                let n = from.row_count();
                if n == 0 {
                    continue;
                }
                let step = (n / SAMPLE).max(1);
                let mut hit = 0usize;
                let mut seen = 0usize;
                for r in (0..n).step_by(step) {
                    let v = from.value(r, fci);
                    if v.is_null() {
                        continue;
                    }
                    seen += 1;
                    if distinct.contains(&v) {
                        hit += 1;
                    }
                }
                if seen > 0 && hit as f64 >= CONTAINMENT * seen as f64 {
                    edges.push(JoinEdge {
                        from_table: from.name().to_string(),
                        from_col: fcol.name.clone(),
                        to_table: to.name().to_string(),
                        to_col: tcol.name.clone(),
                    });
                }
            }
        }
    }
    edges
}

/// Name-affinity target: which column of `to` could `from_col` reference?
/// Integers need `x_id` → `id` or equal names; strings may also reference
/// `code`-style natural keys by containment alone.
fn fcol_join_target(from_col: &str, to: &asqp_db::Table, ty: ValueType) -> String {
    match ty {
        ValueType::Int => {
            if from_col.ends_with("_id") && to.schema().index_of("id").is_some() {
                "id".to_string()
            } else {
                from_col.to_string() // equal-name match
            }
        }
        _ => {
            // Strings: prefer an equal name, else a natural key column.
            if to.schema().index_of(from_col).is_some() {
                from_col.to_string()
            } else if to.schema().index_of("code").is_some() {
                "code".to_string()
            } else {
                from_col.to_string()
            }
        }
    }
}

/// Synthesise `n` SPJ queries from table statistics (paper §4.5): numeric
/// range filters around μ ± σ, categorical equality/IN over top values
/// (sampled with popularity), and containment-detected joins.
pub fn synthesize_workload(db: &Database, n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5f37);
    let stats: Vec<Arc<TableStats>> = db
        .table_names()
        .map(|n| db.table_stats(n).expect("name comes from the catalog"))
        .filter(|s| s.row_count > 0)
        .collect();
    let joins = detect_joins(db);
    let mut queries = Vec::with_capacity(n);
    if stats.is_empty() {
        return Workload::uniform(queries);
    }

    for i in 0..n {
        // Pick a table weighted by row count (big tables get queried more).
        let total_rows: usize = stats.iter().map(|s| s.row_count).sum();
        let mut pick = rng.random_range(0..total_rows.max(1));
        let mut ti = 0;
        for (j, s) in stats.iter().enumerate() {
            if pick < s.row_count {
                ti = j;
                break;
            }
            pick -= s.row_count;
        }
        let ts = &stats[ti];

        let mut b = Query::builder().from_as(&ts.table, "t");
        let mut filters: Vec<Expr> = Vec::new();
        let n_filters = 1 + (i % 2);
        let mut used: Vec<usize> = Vec::new();
        for _ in 0..n_filters {
            // Choose a column with usable statistics.
            let candidates: Vec<usize> = (0..ts.columns.len())
                .filter(|ci| !used.contains(ci))
                .filter(|&ci| {
                    let c = &ts.columns[ci];
                    c.distinct > 1 && (c.mean.is_some() || !c.top_values.is_empty())
                })
                .collect();
            if candidates.is_empty() {
                break;
            }
            let ci = candidates[rng.random_range(0..candidates.len())];
            used.push(ci);
            let c = &ts.columns[ci];
            let expr = match (c.ty, c.mean, c.std) {
                (ValueType::Int | ValueType::Float, Some(mean), Some(std)) => {
                    // Range around μ ± aσ.
                    let a = rng.random_range(0.2..1.5);
                    let centre = mean + rng.random_range(-1.0..1.0) * std;
                    let (lo, hi) = (centre - a * std, centre + a * std);
                    let (lo, hi) = if c.ty == ValueType::Int {
                        (Value::Int(lo.floor() as i64), Value::Int(hi.ceil() as i64))
                    } else {
                        (Value::Float(lo), Value::Float(hi))
                    };
                    Expr::Between {
                        expr: Box::new(Expr::col("t", &c.name)),
                        low: Box::new(Expr::Literal(lo)),
                        high: Box::new(Expr::Literal(hi)),
                        negated: false,
                    }
                }
                _ => {
                    // Categorical: sample top values with popularity weight.
                    let total: usize = c.top_values.iter().map(|(_, n)| n).sum();
                    let mut pick = rng.random_range(0..total.max(1));
                    let mut chosen = &c.top_values[0].0;
                    for (v, cnt) in &c.top_values {
                        if pick < *cnt {
                            chosen = v;
                            break;
                        }
                        pick -= cnt;
                    }
                    Expr::eq(Expr::col("t", &c.name), Expr::Literal(chosen.clone()))
                }
            };
            filters.push(expr);
        }

        // Occasionally join along a detected edge from this table.
        let edge = joins
            .iter()
            .find(|e| e.from_table == ts.table && i % 3 == 0);
        if let Some(e) = edge {
            b = b.from_as(&e.to_table, "j");
            b = b.join_on("t", &e.from_col, "j", &e.to_col);
        }

        // Project 2 random columns (or all for narrow tables).
        if ts.columns.len() > 2 {
            let c1 = rng.random_range(0..ts.columns.len());
            let mut c2 = rng.random_range(0..ts.columns.len());
            if c2 == c1 {
                c2 = (c2 + 1) % ts.columns.len();
            }
            b = b
                .select_col("t", &ts.columns[c1].name)
                .select_col("t", &ts.columns[c2].name);
        } else {
            b = b.select_star();
        }

        if let Some(f) = Expr::conjunction(filters) {
            b = b.filter(f);
        }
        queries.push(b.build());
        let _ = ColRef::bare("x");
    }
    Workload::uniform(queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_data::{flights, imdb, Scale};

    #[test]
    fn detects_flights_string_fks() {
        let db = flights::generate(Scale::Tiny, 1);
        let edges = detect_joins(&db);
        let has = |f: &str, fc: &str, t: &str, tc: &str| {
            edges
                .iter()
                .any(|e| e.from_table == f && e.from_col == fc && e.to_table == t && e.to_col == tc)
        };
        assert!(has("flights", "carrier", "carriers", "code"), "{edges:?}");
        assert!(has("flights", "origin", "airports", "code"), "{edges:?}");
    }

    #[test]
    fn detects_imdb_int_fks_with_name_affinity() {
        let db = imdb::generate(Scale::Tiny, 1);
        let edges = detect_joins(&db);
        // movie_id → title.id fails the name test (by design), but
        // company_id → company.id and person_id → person.id hold.
        let has = |f: &str, fc: &str, t: &str| {
            edges
                .iter()
                .any(|e| e.from_table == f && e.from_col == fc && e.to_table == t)
        };
        assert!(has("movie_companies", "company_id", "company"), "{edges:?}");
        assert!(has("cast_info", "person_id", "person"), "{edges:?}");
    }

    #[test]
    fn synthesized_queries_execute_and_mostly_return_rows() {
        let db = flights::generate(Scale::Tiny, 1);
        let w = synthesize_workload(&db, 20, 7);
        assert_eq!(w.len(), 20);
        let mut nonempty = 0;
        for (q, _) in w.iter() {
            let r = db.execute(q).expect("synthesized query must be valid");
            if !r.rows.is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 10, "nonempty = {nonempty}/20");
    }

    #[test]
    fn synthesis_deterministic() {
        let db = imdb::generate(Scale::Tiny, 2);
        let a = synthesize_workload(&db, 10, 3);
        let b = synthesize_workload(&db, 10, 3);
        let sa: Vec<String> = a.queries.iter().map(|q| q.to_sql()).collect();
        let sb: Vec<String> = b.queries.iter().map(|q| q.to_sql()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn empty_database_yields_empty_workload() {
        let db = Database::new();
        let w = synthesize_workload(&db, 5, 1);
        assert!(w.is_empty());
    }
}
