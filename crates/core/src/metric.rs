//! The approximation-quality metric (paper Eq. 1).
//!
//! ```text
//! score(S) = Σ_q  w(q) · min(1, |q(S)| / min(F, |q(T)|))
//! ```
//!
//! with `Σ w(q) = 1`. (The paper's formula carries an extra `1/|Q|` factor
//! in front; with normalised weights that factor would bound every score by
//! `1/|Q|`, while all scores reported in §6 lie in `[0, 1]` — so the factor
//! is evidently the weight normalisation itself, and we implement it as
//! such.) A query whose full answer is empty contributes its full weight:
//! the empty subset answers it perfectly.

use asqp_db::{Database, DbResult, Workload};
use serde::{Deserialize, Serialize};

/// Metric parameters: the frame size `F` (how many tuples a user can
/// cognitively process; 10–500 in practice, 50 by default per §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricParams {
    pub frame_size: usize,
}

impl Default for MetricParams {
    fn default() -> Self {
        MetricParams { frame_size: 50 }
    }
}

impl MetricParams {
    pub fn new(frame_size: usize) -> Self {
        MetricParams { frame_size }
    }

    /// The denominator cap for one query: `min(F, |q(T)|)`.
    pub fn cap(&self, full_count: usize) -> usize {
        self.frame_size.min(full_count)
    }

    /// Per-query score contribution `min(1, |q(S)| / min(F, |q(T)|))`.
    pub fn query_fraction(&self, subset_count: usize, full_count: usize) -> f64 {
        let cap = self.cap(full_count);
        if cap == 0 {
            return 1.0; // empty truth is perfectly approximated
        }
        (subset_count as f64 / cap as f64).min(1.0)
    }
}

/// Result counts of a workload against the *full* database — computed once
/// and reused, since `|q(T)|` is the expensive half of the metric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullCounts {
    pub counts: Vec<usize>,
}

impl FullCounts {
    /// `|q(T)|` per workload query, via the database's memoised cardinality
    /// cache — repeated scoring runs against one full database (Fig. 2-style
    /// baseline sweeps) execute each distinct query only once.
    pub fn compute(db: &Database, workload: &Workload) -> DbResult<FullCounts> {
        let counts = workload
            .queries
            .iter()
            .map(|q| db.cached_row_count(q))
            .collect::<DbResult<Vec<_>>>()?;
        Ok(FullCounts { counts })
    }
}

/// Score a materialised approximation set against a workload, given
/// precomputed full counts (Eq. 1).
pub fn score_with_counts(
    subset: &Database,
    workload: &Workload,
    full: &FullCounts,
    params: MetricParams,
) -> DbResult<f64> {
    assert_eq!(
        workload.len(),
        full.counts.len(),
        "full counts must align with the workload"
    );
    let mut total = 0.0;
    for ((q, w), &full_count) in workload.iter().zip(&full.counts) {
        let sub_count = subset.execute(q)?.rows.len();
        total += w * params.query_fraction(sub_count, full_count);
    }
    Ok(total)
}

/// Convenience wrapper that computes full counts internally.
pub fn score(
    db: &Database,
    subset: &Database,
    workload: &Workload,
    params: MetricParams,
) -> DbResult<f64> {
    let full = FullCounts::compute(db, workload)?;
    score_with_counts(subset, workload, &full, params)
}

/// Per-query fractions (used by the estimator's ground truth and Fig. 5).
pub fn per_query_fractions(
    subset: &Database,
    workload: &Workload,
    full: &FullCounts,
    params: MetricParams,
) -> DbResult<Vec<f64>> {
    workload
        .queries
        .iter()
        .zip(&full.counts)
        .map(|(q, &fc)| Ok(params.query_fraction(subset.execute(q)?.rows.len(), fc)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_db::{Query, Schema, Value, ValueType};
    use std::collections::BTreeMap;

    fn db_with_range(n: i64) -> Database {
        let mut db = Database::new();
        let t = db
            .create_table("t", Schema::build(&[("x", ValueType::Int)]))
            .unwrap();
        for i in 0..n {
            t.push_row(&[Value::Int(i)]).unwrap();
        }
        db
    }

    fn workload_lt(bounds: &[i64]) -> Workload {
        Workload::uniform(
            bounds
                .iter()
                .map(|&b| {
                    asqp_db::sql::parse(&format!("SELECT t.x FROM t WHERE t.x < {b}")).unwrap()
                })
                .collect(),
        )
    }

    #[test]
    fn perfect_subset_scores_one() {
        let db = db_with_range(100);
        let w = workload_lt(&[10, 20]);
        let s = score(&db, &db, &w, MetricParams::new(50)).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_subset_scores_zero_when_queries_nonempty() {
        let db = db_with_range(100);
        let sub = db.subset(&BTreeMap::new()).unwrap();
        let w = workload_lt(&[10, 20]);
        let s = score(&db, &sub, &w, MetricParams::new(50)).unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn frame_size_caps_needed_tuples() {
        let db = db_with_range(1000);
        // Subset containing just x in [0, 50).
        let mut sel = BTreeMap::new();
        sel.insert("t".to_string(), (0..50usize).collect::<Vec<_>>());
        let sub = db.subset(&sel).unwrap();
        // Query returns 500 rows on the full DB, 50 on the subset. With
        // F = 50 the cap is 50, so the subset is perfect.
        let w = workload_lt(&[500]);
        let s = score(&db, &sub, &w, MetricParams::new(50)).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        // With F = 100 the cap is 100, so the subset covers half.
        let s = score(&db, &sub, &w, MetricParams::new(100)).unwrap();
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn small_results_weight_each_tuple_heavily() {
        let db = db_with_range(100);
        let w = workload_lt(&[2]); // full result: {0, 1}
        let mut sel = BTreeMap::new();
        sel.insert("t".to_string(), vec![0usize]);
        let sub = db.subset(&sel).unwrap();
        let s = score(&db, &sub, &w, MetricParams::new(50)).unwrap();
        assert!((s - 0.5).abs() < 1e-12, "one of two result tuples = 0.5");
    }

    #[test]
    fn weights_respected() {
        let db = db_with_range(100);
        let q1 = asqp_db::sql::parse("SELECT t.x FROM t WHERE t.x < 2").unwrap();
        let q2 = asqp_db::sql::parse("SELECT t.x FROM t WHERE t.x >= 50").unwrap();
        let w = Workload::weighted(vec![q1, q2], vec![0.9, 0.1]);
        // Subset answers q1 fully, q2 not at all.
        let mut sel = BTreeMap::new();
        sel.insert("t".to_string(), vec![0usize, 1]);
        let sub = db.subset(&sel).unwrap();
        let s = score(&db, &sub, &w, MetricParams::new(50)).unwrap();
        assert!((s - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_counts_as_answered() {
        let db = db_with_range(10);
        let w = workload_lt(&[-5]); // empty result on the full DB
        let sub = db.subset(&BTreeMap::new()).unwrap();
        let s = score(&db, &sub, &w, MetricParams::new(50)).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_subset() {
        let db = db_with_range(200);
        let w = workload_lt(&[40, 120, 77]);
        let params = MetricParams::new(30);
        let mut last = -1.0;
        for take in [0usize, 10, 50, 100, 200] {
            let mut sel = BTreeMap::new();
            sel.insert("t".to_string(), (0..take).collect::<Vec<_>>());
            let sub = db.subset(&sel).unwrap();
            let s = score(&db, &sub, &w, params).unwrap();
            assert!(s >= last - 1e-12, "score must grow with the subset");
            last = s;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_align() {
        let db = db_with_range(100);
        let w = workload_lt(&[2, 200]);
        let full = FullCounts::compute(&db, &w).unwrap();
        assert_eq!(full.counts, vec![2, 100]);
        let mut sel = BTreeMap::new();
        sel.insert("t".to_string(), vec![0usize]);
        let sub = db.subset(&sel).unwrap();
        let fr = per_query_fractions(&sub, &w, &full, MetricParams::new(50)).unwrap();
        assert!((fr[0] - 0.5).abs() < 1e-12);
        assert!((fr[1] - 0.02).abs() < 1e-12);
        let _ = Query::scan("t");
    }
}
