//! Criterion micro-benchmarks for the performance-critical paths called
//! out in DESIGN.md §5: query execution (full DB vs approximation set),
//! hash joins, embeddings, the incremental reward tracker, PPO iterations
//! and SPN estimation.

use asqp_baselines::Spn;
use asqp_bench::workloads;
use asqp_core::{preprocess, CoverageTracker, PreprocessConfig};
use asqp_data::Scale;
use asqp_db::{execute_with_options, Database, ExecMode, ExecOptions, Query};
use asqp_embed::Embedder;
use asqp_rl::{AgentKind, Environment, ToyCoverageEnv, Trainer, TrainerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_query_execution(c: &mut Criterion) {
    let db = asqp_data::imdb::generate(Scale::Small, 1);
    let workload = asqp_data::imdb::workload(12, 1);
    let join_q = asqp_db::sql::parse(
        "SELECT t.title, p.name FROM title t, cast_info ci, person p \
         WHERE t.id = ci.movie_id AND ci.person_id = p.id AND t.production_year > 2000",
    )
    .unwrap();
    let scan_q = asqp_db::sql::parse(
        "SELECT t.title FROM title t WHERE t.production_year BETWEEN 1990 AND 2005",
    )
    .unwrap();

    // Approximation set: a 1% random subset for a stable comparison target.
    let mut ran = asqp_baselines::RandomSampling { seed: 1 };
    use asqp_baselines::Baseline;
    let out = ran
        .build(
            &db,
            &workload,
            db.total_rows() / 100,
            asqp_core::MetricParams::new(50),
        )
        .unwrap();
    let sub = out.materialize(&db).unwrap();

    let mut g = c.benchmark_group("query_execution");
    g.sample_size(20);
    g.bench_function("filter_scan_full_db", |b| {
        b.iter(|| black_box(db.execute(&scan_q).unwrap().rows.len()))
    });
    g.bench_function("three_way_join_full_db", |b| {
        b.iter(|| black_box(db.execute(&join_q).unwrap().rows.len()))
    });
    g.bench_function("three_way_join_approx_set", |b| {
        b.iter(|| black_box(sub.execute(&join_q).unwrap().rows.len()))
    });
    g.finish();
}

fn run_opts(db: &Database, q: &Query, opts: ExecOptions) -> usize {
    execute_with_options(db, q, opts).unwrap().result.rows.len()
}

/// Vectorized vs row-oriented executor on the paths DESIGN.md §5 entry 6
/// names: selective scans, zone-map pruning and the sharded join probe.
fn bench_vectorized_exec(c: &mut Criterion) {
    let db = workloads::star_db(100_000);
    let vec_opts = ExecOptions::default();
    let vec_seq = ExecOptions {
        mode: ExecMode::Vectorized,
        shards: 1,
        ..ExecOptions::default()
    };
    let vec_sharded = ExecOptions {
        mode: ExecMode::Vectorized,
        shards: 4,
        ..ExecOptions::default()
    };
    let row_opts = ExecOptions::row_oriented();

    // Selective conjunctive scan over the 100K-row fact table (~3% pass).
    let scan_q = workloads::scan_query();
    let mut g = c.benchmark_group("scan");
    g.sample_size(20);
    g.bench_function("vectorized_vs_row/vectorized", |b| {
        b.iter(|| black_box(run_opts(&db, &scan_q, vec_opts)))
    });
    g.bench_function("vectorized_vs_row/row_oriented", |b| {
        b.iter(|| black_box(run_opts(&db, &scan_q, row_opts)))
    });

    // Zone-map pruning: the same narrow range over the clustered `id`
    // column skips ~98% of morsels; over the shuffled `qty`-correlated
    // `amount` column nothing can be skipped.
    let clustered_q = workloads::clustered_query(100_000);
    let unclustered_q = workloads::unclustered_query();
    g.bench_function("zonemap_prune/clustered", |b| {
        b.iter(|| black_box(run_opts(&db, &clustered_q, vec_opts)))
    });
    g.bench_function("zonemap_prune/unclustered", |b| {
        b.iter(|| black_box(run_opts(&db, &unclustered_q, vec_opts)))
    });
    g.finish();

    // Three-table star join with a 100K-row probe side.
    let join_q = workloads::join_query();
    let mut g = c.benchmark_group("join");
    g.sample_size(15);
    g.bench_function("parallel_probe/vectorized_sharded", |b| {
        b.iter(|| black_box(run_opts(&db, &join_q, vec_sharded)))
    });
    g.bench_function("parallel_probe/vectorized_sequential", |b| {
        b.iter(|| black_box(run_opts(&db, &join_q, vec_seq)))
    });
    g.bench_function("parallel_probe/row_oriented", |b| {
        b.iter(|| black_box(run_opts(&db, &join_q, row_opts)))
    });
    g.finish();
}

fn bench_embeddings(c: &mut Criterion) {
    let embedder = Embedder::new(128);
    let q = asqp_db::sql::parse(
        "SELECT t.title FROM title t, cast_info ci WHERE t.id = ci.movie_id \
         AND t.production_year > 1995 AND t.kind = 'movie'",
    )
    .unwrap();
    let db = asqp_data::imdb::generate(Scale::Tiny, 1);
    let table = db.table("title").unwrap();
    let row = table.row(0);

    let mut g = c.benchmark_group("embeddings");
    g.bench_function("embed_query", |b| {
        b.iter(|| black_box(embedder.embed_query(&q)))
    });
    g.bench_function("embed_tuple", |b| {
        b.iter(|| black_box(embedder.embed_tuple(table.schema(), &row)))
    });
    g.finish();
}

fn bench_reward_tracker(c: &mut Criterion) {
    let db = asqp_data::imdb::generate(Scale::Small, 1);
    let w = asqp_data::imdb::workload(28, 1);
    let cfg = PreprocessConfig {
        max_actions: 512,
        ..PreprocessConfig::default()
    };
    let space = Arc::new(preprocess(&db, &w, &cfg).unwrap().action_space);
    let n = space.len();

    let mut g = c.benchmark_group("reward");
    g.bench_function("incremental_apply_retract", |b| {
        let mut tracker = CoverageTracker::new(Arc::clone(&space));
        tracker.set_full_batch();
        let mut i = 0usize;
        b.iter(|| {
            let a = i % n;
            i += 1;
            let (d, _) = tracker.apply(a, 1);
            tracker.apply(a, -1);
            black_box(d)
        })
    });
    g.bench_function("episode_of_64_actions", |b| {
        let mut tracker = CoverageTracker::new(Arc::clone(&space));
        tracker.set_full_batch();
        b.iter(|| {
            tracker.reset_coverage();
            let mut total = 0.0;
            for a in 0..64.min(n) {
                total += tracker.apply(a, 1).0;
            }
            black_box(total)
        })
    });
    g.finish();
}

fn bench_ppo(c: &mut Criterion) {
    let env = ToyCoverageEnv::new(vec![0.5; 64], 8);
    let cfg = TrainerConfig {
        agent: AgentKind::Ppo,
        num_workers: 1,
        steps_per_worker: 64,
        minibatch_size: 32,
        update_epochs: 2,
        hidden: vec![64],
        ..TrainerConfig::default()
    };
    let mut g = c.benchmark_group("rl");
    g.sample_size(10);
    g.bench_function("ppo_train_iteration_64steps", |b| {
        let mut trainer = Trainer::new(cfg.clone(), env.state_dim(), env.action_count());
        b.iter(|| black_box(trainer.train_iteration(&env).mean_episode_reward))
    });
    g.finish();
}

fn bench_spn(c: &mut Criterion) {
    let db = asqp_data::flights::generate(Scale::Small, 1);
    let q = asqp_db::sql::parse(
        "SELECT f.carrier, COUNT(*) FROM flights f WHERE f.distance >= 800 GROUP BY f.carrier",
    )
    .unwrap();
    let mut g = c.benchmark_group("spn");
    g.sample_size(10);
    g.bench_function("learn_30k_rows", |b| {
        b.iter(|| black_box(Spn::learn(db.table("flights").unwrap()).n_rows))
    });
    let spn = Spn::learn(db.table("flights").unwrap());
    g.bench_function("estimate_grouped_count", |b| {
        b.iter(|| black_box(spn.estimate(&q).unwrap().rows.len()))
    });
    // Reference: exact execution of the same aggregate.
    g.bench_function("exact_grouped_count", |b| {
        b.iter(|| black_box(db.execute(&q).unwrap().rows.len()))
    });
    g.finish();
}

fn bench_preprocess(c: &mut Criterion) {
    let db = asqp_data::imdb::generate(Scale::Tiny, 1);
    let w = asqp_data::imdb::workload(16, 1);
    let cfg = PreprocessConfig::default();
    let mut g = c.benchmark_group("preprocess");
    g.sample_size(10);
    g.bench_function("full_pipeline_tiny", |b| {
        b.iter(|| black_box(preprocess(&db, &w, &cfg).unwrap().action_space.len()))
    });
    g.finish();
}

fn bench_sql(c: &mut Criterion) {
    let text = "SELECT t.title, p.name FROM title AS t, cast_info AS c, person AS p \
                WHERE t.id = c.movie_id AND c.person_id = p.id AND t.production_year \
                BETWEEN 1990 AND 2005 AND p.gender = 'f' ORDER BY t.title LIMIT 100";
    let mut g = c.benchmark_group("sql");
    g.bench_function("parse_three_way_join", |b| {
        b.iter(|| black_box(asqp_db::sql::parse(text).unwrap().from.len()))
    });
    let _ = Database::new();
    g.finish();
}

criterion_group!(
    benches,
    bench_query_execution,
    bench_vectorized_exec,
    bench_embeddings,
    bench_reward_tracker,
    bench_ppo,
    bench_spn,
    bench_preprocess,
    bench_sql
);
criterion_main!(benches);
