//! **Fig. 10 — effect of the training-set size**: (a) score and (b) setup
//! time as the share of training queries actually executed shrinks
//! {100%, 75%, 50%, 25%}.
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig10_trainset
//! ```

use asqp_bench::*;
use asqp_core::FullCounts;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct TrainsetPoint {
    share: f64,
    score: f64,
    setup_secs: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 10 — score & time vs training-set share (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let db = asqp_data::imdb::generate(env.scale, env.seed);
    let workload = asqp_data::imdb::workload(60, env.seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
    let (train_full, test_w) = workload.split(0.7, &mut rng);
    let counts = FullCounts::compute(&db, &test_w).expect("counts");
    let k = env.default_k(&db);

    let mut table = ReportTable::new(
        "Fig. 10 — ASQP-RL vs training share",
        &["train share", "score", "setup"],
    );
    let mut points = Vec::new();
    for share in [1.0f64, 0.75, 0.5, 0.25] {
        let train_w = train_full.truncate_frac(share);
        let cfg = scaled_config(&env, k, 50);
        let (m, _) =
            measure_asqp(&db, &train_w, &test_w, &counts, &cfg, "ASQP-RL").expect("trains");
        println!(
            "  share {share:.2} ({} queries): score {:.3}, setup {}",
            train_w.len(),
            m.score,
            fmt_secs(m.setup_secs)
        );
        table.row(vec![
            format!("{:.0}%", share * 100.0),
            format!("{:.3}", m.score),
            fmt_secs(m.setup_secs),
        ]);
        points.push(TrainsetPoint {
            share,
            score: m.score,
            setup_secs: m.setup_secs,
        });
    }
    print_table(&table);
    save_json("fig10_trainset", &points);

    let full = &points[0];
    let quarter = points.last().unwrap();
    println!(
        "\n25% of the training queries keeps {:.0}% of the quality at {:.0}% of the time",
        100.0 * quarter.score / full.score.max(1e-9),
        100.0 * quarter.setup_secs / full.setup_secs.max(1e-9)
    );
}
