//! **Fig. 5 — Answers-estimation quality**: the answerability estimator's
//! precision and recall as the share of training queries shrinks
//! {100%, 75%, 50%}, plus the paper's two full-system fallback variants
//! (query the DB when the prediction falls below 0.6 / 0.8).
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig05_estimator
//! ```

use asqp_bench::*;
use asqp_core::{per_query_fractions, AnswerabilityEstimator, FullCounts};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct EstimatorRow {
    train_share: f64,
    precision: f64,
    recall: f64,
}

#[derive(Serialize)]
struct FallbackRow {
    threshold: f64,
    avg_score: f64,
    query_avg_secs: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 5 — estimator quality (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let db = asqp_data::imdb::generate(env.scale, env.seed);
    let workload = asqp_data::imdb::workload(60, env.seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
    let (train_full, test_w) = workload.split(0.7, &mut rng);
    let k = env.default_k(&db);
    let test_counts = FullCounts::compute(&db, &test_w).expect("counts");

    // Part 1: precision/recall vs share of training queries used.
    let mut table = ReportTable::new(
        "Fig. 5 — estimator precision/recall vs training share",
        &["train share", "precision", "recall"],
    );
    let mut rows = Vec::new();
    for share in [1.0f64, 0.75, 0.5] {
        let train_w = train_full.truncate_frac(share);
        let cfg = scaled_config(&env, k, 50);
        let model = asqp_core::train(&db, &train_w, &cfg).expect("trains");
        let sub = model.materialize(&db, None).expect("materialises");
        let est = AnswerabilityEstimator::fit(&model, &db, &sub, cfg.metric_params())
            .expect("estimator fits");
        let truths = per_query_fractions(&sub, &test_w, &test_counts, cfg.metric_params())
            .expect("fractions");
        let (precision, recall) = est.precision_recall(&test_w.queries, &truths);
        println!("  share {share:.2}: precision {precision:.2} recall {recall:.2}");
        table.row(vec![
            format!("{:.0}%", share * 100.0),
            format!("{precision:.2}"),
            format!("{recall:.2}"),
        ]);
        rows.push(EstimatorRow {
            train_share: share,
            precision,
            recall,
        });
    }
    print_table(&table);

    // Part 2: full-system fallback — query the real DB whenever the
    // estimator predicts below the threshold; report average achieved
    // score and the time to answer 10 queries.
    let cfg = scaled_config(&env, k, 50);
    let model = asqp_core::train(&db, &train_full, &cfg).expect("trains");
    let sub = model.materialize(&db, None).expect("materialises");
    let est = AnswerabilityEstimator::fit(&model, &db, &sub, cfg.metric_params())
        .expect("estimator fits");
    let truths =
        per_query_fractions(&sub, &test_w, &test_counts, cfg.metric_params()).expect("fractions");

    let mut table2 = ReportTable::new(
        "Fig. 5 — DB-fallback variants",
        &["fallback below", "avg score", "QueryAvg(10q)"],
    );
    let mut fb_rows = Vec::new();
    for threshold in [0.0f64, 0.6, 0.8] {
        // Queries routed to the DB achieve a perfect score, at DB cost.
        let mut total_score = 0.0;
        let t0 = std::time::Instant::now();
        let mut timed = 0usize;
        for (qi, q) in test_w.queries.iter().enumerate() {
            let routed_to_db = est.predict(q).score < threshold;
            total_score += if routed_to_db { 1.0 } else { truths[qi] };
            if timed < 10 {
                if routed_to_db {
                    db.execute(q).expect("runs");
                } else {
                    sub.execute(q).expect("runs");
                }
                timed += 1;
            }
        }
        let avg_score = total_score / test_w.len() as f64;
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "  threshold {threshold:.1}: avg score {avg_score:.3}, 10 queries in {}",
            fmt_secs(secs)
        );
        table2.row(vec![
            format!("{threshold:.1}"),
            format!("{avg_score:.3}"),
            fmt_secs(secs),
        ]);
        fb_rows.push(FallbackRow {
            threshold,
            avg_score,
            query_avg_secs: secs,
        });
    }
    print_table(&table2);
    save_json("fig05_estimator", &(rows, fb_rows));
}
