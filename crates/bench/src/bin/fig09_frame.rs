//! **Fig. 9 — effect of the frame size F**: score as F sweeps over
//! {25, 50, 75, 100} with the memory budget fixed. Larger frames demand
//! more tuples per query, so every method degrades; ASQP-RL should stay on
//! top throughout.
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig09_frame
//! ```

use asqp_bench::*;
use asqp_core::{FullCounts, MetricParams};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    method: String,
    frame: usize,
    score: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 9 — score vs frame size F (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let db = asqp_data::imdb::generate(env.scale, env.seed);
    let workload = asqp_data::imdb::workload(40, env.seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
    let (train_w, test_w) = workload.split(0.7, &mut rng);
    let counts = FullCounts::compute(&db, &test_w).expect("counts");
    let k = env.default_k(&db);
    let frames = [25usize, 50, 75, 100];

    let mut table = ReportTable::new(
        "Fig. 9 — score vs F (k fixed)",
        &["method", "F=25", "F=50", "F=75", "F=100"],
    );
    let mut points = Vec::new();

    let mut asqp_scores = Vec::new();
    for &f in &frames {
        let cfg = scaled_config(&env, k, f);
        let (m, _) =
            measure_asqp(&db, &train_w, &test_w, &counts, &cfg, "ASQP-RL").expect("trains");
        asqp_scores.push(m.score);
        points.push(SweepPoint {
            method: "ASQP-RL".into(),
            frame: f,
            score: m.score,
        });
    }
    println!("  ASQP-RL: {asqp_scores:?}");
    table.row(
        std::iter::once("ASQP-RL".to_string())
            .chain(asqp_scores.iter().map(|s| format!("{s:.3}")))
            .collect(),
    );

    for mut b in fast_roster(&env) {
        let mut scores = Vec::new();
        for &f in &frames {
            let m = measure_baseline(
                &db,
                &train_w,
                &test_w,
                &counts,
                k,
                MetricParams::new(f),
                b.as_mut(),
            )
            .expect("builds");
            scores.push(m.score);
            points.push(SweepPoint {
                method: b.name().into(),
                frame: f,
                score: m.score,
            });
        }
        println!("  {:<5}: {scores:?}", b.name());
        table.row(
            std::iter::once(b.name().to_string())
                .chain(scores.iter().map(|s| format!("{s:.3}")))
                .collect(),
        );
    }
    print_table(&table);
    save_json("fig09_frame", &points);

    // Shape: scores weakly decrease in F for ASQP (harder problem).
    let dec = asqp_scores
        .windows(2)
        .filter(|w| w[1] <= w[0] + 0.03)
        .count();
    println!(
        "\nASQP monotonicity in F: {dec}/3 steps non-increasing ({})",
        if dec >= 2 {
            "expected shape ✓"
        } else {
            "noisy"
        }
    );
}
