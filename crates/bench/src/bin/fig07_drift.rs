//! **Fig. 7 — fine-tuning under interest drift**: the workload is split
//! into three interest clusters (k-means on query embeddings); the model
//! trains on cluster 1 only, the "user" then walks through test queries of
//! clusters 1 → 2 → 3, and fine-tuning on each newly-revealed cluster's
//! training queries restores quality.
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig07_drift
//! ```

use asqp_bench::*;
use asqp_core::{fine_tune, score};
use asqp_db::Workload;
use asqp_embed::{kmeans, Embedder};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct DriftStep {
    step: usize,
    cluster: usize,
    fine_tuned: bool,
    score_on_current_cluster: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 7 — interest-drift fine-tuning (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let db = asqp_data::imdb::generate(env.scale, env.seed);
    let workload = asqp_data::imdb::workload(60, env.seed);

    // Cluster the workload into three interests (paper: clustering on the
    // embedded queries so new clusters induce genuine drift).
    let embedder = Embedder::new(128);
    let points: Vec<Vec<f32>> = workload
        .queries
        .iter()
        .map(|q| embedder.embed_query(q))
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
    let clustering = kmeans(&points, 3, 40, &mut rng);

    // Train/test split inside each cluster (every 4th *of the cluster* is
    // held out, so every cluster gets test queries).
    let mut cluster_train: Vec<Vec<asqp_db::Query>> = vec![Vec::new(); 3];
    let mut cluster_test: Vec<Vec<asqp_db::Query>> = vec![Vec::new(); 3];
    let mut seen = [0usize; 3];
    for (qi, q) in workload.queries.iter().enumerate() {
        let c = clustering.assignment[qi];
        if seen[c] % 4 == 0 {
            cluster_test[c].push(q.clone());
        } else {
            cluster_train[c].push(q.clone());
        }
        seen[c] += 1;
    }
    for c in 0..3 {
        println!(
            "  cluster {c}: {} train / {} test queries",
            cluster_train[c].len(),
            cluster_test[c].len()
        );
    }

    let k = env.default_k(&db);
    let cfg = scaled_config(&env, k, 50);
    let params = cfg.metric_params();

    // Initial model: cluster 1 only.
    let mut model =
        asqp_core::train(&db, &Workload::uniform(cluster_train[0].clone()), &cfg).expect("trains");

    let mut table = ReportTable::new(
        "Fig. 7 — score on the active cluster's test queries",
        &["step", "active cluster", "fine-tuned?", "score"],
    );
    let mut steps = Vec::new();
    let mut step = 0usize;
    for cluster in 0..3 {
        let test_w = Workload::uniform(cluster_test[cluster].clone());
        if test_w.is_empty() {
            continue;
        }

        // Before fine-tuning on this cluster (drift moment for clusters 1+).
        let sub = model.materialize(&db, None).expect("materialises");
        let before = score(&db, &sub, &test_w, params).expect("scores");
        table.row(vec![
            step.to_string(),
            (cluster + 1).to_string(),
            "no".into(),
            format!("{before:.3}"),
        ]);
        steps.push(DriftStep {
            step,
            cluster: cluster + 1,
            fine_tuned: false,
            score_on_current_cluster: before,
        });
        step += 1;

        if cluster > 0 {
            // The estimator flags the drift; fine-tune on the new cluster's
            // training queries (paper: triggered by ≥3 confident misses).
            model = fine_tune(&db, &model, &cluster_train[cluster], 0.1).expect("fine-tunes");
            let sub = model.materialize(&db, None).expect("materialises");
            let after = score(&db, &sub, &test_w, params).expect("scores");
            println!(
                "  cluster {}: {before:.3} -> {after:.3} after fine-tuning",
                cluster + 1
            );
            table.row(vec![
                step.to_string(),
                (cluster + 1).to_string(),
                "yes".into(),
                format!("{after:.3}"),
            ]);
            steps.push(DriftStep {
                step,
                cluster: cluster + 1,
                fine_tuned: true,
                score_on_current_cluster: after,
            });
            step += 1;
        } else {
            println!("  cluster 1 (trained): {before:.3}");
        }
    }
    print_table(&table);
    save_json("fig07_drift", &steps);

    // Shape check: fine-tuning improves drifted clusters.
    let improvements: Vec<(f64, f64)> = steps
        .windows(2)
        .filter(|w| !w[0].fine_tuned && w[1].fine_tuned && w[0].cluster == w[1].cluster)
        .map(|w| (w[0].score_on_current_cluster, w[1].score_on_current_cluster))
        .collect();
    let improved = improvements.iter().filter(|(b, a)| a > b).count();
    println!(
        "\nfine-tuning improved {}/{} drifted clusters ({})",
        improved,
        improvements.len(),
        if improved == improvements.len() {
            "✓"
        } else {
            "partial"
        }
    );
}
