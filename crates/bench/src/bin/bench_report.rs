//! `bench_report` — the CI perf-regression harness.
//!
//! Runs the gated executor benches (scan / zone-map / join), plus
//! informational RL, session and preprocess benches, with a
//! [`MemoryRecorder`] installed so the
//! report carries telemetry counters (morsels pruned, routing mix, rollout
//! throughput) next to the medians. Output is machine-readable JSON,
//! diffable against a checked-in baseline:
//!
//! ```text
//! bench_report [--reduced] [--baseline <path>] [--tolerance <x>] [--out <path>]
//! ```
//!
//! * `--reduced`    CI-sized dataset (20K-row fact table, fewer samples)
//! * `--baseline`   compare against this report; exit 1 on regression
//! * `--tolerance`  gate multiplier (default 1.5 = fail above 1.5×)
//! * `--out`        where to write the report (default `results/bench_report.json`)

use asqp_bench::gate::{compare, BenchReport, SCHEMA_VERSION};
use asqp_bench::measure::{calibration_ns, measure, BenchResult};
use asqp_bench::workloads;
use asqp_core::{preprocess, AsqpConfig, PreprocessConfig, Session, SessionConfig};
use asqp_db::zonemap::TableZones;
use asqp_db::{
    execute_with_options, plan_query, Database, ExecMode, ExecOptions, OptimizerMode, Query,
    StatsAccum,
};
use asqp_rl::{AgentKind, Environment, ToyCoverageEnv, Trainer, TrainerConfig};
use asqp_serve::{
    run_mt_sim, run_sim, run_stream, FaultPlan, MirrorBackend, MtSimConfig, RetryPolicy,
    ServeConfig, Server, SimConfig, StreamConfig,
};
use asqp_telemetry::MemoryRecorder;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    reduced: bool,
    baseline: Option<String>,
    tolerance: f64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        reduced: false,
        baseline: None,
        tolerance: 1.5,
        out: "results/bench_report.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reduced" => args.reduced = true,
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?);
            }
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                args.tolerance = v.parse().map_err(|_| format!("invalid tolerance '{v}'"))?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--help" | "-h" => {
                return Err("usage: bench_report [--reduced] [--baseline <path>] \
                     [--tolerance <x>] [--out <path>]"
                    .into())
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn run_exec(db: &Database, q: &Query, opts: ExecOptions) -> usize {
    execute_with_options(db, q, opts).unwrap().result.rows.len()
}

fn exec_benches(fact_rows: usize, samples: usize, out: &mut Vec<BenchResult>) {
    let db = workloads::star_db(fact_rows);
    let vec_opts = ExecOptions::default();
    let vec_seq = ExecOptions {
        mode: ExecMode::Vectorized,
        shards: 1,
        ..ExecOptions::default()
    };
    let vec_sharded = ExecOptions {
        mode: ExecMode::Vectorized,
        shards: 4,
        ..ExecOptions::default()
    };
    let row_opts = ExecOptions::row_oriented();

    let scan_q = workloads::scan_query();
    let clustered_q = workloads::clustered_query(fact_rows);
    let unclustered_q = workloads::unclustered_query();
    let join_q = workloads::join_query();
    let warmup = (samples / 4).max(2);

    out.push(measure("scan/vectorized", warmup, samples, || {
        run_exec(&db, &scan_q, vec_opts)
    }));
    out.push(measure("scan/row_oriented", warmup, samples, || {
        run_exec(&db, &scan_q, row_opts)
    }));
    out.push(measure("zonemap/clustered", warmup, samples, || {
        run_exec(&db, &clustered_q, vec_opts)
    }));
    out.push(measure("zonemap/unclustered", warmup, samples, || {
        run_exec(&db, &unclustered_q, vec_opts)
    }));
    out.push(measure("join/sharded", warmup, samples, || {
        run_exec(&db, &join_q, vec_sharded)
    }));
    out.push(measure("join/sequential", warmup, samples, || {
        run_exec(&db, &join_q, vec_seq)
    }));
    out.push(measure("join/row_oriented", warmup, samples, || {
        run_exec(&db, &join_q, row_opts)
    }));
}

/// Gated optimizer and plan-cache benches.
///
/// * `db/optimizer/reorder_*` — the selective star join planned cost-based
///   vs. with the legacy greedy heuristic (same executor either way).
/// * `db/optimizer/limit_*` — a selective scan with `LIMIT`, with and
///   without scan-level limit pushdown.
/// * `db/plan_cache/{hit,miss}` — one planned query with a warm cache vs.
///   a cache cleared before every execution (plan-from-scratch cost).
/// * `db/plan_cache/rl_loop_{on,off}` — a reward-evaluation-shaped
///   templated query mix over an approximation subset, cache on vs. off:
///   the inner-loop iteration time the ISSUE's acceptance bar measures.
fn optimizer_benches(fact_rows: usize, samples: usize, out: &mut Vec<BenchResult>) {
    let db = workloads::star_db(fact_rows);
    let cost = ExecOptions {
        plan_cache: false,
        ..ExecOptions::default()
    };
    let greedy = ExecOptions {
        optimizer: OptimizerMode::Heuristic,
        plan_cache: false,
        ..ExecOptions::default()
    };
    let cached = ExecOptions {
        plan_cache: true,
        ..ExecOptions::default()
    };
    let warmup = (samples / 4).max(2);

    let join_q = workloads::selective_join_query();
    out.push(measure(
        "db/optimizer/reorder_cost",
        warmup,
        samples,
        || run_exec(&db, &join_q, cost),
    ));
    out.push(measure(
        "db/optimizer/reorder_greedy",
        warmup,
        samples,
        || run_exec(&db, &join_q, greedy),
    ));

    let limit_q = workloads::limited_scan_query();
    out.push(measure(
        "db/optimizer/limit_pushdown",
        warmup,
        samples,
        || run_exec(&db, &limit_q, cost),
    ));
    out.push(measure(
        "db/optimizer/limit_unpushed",
        warmup,
        samples,
        || run_exec(&db, &limit_q, greedy),
    ));

    // Planning cost in isolation: a warm cache returns memoised decisions,
    // a cleared one re-lowers, re-rewrites and re-costs the join order.
    db.plan_cache().clear();
    plan_query(&db, &join_q, true).unwrap(); // warm the single entry
    out.push(measure("db/plan_cache/hit", warmup, samples, || {
        plan_query(&db, &join_q, true).unwrap().join_order.len()
    }));
    out.push(measure("db/plan_cache/miss", warmup, samples, || {
        db.plan_cache().clear();
        plan_query(&db, &join_q, true).unwrap().join_order.len()
    }));

    // The RL inner loop: score one candidate subset against a templated
    // workload (literals vary, shapes repeat), as `score_with_counts` does
    // per reward evaluation. Approximation sets are *small* (that is the
    // paper's point), so per-query planning is a real fraction of reward
    // evaluation — the cache has to amortise it across the sweep.
    let mix = workloads::rl_loop_queries(if fact_rows >= 50_000 { 24 } else { 12 });
    let selection: std::collections::BTreeMap<String, Vec<usize>> = [
        (
            "events".to_string(),
            (0..fact_rows).step_by(40).collect::<Vec<_>>(),
        ),
        (
            "users".to_string(),
            (0..(fact_rows / 100).max(8)).collect::<Vec<_>>(),
        ),
        (
            "items".to_string(),
            (0..(fact_rows / 50).max(8)).collect::<Vec<_>>(),
        ),
    ]
    .into_iter()
    .collect();
    let subset = db.subset(&selection).expect("subset of the star schema");
    subset.plan_cache().clear();
    out.push(measure(
        "db/plan_cache/rl_loop_off",
        warmup,
        samples,
        || {
            mix.iter()
                .map(|q| run_exec(&subset, q, cost))
                .sum::<usize>()
        },
    ));
    mix.iter().for_each(|q| {
        run_exec(&subset, q, cached);
    });
    out.push(measure("db/plan_cache/rl_loop_on", warmup, samples, || {
        mix.iter()
            .map(|q| run_exec(&subset, q, cached))
            .sum::<usize>()
    }));
}

/// Gated NN-kernel and PPO-update benches (see `workloads::nn_matmul_inputs`
/// / `workloads::ppo_update_fixture`): `nn_matmul/square` tracks the raw
/// GEMM the training loop leans on, `ppo_update/minibatches` the sharded
/// minibatch update path with rollout collection hoisted out of the timer.
fn nn_benches(reduced: bool, gemm_samples: usize, slow_samples: usize, out: &mut Vec<BenchResult>) {
    let dim = if reduced { 128 } else { 256 };
    let (a, b) = workloads::nn_matmul_inputs(dim);
    let warmup = (gemm_samples / 4).max(2);
    out.push(measure("nn_matmul/square", warmup, gemm_samples, || {
        a.matmul(&b).at(0, 0)
    }));

    let (mut trainer, buf) = workloads::ppo_update_fixture(reduced);
    out.push(measure("ppo_update/minibatches", 1, slow_samples, || {
        trainer.update(&buf).0
    }));
}

fn rl_bench(samples: usize, out: &mut Vec<BenchResult>) {
    let env = ToyCoverageEnv::new(vec![0.5; 64], 8);
    let cfg = TrainerConfig {
        agent: AgentKind::Ppo,
        num_workers: 1,
        steps_per_worker: 64,
        minibatch_size: 32,
        update_epochs: 2,
        hidden: vec![64],
        ..TrainerConfig::default()
    };
    let mut trainer = Trainer::new(cfg, env.state_dim(), env.action_count());
    out.push(measure("rl/ppo_iteration", 1, samples, || {
        trainer.train_iteration(&env).mean_episode_reward
    }));
}

fn quick_asqp_config() -> AsqpConfig {
    let mut cfg = AsqpConfig::full(60, 20);
    cfg.preprocess.n_representatives = 6;
    cfg.preprocess.max_actions = 64;
    cfg.preprocess.per_query_cap = 40;
    cfg.trainer.num_workers = 2;
    cfg.trainer.steps_per_worker = 64;
    cfg.trainer.hidden = vec![32];
    cfg.iterations = 6;
    cfg
}

fn session_bench(samples: usize, out: &mut Vec<BenchResult>) {
    let db = asqp_data::imdb::generate(asqp_data::Scale::Tiny, 1);
    let w = asqp_data::imdb::workload(12, 1);
    let model = asqp_core::train(&db, &w, &quick_asqp_config()).expect("training succeeds");
    let cfg = SessionConfig {
        answer_threshold: 0.25,
        auto_fine_tune: false,
        ..SessionConfig::default()
    };
    let session = Session::new(Arc::new(db), model, cfg).expect("session builds");
    out.push(measure("session/query_mix", 1, samples, || {
        let mut rows = 0usize;
        for q in &w.queries {
            rows += session.query(q).unwrap().0.rows.len();
        }
        rows
    }));
}

/// Gated serving benches. `serve/throughput` pushes a 64-request mix
/// through the bounded worker pool with fault injection disabled — it
/// tracks the cost of admission, routing, dispatch and reply plumbing on
/// top of raw execution. `serve/sim_chaos` runs the deterministic
/// discrete-event chaos simulation (virtual clock, no sleeps): pure
/// compute, so it gates the chaos machinery itself.
fn serve_benches(reduced: bool, samples: usize, out: &mut Vec<BenchResult>) {
    let fact_rows = if reduced { 5_000 } else { 20_000 };
    let db = Arc::new(workloads::star_db(fact_rows));
    let server = Server::start(
        MirrorBackend::single(db, 50),
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            deadline_ns: 0,
            retry: RetryPolicy::default(),
            faults: FaultPlan::disabled(),
        },
    );
    let mix: Vec<Query> = [
        workloads::scan_query(),
        workloads::clustered_query(fact_rows),
        workloads::unclustered_query(),
    ]
    .into_iter()
    .cycle()
    .take(64)
    .collect();
    let warmup = (samples / 4).max(1);
    out.push(measure("serve/throughput", warmup, samples, || {
        let tickets: Vec<_> = mix
            .iter()
            .map(|q| {
                server
                    .submit(q.clone())
                    .expect("queue depth is above the burst")
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().expect("no faults injected").rows.rows.len())
            .sum::<usize>()
    }));
    server.shutdown();

    let sim_cfg = SimConfig {
        requests: if reduced { 256 } else { 1024 },
        ..SimConfig::chaos(7)
    };
    out.push(measure("serve/sim_chaos", warmup, samples, || {
        run_sim(&sim_cfg).log.len()
    }));

    // Multi-tenant replay: trace generation + kmeans clustering + the
    // sharded event loop with COW forking and shared-scan batching, all
    // on the virtual clock — deterministic, hence gateable. The reported
    // median is the wall cost of simulating the whole population.
    let mt_cfg = MtSimConfig::standard(7, if reduced { 5_000 } else { 20_000 });
    out.push(measure("serve/multitenant", warmup, samples, || {
        let r = run_mt_sim(&mt_cfg);
        assert!(r.lossless(), "multi-tenant sim lost requests");
        r.stats.resolved() as usize
    }));
}

/// Gated living-data benches: the cost of keeping statistics and zone
/// maps current across a 1% ingest batch, maintained vs. rebuilt from
/// scratch on the grown table, plus the deterministic streaming driver
/// end to end.
///
/// Maintenance and rebuild are compared at the accumulator / zone-map
/// level: deriving `TableStats` from an accumulator costs the same on
/// either path, so including it would only dilute the asymmetry the
/// acceptance bar is about — absorbing a batch is O(batch × columns)
/// while a rebuild pass is O(rows × columns).
fn incremental_benches(
    reduced: bool,
    fact_rows: usize,
    samples: usize,
    out: &mut Vec<BenchResult>,
) {
    let old = workloads::star_db(fact_rows);
    let batch = workloads::ingest_batch(fact_rows, 1);
    let mut grown = old.clone();
    grown
        .append_rows("events", &batch)
        .expect("batch matches the fact schema");
    let t_old = old.table("events").expect("fixture table");
    let t_new = grown.table("events").expect("fixture table");
    let old_rows = t_old.row_count();
    let warmup = (samples / 4).max(2);

    // Re-absorbing the same batch inflates the value counts but touches
    // exactly the same map entries, so the timing stays representative.
    let mut acc = StatsAccum::from_table(t_old);
    out.push(measure(
        "db/incremental/stats_maintain",
        warmup,
        samples,
        || {
            acc.absorb_rows(t_new, old_rows);
            t_new.row_count() - old_rows
        },
    ));
    out.push(measure(
        "db/incremental/stats_rebuild",
        warmup,
        samples,
        || {
            let _ = StatsAccum::from_table(t_new);
            t_new.row_count()
        },
    ));

    let zones_old = TableZones::build(t_old);
    out.push(measure(
        "db/incremental/zonemap_extend",
        warmup,
        samples,
        || zones_old.extended(t_new, old_rows),
    ));
    out.push(measure(
        "db/incremental/zonemap_rebuild",
        warmup,
        samples,
        || TableZones::build(t_new),
    ));

    // The whole living-data pipeline: seeded ingest + in-place updates +
    // fault-injected serving + periodic view refreshes, no sleeps.
    let mut stream_cfg = StreamConfig::chaos(7);
    if reduced {
        stream_cfg.ops = 48;
    }
    out.push(measure("serve/streaming", warmup, samples, || {
        run_stream(&stream_cfg).expect("stream run").log.len()
    }));
}

fn preprocess_bench(samples: usize, out: &mut Vec<BenchResult>) {
    let db = asqp_data::imdb::generate(asqp_data::Scale::Tiny, 1);
    let w = asqp_data::imdb::workload(16, 1);
    let cfg = PreprocessConfig::default();
    out.push(measure("preprocess/tiny", 1, samples, || {
        preprocess(&db, &w, &cfg).unwrap().action_space.len()
    }));
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let recorder = Arc::new(MemoryRecorder::new());
    asqp_telemetry::install(recorder.clone());

    let (fact_rows, exec_samples, slow_samples) = if args.reduced {
        (20_000, 15, 3)
    } else {
        (100_000, 25, 5)
    };

    eprintln!(
        "bench_report: fact_rows={fact_rows} samples={exec_samples} reduced={}",
        args.reduced
    );
    let calibration = calibration_ns();
    let mut benches: Vec<BenchResult> = Vec::new();
    exec_benches(fact_rows, exec_samples, &mut benches);
    optimizer_benches(fact_rows, exec_samples, &mut benches);
    nn_benches(args.reduced, exec_samples, slow_samples, &mut benches);
    rl_bench(slow_samples, &mut benches);
    session_bench(slow_samples, &mut benches);
    serve_benches(args.reduced, exec_samples, &mut benches);
    incremental_benches(args.reduced, fact_rows, exec_samples, &mut benches);
    preprocess_bench(slow_samples, &mut benches);

    asqp_telemetry::uninstall();
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        reduced: args.reduced,
        calibration_ns: calibration,
        benches: benches.into_iter().map(Into::into).collect(),
        telemetry: recorder.report(),
    };

    for b in &report.benches {
        eprintln!(
            "  {:<24} median {:>12} ns  ({} samples)",
            b.name, b.median_ns, b.samples
        );
    }

    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, report.to_json_pretty()) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[saved {}]", args.out);

    if let Some(path) = &args.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        match compare(&baseline, &report, args.tolerance) {
            Ok(outcome) => {
                for l in &outcome.lines {
                    eprintln!(
                        "  gate {:<24} {:>6.2}x {}",
                        l.name,
                        l.ratio,
                        if l.regressed {
                            "REGRESSED"
                        } else if l.gated {
                            "ok"
                        } else {
                            "(info)"
                        }
                    );
                }
                if !outcome.passed() {
                    eprintln!("perf gate FAILED (tolerance {:.2}x):", args.tolerance);
                    for f in outcome.failures() {
                        eprintln!("  {f}");
                    }
                    return ExitCode::FAILURE;
                }
                eprintln!("perf gate passed (tolerance {:.2}x)", args.tolerance);
            }
            Err(e) => {
                eprintln!("cannot compare reports: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
