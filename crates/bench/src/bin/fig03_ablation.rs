//! **Fig. 3 — RL ablation study**: environments {GSL, DRP, DRP+GSL} ×
//! agents {ASQP-RL, −ppo (A2C), −ppo −ac (REINFORCE)} on IMDB and MAS.
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig03_ablation
//! ```

use asqp_bench::*;
use asqp_core::{EnvKind, FullCounts};
use asqp_rl::AgentKind;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    dataset: String,
    environment: &'static str,
    agent: &'static str,
    score: f64,
    total_secs: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 3 — RL ablation (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let envs = [
        (EnvKind::Gsl, "GSL"),
        (EnvKind::Drp, "DRP"),
        (EnvKind::DrpGsl, "DRP+GSL"),
    ];
    let agents = [
        (AgentKind::Ppo, "ASQP-RL"),
        (AgentKind::A2c, "ASQP-RL -ppo"),
        (AgentKind::Reinforce, "ASQP-RL -ppo -ac"),
    ];

    let mut results: Vec<AblationRow> = Vec::new();
    for dataset in ["IMDB", "MAS"] {
        let (db, workload) = match dataset {
            "IMDB" => (
                asqp_data::imdb::generate(env.scale, env.seed),
                asqp_data::imdb::workload(40, env.seed),
            ),
            _ => (
                asqp_data::mas::generate(env.scale, env.seed),
                asqp_data::mas::workload(40, env.seed),
            ),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
        let (train_w, test_w) = workload.split(0.7, &mut rng);
        let k = env.default_k(&db);
        let counts = FullCounts::compute(&db, &test_w).expect("counts");

        let mut table = ReportTable::new(
            format!("Fig. 3 — {dataset}"),
            &["Environment", "Agent", "Score", "Total Time"],
        );
        for (env_kind, env_name) in envs {
            for (agent, agent_name) in agents {
                let mut cfg = scaled_config(&env, k, 50);
                cfg.env_kind = env_kind;
                cfg.trainer.agent = agent;
                let (m, _) = measure_asqp(&db, &train_w, &test_w, &counts, &cfg, agent_name)
                    .expect("ablation variant trains");
                println!(
                    "  [{dataset}] {env_name:<8} {agent_name:<18} score {:.3}  time {}",
                    m.score,
                    fmt_secs(m.setup_secs)
                );
                table.row(vec![
                    env_name.to_string(),
                    agent_name.to_string(),
                    format!("{:.3}", m.score),
                    fmt_secs(m.setup_secs),
                ]);
                results.push(AblationRow {
                    dataset: dataset.to_string(),
                    environment: env_name,
                    agent: agent_name,
                    score: m.score,
                    total_secs: m.setup_secs,
                });
            }
        }
        print_table(&table);
    }

    save_json("fig03_ablation", &results);

    // Paper conclusion check: GSL with the full agent is the best cell.
    for dataset in ["IMDB", "MAS"] {
        let rows: Vec<&AblationRow> = results.iter().filter(|r| r.dataset == dataset).collect();
        let full = rows
            .iter()
            .find(|r| r.environment == "GSL" && r.agent == "ASQP-RL")
            .unwrap();
        let best = rows
            .iter()
            .map(|r| r.score)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "[{dataset}] GSL/full = {:.3}, best cell = {:.3} ({})",
            full.score,
            best,
            if (full.score - best).abs() < 1e-9 {
                "GSL/full on top ✓"
            } else {
                "GSL/full not on top"
            }
        );
    }
}
