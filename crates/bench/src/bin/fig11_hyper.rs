//! **Fig. 11 — RL hyper-parameter tuning**: score as the entropy
//! coefficient, learning rate and KL coefficient sweep over the paper's
//! grids (learning rates mapped to this implementation's scale — the paper
//! itself concludes the *entropy coefficient* is the critical knob).
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig11_hyper
//! ```

use asqp_bench::*;
use asqp_core::FullCounts;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct HyperPoint {
    parameter: &'static str,
    value: f64,
    score: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 11 — hyper-parameter sweeps (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let db = asqp_data::imdb::generate(env.scale, env.seed);
    let workload = asqp_data::imdb::workload(40, env.seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
    let (train_w, test_w) = workload.split(0.7, &mut rng);
    let counts = FullCounts::compute(&db, &test_w).expect("counts");
    let k = env.default_k(&db);

    let mut points: Vec<HyperPoint> = Vec::new();
    let mut run = |label: &'static str, value: f64, edit: &dyn Fn(&mut asqp_core::AsqpConfig)| {
        let mut cfg = scaled_config(&env, k, 50);
        edit(&mut cfg);
        let (m, _) =
            measure_asqp(&db, &train_w, &test_w, &counts, &cfg, label).expect("variant trains");
        println!("  {label} = {value:<8}: score {:.3}", m.score);
        points.push(HyperPoint {
            parameter: label,
            value,
            score: m.score,
        });
    };

    // Entropy coefficient (paper grid).
    println!("\nentropy coefficient:");
    for &e in &[0.0f64, 0.001, 0.0015, 0.01, 0.015, 0.02] {
        run("entropy_coef", e, &|c| c.trainer.entropy_coef = e as f32);
    }

    // Learning rate (paper grid 5e-5..5e-2, shifted one decade up to this
    // implementation's scale: 5e-4..5e-1 would diverge, so sweep 5e-4..5e-2
    // plus the default).
    println!("\nlearning rate:");
    for &lr in &[5e-4f64, 1e-3, 5e-3, 5e-2] {
        run("learning_rate", lr, &|c| {
            c.trainer.learning_rate = lr as f32
        });
    }

    // KL coefficient (paper grid).
    println!("\nKL coefficient:");
    for &kl in &[0.2f64, 0.3, 0.5, 0.7, 0.9] {
        run("kl_coef", kl, &|c| c.trainer.kl_coef = kl as f32);
    }

    // Design-choice ablations beyond the paper's grids (DESIGN.md §5):
    // query-relaxation width and the first-coverage diversity bonus.
    println!("\nrelaxation factor:");
    for &r in &[0.0f64, 0.05, 0.1, 0.2, 0.4] {
        run("relaxation", r, &|c| c.preprocess.relaxation = r);
    }
    println!("\ndiversity coefficient:");
    for &d in &[0.0f64, 0.05, 0.2, 0.5] {
        run("diversity_coef", d, &|c| c.diversity_coef = d as f32);
    }

    let mut table = ReportTable::new("Fig. 11 — sweeps", &["parameter", "value", "score"]);
    for p in &points {
        table.row(vec![
            p.parameter.to_string(),
            format!("{}", p.value),
            format!("{:.3}", p.score),
        ]);
    }
    print_table(&table);
    save_json("fig11_hyper", &points);

    // The paper sets entropy = 0.001; check it is at/near the sweep's best.
    let ent: Vec<&HyperPoint> = points
        .iter()
        .filter(|p| p.parameter == "entropy_coef")
        .collect();
    let best = ent
        .iter()
        .map(|p| p.score)
        .fold(f64::NEG_INFINITY, f64::max);
    let at_default = ent.iter().find(|p| p.value == 0.001).unwrap().score;
    println!(
        "\nentropy 0.001 scores {at_default:.3}, sweep best {best:.3} ({})",
        if at_default >= best - 0.05 {
            "default well-placed ✓"
        } else {
            "default not optimal here"
        }
    );
}
