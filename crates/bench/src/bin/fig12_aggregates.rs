//! **Fig. 12 — aggregate-query evaluation (§6.4)**: relative error per
//! operator class {CNT, SUM, AVG} × {global, GROUP BY} on FLIGHTS, for
//! ASQP-RL (scale-corrected answers from the approximation set), gAQP
//! (aggregates over VAE-generated data) and DeepDB (Sum–Product Network
//! estimates). ASQP uses 1% memory, matching the paper's setting.
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig12_aggregates
//! ```

use asqp_baselines::{Baseline, BaselineOutput, GenerativeVae, Spn};
use asqp_bench::*;
use asqp_core::{approximate_aggregate, operator_class, result_relative_error};
use asqp_db::Workload;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct ClassErrors {
    class: String,
    asqp: f64,
    gaqp_vae: f64,
    deepdb_spn: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 12 — aggregate relative error (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let db = asqp_data::flights::generate(env.scale, env.seed);
    let n_queries = match env.scale {
        asqp_data::Scale::Tiny => 60,
        _ => 120,
    };
    let aggregates = asqp_data::flights::aggregate_workload(n_queries, env.seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
    let (train_w, test_w) = aggregates.split(0.7, &mut rng);
    let k = db.total_rows() / 100; // paper: 1% memory
    println!(
        "FLIGHTS {} tuples, k = {k}, {} train / {} test aggregate queries",
        db.total_rows(),
        train_w.len(),
        test_w.len()
    );

    // --- ASQP-RL: train on the SPJ rewrites, answer with scale-up. -------
    let cfg = scaled_config(&env, k, 50);
    let model = asqp_core::train(&db, &train_w, &cfg).expect("trains");
    let asqp_sub = model.materialize(&db, None).expect("materialises");

    // --- gAQP: VAE-generated database of the same size. -------------------
    let mut vae = GenerativeVae {
        seed: env.seed,
        epochs: 25,
        train_cap: 3000,
        ..GenerativeVae::default()
    };
    let vae_out = vae
        .build(&db, &train_w, k, cfg.metric_params())
        .expect("VAE builds");
    let BaselineOutput::Synthetic(vae_db) = &vae_out else {
        unreachable!("VAE is generative")
    };

    // --- DeepDB: SPN over the fact table. ---------------------------------
    let spn = Spn::learn(db.table("flights").expect("flights table"));

    // Evaluate all three on the held-out aggregates.
    type ErrAccum = (Vec<f64>, Vec<f64>, Vec<f64>);
    let mut per_class: BTreeMap<String, ErrAccum> = BTreeMap::new();
    let mut skipped_spn = 0usize;
    for q in &test_w.queries {
        let truth = db.execute(q).expect("truth executes");
        let class = operator_class(q).to_string();
        let slot = per_class.entry(class).or_default();

        let asqp_ans = approximate_aggregate(&db, &asqp_sub, q).expect("asqp answers");
        slot.0.push(result_relative_error(q, &asqp_ans, &truth));

        // gAQP answers on generated data, scale-corrected the same way.
        let vae_ans = approximate_aggregate(&db, vae_db, q).expect("vae answers");
        slot.1.push(result_relative_error(q, &vae_ans, &truth));

        match spn.estimate(q) {
            Some(spn_ans) => slot.2.push(result_relative_error(q, &spn_ans, &truth)),
            None => skipped_spn += 1,
        }
    }
    if skipped_spn > 0 {
        println!("(SPN declined {skipped_spn} unsupported query shapes)");
    }

    let mut table = ReportTable::new(
        "Fig. 12 — mean relative error by operator class",
        &["class", "ASQP-RL", "gAQP(VAE)", "DeepDB(SPN)"],
    );
    let avg = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let mut rows = Vec::new();
    let mut asqp_wins = 0usize;
    let mut classes = 0usize;
    for (class, (a, g, s)) in &per_class {
        let (ea, eg, es) = (avg(a), avg(g), avg(s));
        println!("  {class:<6} ASQP {ea:.3}  gAQP {eg:.3}  SPN {es:.3}");
        table.row(vec![
            class.clone(),
            format!("{ea:.3}"),
            format!("{eg:.3}"),
            format!("{es:.3}"),
        ]);
        rows.push(ClassErrors {
            class: class.clone(),
            asqp: ea,
            gaqp_vae: eg,
            deepdb_spn: es,
        });
        classes += 1;
        if ea <= eg && (es.is_nan() || ea <= es) {
            asqp_wins += 1;
        }
    }
    print_table(&table);
    save_json("fig12_aggregates", &rows);

    // The paper's claim: no approach dominates everywhere; ASQP is lowest
    // in about half the classes and competitive elsewhere.
    let beats_vae = rows.iter().filter(|r| r.asqp <= r.gaqp_vae).count();
    println!(
        "\nASQP lowest in {asqp_wins}/{classes} classes; beats gAQP in {beats_vae}/{classes} ({})",
        if beats_vae * 2 >= classes {
            "competitive as reported ✓"
        } else {
            "weaker than reported"
        }
    );
    let _ = Workload::uniform(vec![]);
}
