//! Run the entire experiment suite in sequence (every table and figure of
//! the paper). Results print as tables and persist to `results/*.json`.
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin all_experiments           # small scale
//! ASQP_SCALE=tiny cargo run --release -p asqp-bench --bin all_experiments
//! ```

use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "fig02_overall",
    "fig03_ablation",
    "fig04_motivation",
    "fig05_estimator",
    "fig06_no_workload",
    "fig07_drift",
    "fig08_memory",
    "fig09_frame",
    "fig10_trainset",
    "fig11_hyper",
    "fig12_aggregates",
    "fig_diversity",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let t0 = Instant::now();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################");
        let t = Instant::now();
        let status = Command::new(exe_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        println!("[{name} finished in {:.1?}]", t.elapsed());
        if !status.success() {
            eprintln!("!! {name} exited with {status}");
            failures.push(*name);
        }
    }
    println!(
        "\n================ suite done in {:.1?}; {}/{} experiments succeeded ================",
        t0.elapsed(),
        EXPERIMENTS.len() - failures.len(),
        EXPERIMENTS.len()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
