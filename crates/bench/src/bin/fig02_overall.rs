//! **Fig. 2 — Quality and Running time**: Score, setup time and per-10-query
//! answer time for ASQP-RL, ASQP-Light and all ten baselines, on the IMDB
//! and MAS datasets.
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig02_overall
//! ASQP_SCALE=medium cargo run --release -p asqp-bench --bin fig02_overall
//! ```

use asqp_bench::*;
use asqp_core::{AsqpConfig, FullCounts};
use asqp_db::{Database, Workload};
use rand::SeedableRng;

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 2 — overall comparison (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let datasets: Vec<(&str, Database, Workload)> = vec![
        (
            "IMDB",
            asqp_data::imdb::generate(env.scale, env.seed),
            asqp_data::imdb::workload(40, env.seed),
        ),
        (
            "MAS",
            asqp_data::mas::generate(env.scale, env.seed),
            asqp_data::mas::workload(40, env.seed),
        ),
    ];

    let mut all_rows = Vec::new();
    for (name, db, workload) in &datasets {
        let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
        let (train_w, test_w) = workload.split(0.7, &mut rng);
        let k = env.default_k(db);
        let cfg = scaled_config(&env, k, 50);
        let params = cfg.metric_params();
        let counts = FullCounts::compute(db, &test_w).expect("test counts");
        println!(
            "\n[{name}] {} tuples, k = {k}, {} train / {} test queries",
            db.total_rows(),
            train_w.len(),
            test_w.len()
        );

        let mut table = ReportTable::new(
            format!("Fig. 2 — {name}"),
            &["Baseline", "Score", "setup", "QueryAvg(10q)", "tuples"],
        );
        let push = |m: &Measured, table: &mut ReportTable| {
            table.row(vec![
                m.name.clone(),
                format!("{:.3}", m.score),
                fmt_secs(m.setup_secs),
                fmt_secs(m.query_avg_secs),
                m.tuples.to_string(),
            ]);
        };

        // ASQP-RL (full) and ASQP-Light.
        let (m, _) =
            measure_asqp(db, &train_w, &test_w, &counts, &cfg, "ASQP-RL").expect("ASQP-RL trains");
        println!(
            "  ASQP-RL     score {:.3}  setup {}",
            m.score,
            fmt_secs(m.setup_secs)
        );
        push(&m, &mut table);
        all_rows.push((name.to_string(), m));

        let mut light = AsqpConfig::light(k, 50).with_seed(env.seed);
        light.preprocess.max_actions = cfg.preprocess.max_actions / 2;
        let (m, _) = measure_asqp(db, &train_w, &test_w, &counts, &light, "ASQP-Light")
            .expect("ASQP-Light trains");
        println!(
            "  ASQP-Light  score {:.3}  setup {}",
            m.score,
            fmt_secs(m.setup_secs)
        );
        push(&m, &mut table);
        all_rows.push((name.to_string(), m));

        // Every baseline.
        for mut b in baseline_roster(&env) {
            let m = measure_baseline(db, &train_w, &test_w, &counts, k, params, b.as_mut())
                .expect("baseline builds");
            println!(
                "  {:<11} score {:.3}  setup {}",
                m.name,
                m.score,
                fmt_secs(m.setup_secs)
            );
            push(&m, &mut table);
            all_rows.push((name.to_string(), m));
        }
        print_table(&table);
    }

    save_json("fig02_overall", &all_rows);

    // The paper's headline check: ASQP-RL on top per dataset.
    for (name, _, _) in &datasets {
        let rows: Vec<_> = all_rows.iter().filter(|(d, _)| d == name).collect();
        let asqp = rows.iter().find(|(_, m)| m.name == "ASQP-RL").unwrap();
        let best_other = rows
            .iter()
            .filter(|(_, m)| !m.name.starts_with("ASQP"))
            .map(|(_, m)| m.score)
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "[{name}] ASQP-RL {:.3} vs best baseline {:.3} ({})",
            asqp.1.score,
            best_other,
            if asqp.1.score > best_other {
                "ASQP wins ✓"
            } else {
                "ASQP does NOT win ✗"
            }
        );
    }
}
