//! **Fig. 6 — no-workload use case**: the system starts on FLIGHTS with no
//! query workload, synthesises one from table statistics, and improves as
//! the user contributes 5 queries per round (fine-tuning each round).
//! Compared against RAN and QRD, the two baselines that also run without a
//! workload.
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig06_no_workload
//! ```

use asqp_baselines::{Baseline, QueryResultDiversification, RandomSampling};
use asqp_bench::*;
use asqp_core::{fine_tune, score, synthesize_workload};
use asqp_db::Workload;
use serde::Serialize;

#[derive(Serialize)]
struct Round {
    round: usize,
    asqp: f64,
    ran: f64,
    qrd: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 6 — unknown workload mode (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let db = asqp_data::flights::generate(env.scale, env.seed);
    let k = env.default_k(&db);
    let cfg = scaled_config(&env, k, 50);
    let params = cfg.metric_params();

    // The user's true interest, revealed 5 queries at a time.
    let user = asqp_data::flights::workload(25, env.seed ^ 0x515);

    // RAN and QRD build once (they cannot adapt to queries they never see).
    let ran_sub = RandomSampling { seed: env.seed }
        .build(&db, &Workload::uniform(vec![]), k, params)
        .expect("RAN builds")
        .materialize(&db)
        .expect("materialises");
    let qrd_sub = QueryResultDiversification {
        seed: env.seed,
        sample_per_table: 1500,
    }
    .build(&db, &Workload::uniform(vec![]), k, params)
    .expect("QRD builds")
    .materialize(&db)
    .expect("materialises");

    // ASQP round 0: trained purely on statistics-synthesised queries.
    let synthetic = synthesize_workload(&db, 30, env.seed);
    let mut model = asqp_core::train(&db, &synthetic, &cfg).expect("trains");

    let mut table = ReportTable::new(
        "Fig. 6 — quality on the user's queries per round",
        &["round", "ASQP-RL", "RAN", "QRD"],
    );
    let mut rounds = Vec::new();
    for round in 0..5 {
        // Evaluate on the queries the user has issued so far.
        let seen = Workload::uniform(user.queries[..(round + 1) * 5].to_vec());
        let asqp_sub = model.materialize(&db, None).expect("materialises");
        let a = score(&db, &asqp_sub, &seen, params).expect("scores");
        let r = score(&db, &ran_sub, &seen, params).expect("scores");
        let q = score(&db, &qrd_sub, &seen, params).expect("scores");
        println!("  round {round}: ASQP {a:.3}  RAN {r:.3}  QRD {q:.3}");
        table.row(vec![
            round.to_string(),
            format!("{a:.3}"),
            format!("{r:.3}"),
            format!("{q:.3}"),
        ]);
        rounds.push(Round {
            round,
            asqp: a,
            ran: r,
            qrd: q,
        });

        // Fold the new batch of user queries in.
        if round < 4 {
            let batch = &user.queries[round * 5..(round + 1) * 5];
            model = fine_tune(&db, &model, batch, 0.05).expect("fine-tunes");
        }
    }
    print_table(&table);
    save_json("fig06_no_workload", &rounds);

    let first = &rounds[0];
    let last = rounds.last().unwrap();
    println!(
        "\nASQP improves {:.3} -> {:.3} across rounds; final vs QRD {:.3} ({})",
        first.asqp,
        last.asqp,
        last.qrd,
        if last.asqp > last.qrd && last.asqp > last.ran {
            "ASQP on top ✓"
        } else {
            "ordering differs"
        }
    );
}
