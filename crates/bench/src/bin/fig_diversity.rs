//! **§6.2 diversity comparison**: mean pairwise-Jaccard diversity of query
//! answers (each query run with LIMIT 100) on the full database, the
//! ASQP-RL approximation set, and every fast baseline's subset. The paper
//! reports DB ≈ 58%, ASQP ≈ 52%, and ASQP ≥ 14% above any baseline while
//! staying close to RAN.
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig_diversity
//! ```

use asqp_bench::*;
use asqp_core::{workload_diversity, FullCounts};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct DiversityRow {
    method: String,
    diversity: f64,
    score: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "§6.2 — answer diversity (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let db = asqp_data::imdb::generate(env.scale, env.seed);
    let workload = asqp_data::imdb::workload(40, env.seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
    let (train_w, test_w) = workload.split(0.7, &mut rng);
    let counts = FullCounts::compute(&db, &test_w).expect("counts");
    let k = env.default_k(&db);
    let cfg = scaled_config(&env, k, 50);
    let params = cfg.metric_params();

    let mut table = ReportTable::new(
        "§6.2 — diversity (pairwise Jaccard, LIMIT 100) and score",
        &["method", "diversity", "score"],
    );
    let mut rows = Vec::new();

    // Reference: the full database.
    let db_div = workload_diversity(&db, &test_w, 100).expect("diversity");
    println!("  full DB   diversity {db_div:.3}");
    table.row(vec![
        "full DB".into(),
        format!("{db_div:.3}"),
        "1.000".into(),
    ]);
    rows.push(DiversityRow {
        method: "full DB".into(),
        diversity: db_div,
        score: 1.0,
    });

    // ASQP-RL.
    let (m, model) =
        measure_asqp(&db, &train_w, &test_w, &counts, &cfg, "ASQP-RL").expect("trains");
    let sub = model.materialize(&db, None).expect("materialises");
    let asqp_div = workload_diversity(&sub, &test_w, 100).expect("diversity");
    println!("  ASQP-RL   diversity {asqp_div:.3}  score {:.3}", m.score);
    table.row(vec![
        "ASQP-RL".into(),
        format!("{asqp_div:.3}"),
        format!("{:.3}", m.score),
    ]);
    rows.push(DiversityRow {
        method: "ASQP-RL".into(),
        diversity: asqp_div,
        score: m.score,
    });

    for mut b in fast_roster(&env) {
        let out = b.build(&db, &train_w, k, params).expect("baseline builds");
        let bsub = out.materialize(&db).expect("materialises");
        let d = workload_diversity(&bsub, &test_w, 100).expect("diversity");
        let s = asqp_core::score_with_counts(&bsub, &test_w, &counts, params).expect("scores");
        println!("  {:<8}  diversity {d:.3}  score {s:.3}", b.name());
        table.row(vec![b.name().into(), format!("{d:.3}"), format!("{s:.3}")]);
        rows.push(DiversityRow {
            method: b.name().into(),
            diversity: d,
            score: s,
        });
    }
    print_table(&table);
    save_json("fig_diversity", &rows);

    println!(
        "\nASQP diversity {asqp_div:.3} vs full DB {db_div:.3} ({})",
        if asqp_div >= db_div * 0.7 {
            "close to the DB's natural diversity ✓"
        } else {
            "lower than the paper's ratio"
        }
    );
}
