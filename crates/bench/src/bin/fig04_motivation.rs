//! **Fig. 4 — Problem justification**: cumulative average direct-query time
//! as a workload executes against increasingly large versions of the IMDB
//! database (the paper blows the data up and shows the wait becoming
//! impractical).
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig04_motivation
//! ```

use asqp_bench::*;
use asqp_data::Scale;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Point {
    factor: u32,
    tuples: usize,
    queries_executed: usize,
    cumulative_avg_secs: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 4 — direct-query cost vs database size (seed {})",
        env.seed
    );

    let base = match env.scale {
        Scale::Tiny => 1u32,
        Scale::Medium => 50,
        _ => 10,
    };
    let factors = [base, base * 2, base * 4, base * 8];
    let workload = asqp_data::imdb::workload(12, env.seed);

    let mut table = ReportTable::new(
        "Fig. 4 — cumulative avg query time (s) by #queries",
        &["DB tuples", "q1", "q4", "q8", "q12"],
    );
    let mut points: Vec<Point> = Vec::new();
    for factor in factors {
        let db = asqp_data::imdb::generate(Scale::Factor(factor), env.seed);
        let mut cumulative = 0.0f64;
        let mut marks = Vec::new();
        for (i, q) in workload.queries.iter().enumerate() {
            let t0 = Instant::now();
            db.execute(q).expect("query runs");
            cumulative += t0.elapsed().as_secs_f64();
            let avg = cumulative / (i + 1) as f64;
            if [0, 3, 7, 11].contains(&i) {
                marks.push(avg);
            }
            points.push(Point {
                factor,
                tuples: db.total_rows(),
                queries_executed: i + 1,
                cumulative_avg_secs: avg,
            });
        }
        println!(
            "  x{factor}: {} tuples, avg after 12 queries = {}",
            db.total_rows(),
            fmt_secs(marks[3])
        );
        table.row(vec![
            db.total_rows().to_string(),
            format!("{:.4}", marks[0]),
            format!("{:.4}", marks[1]),
            format!("{:.4}", marks[2]),
            format!("{:.4}", marks[3]),
        ]);
    }
    print_table(&table);
    save_json("fig04_motivation", &points);

    // Shape check: cost grows with database size.
    let last_avg = |f: u32| {
        points
            .iter()
            .filter(|p| p.factor == f && p.queries_executed == 12)
            .map(|p| p.cumulative_avg_secs)
            .next()
            .unwrap()
    };
    let small = last_avg(factors[0]);
    let big = last_avg(factors[3]);
    println!(
        "\n8x data -> {:.1}x slower queries ({})",
        big / small.max(1e-12),
        if big > small * 3.0 {
            "superlinear pain confirmed ✓"
        } else {
            "weaker than expected"
        }
    );
}
