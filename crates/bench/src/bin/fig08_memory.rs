//! **Fig. 8 — effect of the memory budget k**: score of every method as k
//! sweeps across four budgets (the paper's 1k / 5k / 10k / 15k, scaled to
//! the dataset so the largest budget is a few percent of the data).
//!
//! ```sh
//! cargo run --release -p asqp-bench --bin fig08_memory
//! ```

use asqp_bench::*;
use asqp_core::FullCounts;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    method: String,
    k: usize,
    score: f64,
}

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "Fig. 8 — score vs memory budget k (scale {:?}, seed {})",
        env.scale, env.seed
    );

    let db = asqp_data::imdb::generate(env.scale, env.seed);
    let workload = asqp_data::imdb::workload(40, env.seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed);
    let (train_w, test_w) = workload.split(0.7, &mut rng);
    let counts = FullCounts::compute(&db, &test_w).expect("counts");

    // k sweep: paper's 1k..15k mapped proportionally (base = ~0.3% of data).
    let base = (db.total_rows() / 300).max(30);
    let ks = [base, base * 5, base * 10, base * 15];
    println!("k values: {ks:?} ({} tuples total)", db.total_rows());

    let mut table = ReportTable::new(
        "Fig. 8 — score vs k",
        &[
            "method",
            &format!("k={}", ks[0]),
            &format!("k={}", ks[1]),
            &format!("k={}", ks[2]),
            &format!("k={}", ks[3]),
        ],
    );
    let mut points = Vec::new();

    // ASQP-RL first.
    let mut asqp_scores = Vec::new();
    for &k in &ks {
        let cfg = scaled_config(&env, k, 50);
        let (m, _) =
            measure_asqp(&db, &train_w, &test_w, &counts, &cfg, "ASQP-RL").expect("trains");
        asqp_scores.push(m.score);
        points.push(SweepPoint {
            method: "ASQP-RL".into(),
            k,
            score: m.score,
        });
    }
    println!("  ASQP-RL: {asqp_scores:?}");
    table.row(
        std::iter::once("ASQP-RL".to_string())
            .chain(asqp_scores.iter().map(|s| format!("{s:.3}")))
            .collect(),
    );

    for mut b in fast_roster(&env) {
        let mut scores = Vec::new();
        for &k in &ks {
            let m = measure_baseline(
                &db,
                &train_w,
                &test_w,
                &counts,
                k,
                scaled_config(&env, k, 50).metric_params(),
                b.as_mut(),
            )
            .expect("builds");
            scores.push(m.score);
            points.push(SweepPoint {
                method: b.name().into(),
                k,
                score: m.score,
            });
        }
        println!("  {:<5}: {scores:?}", b.name());
        table.row(
            std::iter::once(b.name().to_string())
                .chain(scores.iter().map(|s| format!("{s:.3}")))
                .collect(),
        );
    }
    print_table(&table);
    save_json("fig08_memory", &points);

    // Shape checks: ASQP leads at the largest k and everyone grows with k.
    let at_max: Vec<(&str, f64)> = {
        let kmax = ks[3];
        let mut v: Vec<(&str, f64)> = Vec::new();
        for p in &points {
            if p.k == kmax {
                v.push((p.method.as_str(), p.score));
            }
        }
        v
    };
    let asqp = at_max.iter().find(|(m, _)| *m == "ASQP-RL").unwrap().1;
    let best_other = at_max
        .iter()
        .filter(|(m, _)| *m != "ASQP-RL")
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nat k={}: ASQP {asqp:.3} vs best baseline {best_other:.3} ({})",
        ks[3],
        if asqp > best_other {
            "ASQP leads ✓"
        } else {
            "ordering differs"
        }
    );
}
