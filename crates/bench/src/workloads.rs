//! Shared synthetic workloads for the criterion micro-benches and the
//! `bench_report` regression binary: a star schema with a clustered fact
//! table, parameterised by fact-table size so CI can run a reduced copy
//! of the exact same benches.

use asqp_db::{Database, Query, Row, Schema, Value, ValueType};
use asqp_nn::Matrix;
use asqp_rl::{AgentKind, Environment, RolloutBuffer, ToyCoverageEnv, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A star schema sized for the vectorized-executor benches: a fact table
/// (`id` clustered, everything else shuffled) plus two dimensions scaled
/// at 1:100 and 1:50 of the fact rows. `star_db(100_000)` reproduces the
/// original criterion dataset byte-for-byte (same seed, same draw order).
pub fn star_db(fact_rows: usize) -> Database {
    const REGIONS: &[&str] = &["na", "eu", "ap", "sa", "af", "oc", "me", "in"];
    const CATS: &[&str] = &[
        "toys", "books", "games", "tools", "food", "garden", "music", "sport", "auto", "home",
        "tech", "art",
    ];
    let n_users = (fact_rows / 100).max(8) as i64;
    let n_items = (fact_rows / 50).max(8) as i64;
    let mut rng = StdRng::seed_from_u64(7);
    let mut db = Database::new();

    let users = db
        .create_table(
            "users",
            Schema::build(&[
                ("id", ValueType::Int),
                ("region", ValueType::Str),
                ("age", ValueType::Int),
            ]),
        )
        .unwrap();
    for i in 0..n_users {
        users
            .push_row(&[
                Value::Int(i),
                Value::Str(REGIONS[rng.random_range(0..REGIONS.len())].into()),
                Value::Int(rng.random_range(18i64..90)),
            ])
            .unwrap();
    }

    let items = db
        .create_table(
            "items",
            Schema::build(&[
                ("id", ValueType::Int),
                ("cat", ValueType::Str),
                ("price", ValueType::Float),
            ]),
        )
        .unwrap();
    for i in 0..n_items {
        items
            .push_row(&[
                Value::Int(i),
                Value::Str(CATS[rng.random_range(0..CATS.len())].into()),
                Value::Float(rng.random_range(1.0..500.0)),
            ])
            .unwrap();
    }

    let events = db
        .create_table(
            "events",
            Schema::build(&[
                ("id", ValueType::Int),
                ("user_id", ValueType::Int),
                ("item_id", ValueType::Int),
                ("qty", ValueType::Int),
                ("amount", ValueType::Float),
            ]),
        )
        .unwrap();
    for i in 0..fact_rows as i64 {
        events
            .push_row(&[
                Value::Int(i),
                Value::Int(rng.random_range(0i64..n_users)),
                Value::Int(rng.random_range(0i64..n_items)),
                Value::Int(rng.random_range(0i64..100)),
                Value::Float(rng.random_range(0.0..100.0)),
            ])
            .unwrap();
    }
    db
}

/// A seeded ingest batch shaped like the star fact table: `pct` percent
/// of `fact_rows` fresh event rows whose ids continue the clustered run —
/// the fixture for the incremental-maintenance benches.
pub fn ingest_batch(fact_rows: usize, pct: usize) -> Vec<Row> {
    let n_users = (fact_rows / 100).max(8) as i64;
    let n_items = (fact_rows / 50).max(8) as i64;
    let n = (fact_rows * pct / 100).max(1);
    let mut rng = StdRng::seed_from_u64(11);
    (0..n)
        .map(|i| {
            vec![
                Value::Int((fact_rows + i) as i64),
                Value::Int(rng.random_range(0i64..n_users)),
                Value::Int(rng.random_range(0i64..n_items)),
                Value::Int(rng.random_range(0i64..100)),
                Value::Float(rng.random_range(0.0..100.0)),
            ]
        })
        .collect()
}

/// Selective conjunctive scan over the fact table (~3% pass).
pub fn scan_query() -> Query {
    asqp_db::sql::parse(
        "SELECT e.id, e.amount FROM events e WHERE e.qty BETWEEN 10 AND 12 AND e.amount < 80.0",
    )
    .unwrap()
}

/// Narrow range over the clustered `id` column: zone maps skip ~99% of
/// morsels. The range midpoint scales with the fact-table size so the
/// reduced CI dataset exercises the same pruning ratio.
pub fn clustered_query(fact_rows: usize) -> Query {
    let lo = (fact_rows * 2) / 5;
    let hi = lo + (fact_rows / 100).max(10);
    asqp_db::sql::parse(&format!(
        "SELECT e.user_id FROM events e WHERE e.id BETWEEN {lo} AND {hi}"
    ))
    .unwrap()
}

/// The same selectivity over the shuffled `amount` column: nothing prunes.
pub fn unclustered_query() -> Query {
    asqp_db::sql::parse("SELECT e.user_id FROM events e WHERE e.amount BETWEEN 40.0 AND 40.4")
        .unwrap()
}

/// Three-table star join with the fact table as probe side.
pub fn join_query() -> Query {
    asqp_db::sql::parse(
        "SELECT u.region, i.cat, e.amount FROM events e, users u, items i \
         WHERE e.user_id = u.id AND e.item_id = i.id AND e.qty < 5",
    )
    .unwrap()
}

/// Star join with a selective dimension filter (~8% of users): the
/// cost-based reorderer should drive the join from the filtered dimension.
/// Workload for the `db/optimizer` benches.
pub fn selective_join_query() -> Query {
    asqp_db::sql::parse(
        "SELECT e.amount FROM events e, users u, items i \
         WHERE e.user_id = u.id AND e.item_id = i.id AND u.age < 24",
    )
    .unwrap()
}

/// Single-binding selective scan with LIMIT: with pushdown the scan stops
/// after `LIMIT` matches instead of materialising the full ~50% selection.
pub fn limited_scan_query() -> Query {
    asqp_db::sql::parse("SELECT e.id, e.amount FROM events e WHERE e.qty < 50 LIMIT 100").unwrap()
}

/// Templated query mix shaped like the RL reward-evaluation inner loop:
/// a few shapes instantiated with many literals, so a warm plan cache
/// plans each shape once (workload for `db/plan_cache/rl_loop_*`).
pub fn rl_loop_queries(n_per_template: usize) -> Vec<Query> {
    let mut out = Vec::new();
    for k in 0..n_per_template as i64 {
        out.push(
            asqp_db::sql::parse(&format!(
                "SELECT e.id FROM events e WHERE e.qty < {}",
                10 + (k % 40)
            ))
            .unwrap(),
        );
        out.push(
            asqp_db::sql::parse(&format!(
                "SELECT u.region, e.amount FROM events e, users u \
                 WHERE e.user_id = u.id AND e.amount < {}.5 LIMIT {}",
                20 + k,
                10 + k
            ))
            .unwrap(),
        );
        out.push(
            asqp_db::sql::parse(&format!(
                "SELECT e.user_id FROM events e WHERE e.id BETWEEN {} AND {}",
                50 * k,
                50 * k + 400
            ))
            .unwrap(),
        );
    }
    out
}

/// Seeded square matrices for the `nn_matmul` bench — the GEMM shape the
/// kernel layer is tuned on (`dim = 256` in the full run).
pub fn nn_matmul_inputs(dim: usize) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(11);
    (
        Matrix::kaiming(dim, dim, &mut rng),
        Matrix::kaiming(dim, dim, &mut rng),
    )
}

/// A PPO trainer plus a pre-collected rollout buffer for the `ppo_update`
/// bench: collecting once outside the measured closure isolates the sharded
/// minibatch update path (forward tapes, backprop, gradient reduction,
/// Adam) from rollout cost. Network sizes match the default
/// [`TrainerConfig`] so the bench tracks the training configuration the
/// paper experiments use.
pub fn ppo_update_fixture(reduced: bool) -> (Trainer, RolloutBuffer) {
    let env = ToyCoverageEnv::new(vec![0.5; 64], 8);
    let cfg = TrainerConfig {
        agent: AgentKind::Ppo,
        num_workers: 1,
        steps_per_worker: if reduced { 128 } else { 512 },
        update_epochs: if reduced { 2 } else { 4 },
        seed: 3,
        ..TrainerConfig::default()
    };
    let mut trainer = Trainer::new(cfg, env.state_dim(), env.action_count());
    let buf = trainer.collect(&env);
    (trainer, buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_db_scales_with_fact_rows() {
        let db = star_db(2_000);
        assert_eq!(db.table("events").unwrap().row_count(), 2_000);
        assert_eq!(db.table("users").unwrap().row_count(), 20);
        assert_eq!(db.table("items").unwrap().row_count(), 40);
    }

    #[test]
    fn queries_return_rows_on_reduced_db() {
        let db = star_db(5_000);
        for q in [
            scan_query(),
            clustered_query(5_000),
            unclustered_query(),
            join_query(),
        ] {
            let rs = db.execute(&q).unwrap();
            assert!(!rs.rows.is_empty(), "query returned nothing: {q:?}");
        }
    }

    #[test]
    fn nn_fixtures_are_deterministic_and_sized() {
        let (a, b) = nn_matmul_inputs(32);
        let (a2, b2) = nn_matmul_inputs(32);
        assert_eq!(a.data(), a2.data());
        assert_eq!(b.data(), b2.data());
        assert_eq!(a.shape(), (32, 32));

        let (mut trainer, buf) = ppo_update_fixture(true);
        assert_eq!(buf.len(), 128);
        let (policy_loss, ..) = trainer.update(&buf);
        assert!(policy_loss.is_finite());
    }

    #[test]
    fn clustered_query_range_stays_in_bounds() {
        let q = clustered_query(100_000);
        let text = format!("{:?}", q.predicate);
        assert!(text.contains("40000"), "got {text}");
    }
}
