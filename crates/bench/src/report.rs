//! ASCII tables and JSON result persistence for the experiment binaries.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "\n== {} ==", self.title);
        }
        let line = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                let _ = write!(out, "{:<w$}  ", cells[i], w = widths[i]);
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Render and print a table in one call.
pub fn print_table(table: &Table) {
    print!("{}", table.render());
}

/// Persist a JSON result under `results/<name>.json` (working directory),
/// creating the directory if needed. Errors are reported, not fatal — the
/// printed table is the primary output.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "score"]);
        t.row(vec!["ASQP-RL".into(), "0.64".into()]);
        t.row(vec!["RAN".into(), "0.29".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("ASQP-RL  0.64"));
        let lines: Vec<&str> = r.lines().collect();
        // leading blank + title + header + separator + 2 rows
        assert_eq!(lines.len(), 6);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
