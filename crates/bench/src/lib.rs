//! # asqp-bench — experiment harness for the ASQP-RL paper
//!
//! One binary per table/figure (see DESIGN.md §4). Shared plumbing lives
//! here: scale/seed selection from the environment, the paper's
//! Score / setup / QueryAvg measurement protocol, ASCII tables, and JSON
//! result dumps under `results/` (consumed when regenerating
//! EXPERIMENTS.md).
//!
//! Every binary honours two environment variables:
//!
//! * `ASQP_SCALE` — `tiny` | `small` (default) | `medium` | an integer factor
//! * `ASQP_SEED`  — experiment seed (default 7)

use asqp_baselines::{Baseline, BaselineOutput};
use asqp_core::{score_with_counts, AsqpConfig, FullCounts, MetricParams, TrainedModel};
use asqp_data::Scale;
use asqp_db::{Database, DbResult, Workload};
use serde::Serialize;
use std::time::Instant;

pub mod gate;
pub mod measure;
pub mod report;
pub mod workloads;

pub use report::{print_table, save_json, Table as ReportTable};

/// Experiment environment: scale + seed, read once per binary.
#[derive(Debug, Clone, Copy)]
pub struct BenchEnv {
    pub scale: Scale,
    pub seed: u64,
}

/// When `ASQP_ZERO_TIMINGS=1`, the wall-clock fields of [`Measured`] are
/// zeroed. Scores, tuple counts and rankings are already deterministic, so
/// this makes experiment stdout and JSON byte-identical across runs — the
/// CI determinism job runs each figure twice and diffs the outputs.
pub fn zero_timings() -> bool {
    std::env::var("ASQP_ZERO_TIMINGS").map(|v| v == "1") == Ok(true)
}

fn wall_secs(s: f64) -> f64 {
    if zero_timings() {
        0.0
    } else {
        s
    }
}

impl BenchEnv {
    pub fn from_env() -> BenchEnv {
        let scale = match std::env::var("ASQP_SCALE").unwrap_or_default().as_str() {
            "tiny" => Scale::Tiny,
            "medium" => Scale::Medium,
            "" | "small" => Scale::Small,
            other => match other.parse::<u32>() {
                Ok(f) => Scale::Factor(f),
                Err(_) => {
                    eprintln!("unknown ASQP_SCALE '{other}', using small");
                    Scale::Small
                }
            },
        };
        let seed = std::env::var("ASQP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(7);
        BenchEnv { scale, seed }
    }

    /// Default tuple budget at this scale (~1% of the dataset).
    pub fn default_k(&self, db: &Database) -> usize {
        (db.total_rows() / 100).max(100)
    }
}

/// One measured row of the Fig. 2 table.
#[derive(Debug, Clone, Serialize)]
pub struct Measured {
    pub name: String,
    /// Eq.-1 score on the held-out test workload.
    pub score: f64,
    /// Time to produce a queryable approximation, in seconds.
    pub setup_secs: f64,
    /// Time to answer 10 test queries on the approximation, in seconds.
    pub query_avg_secs: f64,
    /// Tuples in the approximation.
    pub tuples: usize,
}

/// Run one baseline under the paper's measurement protocol.
pub fn measure_baseline(
    db: &Database,
    train_w: &Workload,
    test_w: &Workload,
    test_counts: &FullCounts,
    k: usize,
    params: MetricParams,
    baseline: &mut dyn Baseline,
) -> DbResult<Measured> {
    let t0 = Instant::now();
    let output = baseline.build(db, train_w, k, params)?;
    let approx = output.materialize(db)?;
    let setup_secs = wall_secs(t0.elapsed().as_secs_f64());

    let score = score_with_counts(&approx, test_w, test_counts, params)?;
    let query_avg_secs = time_ten_queries(&approx, test_w)?;
    Ok(Measured {
        name: baseline.name().to_string(),
        score,
        setup_secs,
        query_avg_secs,
        tuples: output.tuple_count(),
    })
}

/// Train ASQP-RL and measure it under the same protocol.
pub fn measure_asqp(
    db: &Database,
    train_w: &Workload,
    test_w: &Workload,
    test_counts: &FullCounts,
    cfg: &AsqpConfig,
    name: &str,
) -> DbResult<(Measured, TrainedModel)> {
    let t0 = Instant::now();
    let model = asqp_core::train(db, train_w, cfg)?;
    let approx = model.materialize(db, None)?;
    let setup_secs = wall_secs(t0.elapsed().as_secs_f64());

    let params = cfg.metric_params();
    let score = score_with_counts(&approx, test_w, test_counts, params)?;
    let query_avg_secs = time_ten_queries(&approx, test_w)?;
    Ok((
        Measured {
            name: name.to_string(),
            score,
            setup_secs,
            query_avg_secs,
            tuples: approx.total_rows(),
        },
        model,
    ))
}

/// The paper's "QueryAvg" column: wall-clock to answer 10 workload queries.
pub fn time_ten_queries(approx: &Database, w: &Workload) -> DbResult<f64> {
    if w.is_empty() {
        return Ok(0.0);
    }
    let t0 = Instant::now();
    for q in w.queries.iter().cycle().take(10) {
        approx.execute(q)?;
    }
    Ok(wall_secs(t0.elapsed().as_secs_f64()))
}

/// An ASQP config tuned to finish the full experiment suite at `scale` in
/// minutes rather than hours, while keeping the paper's §6.1 hyper-parameter
/// *ratios* (entropy 0.001, KL 0.2, PPO) intact.
pub fn scaled_config(env: &BenchEnv, k: usize, frame: usize) -> AsqpConfig {
    let mut cfg = AsqpConfig::full(k, frame).with_seed(env.seed);
    // The action-space pool must comfortably exceed the tuple budget or
    // even an oracle selection cannot reach a good score; ~4 tuples per
    // action means max_actions ≳ k covers the budget several times over.
    match env.scale {
        Scale::Tiny => {
            cfg.preprocess.n_representatives = 12;
            cfg.preprocess.max_actions = (3 * k).clamp(256, 768);
            cfg.preprocess.per_query_cap = 120;
            cfg.iterations = 25;
            cfg.trainer.num_workers = 2;
        }
        _ => {
            cfg.preprocess.n_representatives = 16;
            cfg.preprocess.max_actions = (2 * k).clamp(512, 1024);
            cfg.preprocess.per_query_cap = 250;
            cfg.iterations = 40;
            cfg.trainer.num_workers = 4;
            cfg.trainer.steps_per_worker = 192;
        }
    }
    cfg
}

/// Baseline work budgets (the paper's 48-hour caps scaled to the harness:
/// BRT and GRE always exhaust their budget, exactly as in the paper).
/// Counted in candidate evaluations, not wall-clock, so every figure is
/// byte-identical across runs and machines.
pub fn brute_force_draws(env: &BenchEnv) -> usize {
    match env.scale {
        Scale::Tiny => 120,
        _ => 60,
    }
}

pub fn greedy_evals(env: &BenchEnv) -> usize {
    match env.scale {
        Scale::Tiny => 6_000,
        _ => 12_000,
    }
}

/// The full Fig. 2 baseline roster (selection + generative baselines).
pub fn baseline_roster(env: &BenchEnv) -> Vec<Box<dyn Baseline>> {
    use asqp_baselines::*;
    let seed = env.seed;
    vec![
        Box::new(GenerativeVae {
            seed,
            epochs: 15,
            train_cap: 1000,
            ..GenerativeVae::default()
        }),
        Box::new(LruCache { seed }),
        Box::new(RandomSampling { seed }),
        Box::new(QuickR { seed }),
        Box::new(Verdict { seed }),
        Box::new(Skyline),
        Box::new(BruteForce {
            seed,
            draws: brute_force_draws(env),
        }),
        Box::new(QueryResultDiversification {
            seed,
            sample_per_table: 1500,
        }),
        Box::new(TopQueried { seed }),
        Box::new(Greedy {
            max_evals: greedy_evals(env),
        }),
    ]
}

/// The fast subset used by the sweep figures (8/9), where GRE/BRT/VAE
/// would dominate wall-clock without changing the story.
pub fn fast_roster(env: &BenchEnv) -> Vec<Box<dyn Baseline>> {
    use asqp_baselines::*;
    let seed = env.seed;
    vec![
        Box::new(RandomSampling { seed }),
        Box::new(TopQueried { seed }),
        Box::new(LruCache { seed }),
        Box::new(Verdict { seed }),
        Box::new(QuickR { seed }),
        Box::new(Skyline),
        Box::new(QueryResultDiversification {
            seed,
            sample_per_table: 1000,
        }),
    ]
}

/// Pretty seconds → the paper's minutes-style column.
pub fn fmt_secs(s: f64) -> String {
    if s >= 60.0 {
        format!("{:.1}m", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

/// Re-export for binaries that need to materialise baseline output.
pub fn materialize(db: &Database, out: &BaselineOutput) -> DbResult<Database> {
    out.materialize(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_baselines::RandomSampling;

    #[test]
    fn measurement_protocol_runs() {
        let db = asqp_data::imdb::generate(Scale::Tiny, 1);
        let w = asqp_data::imdb::workload(12, 1);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (train_w, test_w) = w.split(0.7, &mut rng);
        let counts = FullCounts::compute(&db, &test_w).unwrap();
        let params = MetricParams::new(20);
        let mut ran = RandomSampling { seed: 1 };
        let m = measure_baseline(&db, &train_w, &test_w, &counts, 60, params, &mut ran).unwrap();
        assert_eq!(m.name, "RAN");
        assert!(m.setup_secs >= 0.0);
        assert!((0.0..=1.0).contains(&m.score));
        assert!(m.tuples <= 60);
    }

    #[test]
    fn rosters_have_expected_names() {
        let env = BenchEnv {
            scale: Scale::Tiny,
            seed: 1,
        };
        let names: Vec<&str> = baseline_roster(&env).iter().map(|b| b.name()).collect();
        for expected in [
            "VAE", "CACH", "RAN", "QUIK", "VERD", "SKY", "BRT", "QRD", "TOP", "GRE",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.5), "500ms");
        assert_eq!(fmt_secs(5.0), "5.0s");
        assert_eq!(fmt_secs(90.0), "1.5m");
    }
}
