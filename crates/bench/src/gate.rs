//! The CI performance-regression gate: a machine-readable bench report
//! (medians + telemetry counters) that can be diffed against a checked-in
//! baseline with a configurable tolerance.
//!
//! Cross-machine comparisons rescale by the calibration workload
//! ([`crate::measure::calibration_ns`]): a baseline recorded on hardware
//! 2× faster than CI would otherwise flag every bench as a regression.
//! Only benches whose name starts with a gated prefix (`scan`, `join`,
//! `zonemap`, `nn_matmul`, `ppo_update`, `serve`) fail the gate — full
//! model-training benches are tracked in the report but too noisy to gate
//! on. The two NN prefixes are gateable because their fixtures are seeded
//! and their kernels bit-deterministic, so run-to-run variance is down to
//! machine noise that the calibration rescale absorbs; the serve benches
//! run with fault injection disabled (throughput) or on a virtual clock
//! (the chaos simulator), so they carry no sleep-induced noise.

use crate::measure::BenchResult;
use asqp_telemetry::TelemetryReport;
use serde::{Deserialize, Serialize};

/// Bench names gated by [`compare`]; everything else is informational.
/// `serve/multitenant` and `serve/streaming` are already covered by the
/// `serve` prefix but are listed explicitly: they are acceptance-gated
/// (the multi-tenant replay and the living-data streaming driver) and
/// must stay gated even if the broad `serve` prefix is ever narrowed.
pub const GATED_PREFIXES: &[&str] = &[
    "scan",
    "join",
    "zonemap",
    "db/optimizer",
    "db/plan_cache",
    "db/incremental",
    "nn_matmul",
    "ppo_update",
    "serve",
    "serve/multitenant",
    "serve/streaming",
];

/// Current report schema; bump when fields change incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// One bench entry in the persisted report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    pub name: String,
    pub median_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub samples: u64,
}

impl From<BenchResult> for BenchEntry {
    fn from(r: BenchResult) -> BenchEntry {
        BenchEntry {
            name: r.name,
            median_ns: r.median_ns,
            min_ns: r.min_ns,
            max_ns: r.max_ns,
            samples: r.samples,
        }
    }
}

/// The full machine-readable report written to `results/bench_report.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    pub schema_version: u64,
    /// True when produced with `--reduced` (the CI-sized dataset).
    pub reduced: bool,
    /// Median of the deterministic calibration workload on this machine.
    pub calibration_ns: u64,
    pub benches: Vec<BenchEntry>,
    /// Aggregated spans/counters/gauges/histograms captured while the
    /// benches ran (zone-map pruning rates, RL throughput, routing mix).
    pub telemetry: TelemetryReport,
}

impl BenchReport {
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    pub fn from_json(s: &str) -> Result<BenchReport, String> {
        serde_json::from_str(s).map_err(|e| format!("invalid bench report: {e}"))
    }

    pub fn bench(&self, name: &str) -> Option<&BenchEntry> {
        self.benches.iter().find(|b| b.name == name)
    }
}

/// One gate verdict for a single bench.
#[derive(Debug, Clone)]
pub struct GateLine {
    pub name: String,
    pub baseline_ns: u64,
    /// Current median rescaled into the baseline machine's time units.
    pub scaled_current_ns: u64,
    pub ratio: f64,
    pub gated: bool,
    pub regressed: bool,
}

/// The outcome of comparing a current report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    pub lines: Vec<GateLine>,
    /// Gated benches present in the baseline but missing from the run.
    pub missing: Vec<String>,
    pub tolerance: f64,
}

impl GateOutcome {
    /// True when no gated bench regressed and none went missing.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.lines.iter().all(|l| !l.regressed)
    }

    pub fn failures(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .lines
            .iter()
            .filter(|l| l.regressed)
            .map(|l| {
                format!(
                    "{}: {:.2}x baseline ({} ns -> {} ns scaled, tolerance {:.2}x)",
                    l.name, l.ratio, l.baseline_ns, l.scaled_current_ns, self.tolerance
                )
            })
            .collect();
        out.extend(
            self.missing
                .iter()
                .map(|n| format!("{n}: missing from run")),
        );
        out
    }
}

fn is_gated(name: &str) -> bool {
    GATED_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Compare `current` against `baseline` with a multiplicative `tolerance`
/// (1.5 = fail when a gated median exceeds 1.5× its calibrated baseline).
/// Returns `Err` when the reports are not comparable at all.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> Result<GateOutcome, String> {
    if baseline.schema_version != current.schema_version {
        return Err(format!(
            "schema mismatch: baseline v{} vs current v{}",
            baseline.schema_version, current.schema_version
        ));
    }
    if baseline.reduced != current.reduced {
        return Err(format!(
            "dataset mismatch: baseline reduced={} vs current reduced={}",
            baseline.reduced, current.reduced
        ));
    }
    if baseline.calibration_ns == 0 || current.calibration_ns == 0 {
        return Err("calibration_ns must be non-zero in both reports".into());
    }
    let scale = baseline.calibration_ns as f64 / current.calibration_ns as f64;

    let mut outcome = GateOutcome {
        tolerance,
        ..GateOutcome::default()
    };
    for base in &baseline.benches {
        let Some(cur) = current.bench(&base.name) else {
            if is_gated(&base.name) {
                outcome.missing.push(base.name.clone());
            }
            continue;
        };
        let scaled = (cur.median_ns as f64 * scale).round() as u64;
        let ratio = if base.median_ns == 0 {
            1.0
        } else {
            scaled as f64 / base.median_ns as f64
        };
        let gated = is_gated(&base.name);
        outcome.lines.push(GateLine {
            name: base.name.clone(),
            baseline_ns: base.median_ns,
            scaled_current_ns: scaled,
            ratio,
            gated,
            regressed: gated && ratio > tolerance,
        });
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, median_ns: u64) -> BenchEntry {
        BenchEntry {
            name: name.to_string(),
            median_ns,
            min_ns: median_ns / 2,
            max_ns: median_ns * 2,
            samples: 10,
        }
    }

    fn report(cal: u64, benches: Vec<BenchEntry>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            reduced: true,
            calibration_ns: cal,
            benches,
            telemetry: TelemetryReport::default(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(1_000, vec![entry("scan/vectorized", 500)]);
        let out = compare(&r, &r, 1.5).unwrap();
        assert!(out.passed());
        assert_eq!(out.lines.len(), 1);
        assert!((out.lines[0].ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = report(1_000, vec![entry("scan/vectorized", 500)]);
        let cur = report(1_000, vec![entry("scan/vectorized", 900)]);
        let out = compare(&base, &cur, 1.5).unwrap();
        assert!(!out.passed());
        assert_eq!(out.failures().len(), 1);
    }

    #[test]
    fn ungated_benches_never_fail() {
        let base = report(1_000, vec![entry("rl/ppo_iteration", 500)]);
        let cur = report(1_000, vec![entry("rl/ppo_iteration", 5_000)]);
        let out = compare(&base, &cur, 1.5).unwrap();
        assert!(out.passed(), "rl benches are informational only");
        assert!(!out.lines[0].gated);
    }

    #[test]
    fn calibration_rescales_cross_machine() {
        // Baseline machine is 2x faster (calibration 1000 vs 2000): a raw
        // 900ns current median is 450ns in baseline units — no regression.
        let base = report(1_000, vec![entry("join/sharded", 500)]);
        let cur = report(2_000, vec![entry("join/sharded", 900)]);
        let out = compare(&base, &cur, 1.5).unwrap();
        assert!(out.passed());
        assert_eq!(out.lines[0].scaled_current_ns, 450);
    }

    #[test]
    fn missing_gated_bench_fails() {
        let base = report(1_000, vec![entry("zonemap/clustered", 500)]);
        let cur = report(1_000, vec![]);
        let out = compare(&base, &cur, 1.5).unwrap();
        assert!(!out.passed());
        assert_eq!(out.missing, vec!["zonemap/clustered".to_string()]);
    }

    #[test]
    fn mismatched_datasets_are_not_comparable() {
        let base = report(1_000, vec![]);
        let mut cur = report(1_000, vec![]);
        cur.reduced = false;
        assert!(compare(&base, &cur, 1.5).is_err());
    }

    #[test]
    fn report_json_roundtrip() {
        let r = report(1_234, vec![entry("scan/vectorized", 42)]);
        let back = BenchReport::from_json(&r.to_json_pretty()).unwrap();
        assert_eq!(back.calibration_ns, 1_234);
        assert_eq!(back.benches, r.benches);
        assert!(back.reduced);
    }
}
