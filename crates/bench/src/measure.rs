//! A tiny self-contained measurement harness for the `bench_report`
//! binary. Criterion is a dev-dependency (benches only), so the regression
//! gate uses this instead: warmup + N timed samples → median, plus a
//! deterministic calibration workload that lets the gate rescale medians
//! recorded on a different machine.

use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark: monotonic-clock nanosecond statistics over
/// `samples` runs (after `warmup` discarded runs).
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub median_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub samples: u64,
}

/// Run `f` `warmup` times unmeasured, then `samples` times measured, and
/// return median/min/max wall-clock nanoseconds. `f` returns a value that
/// is black-boxed so the optimiser cannot elide the work.
pub fn measure<T, F: FnMut() -> T>(
    name: &str,
    warmup: usize,
    samples: usize,
    mut f: F,
) -> BenchResult {
    for _ in 0..warmup {
        black_box(f());
    }
    let samples = samples.max(1);
    let mut times: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed().as_nanos() as u64);
    }
    times.sort_unstable();
    BenchResult {
        name: name.to_string(),
        median_ns: median_of_sorted(&times),
        min_ns: times[0],
        max_ns: *times.last().unwrap(),
        samples: times.len() as u64,
    }
}

fn median_of_sorted(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// A fixed, deterministic CPU workload (integer xorshift mixing) timed on
/// this machine. Reports store its median so the regression gate can
/// rescale a baseline recorded on different hardware:
/// `scaled = median · baseline_cal / current_cal`.
pub fn calibration_ns() -> u64 {
    let mut times: Vec<u64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            let mut x: u64 = 0x9e3779b97f4a7c15;
            for i in 0..2_000_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x = x.wrapping_add(i);
            }
            black_box(x);
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    median_of_sorted(&times)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_stats() {
        let r = measure("spin", 1, 9, || {
            let mut s = 0u64;
            for i in 0..10_000u64 {
                s = s.wrapping_add(i * i);
            }
            s
        });
        assert_eq!(r.samples, 9);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.min_ns > 0, "a 10k-iteration loop cannot take 0ns");
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median_of_sorted(&[1, 3, 5]), 3);
        assert_eq!(median_of_sorted(&[2, 4]), 3);
    }

    #[test]
    fn calibration_is_nonzero() {
        assert!(calibration_ns() > 0);
    }
}
