//! Feature-hashing embedder for SQL queries and tuples.
//!
//! The paper embeds queries and rows with two modified sentence-BERT models;
//! both uses only need *token-overlap similarity* — clustering similar
//! queries, and measuring how close a new query is to the training workload.
//! A signed feature-hashing ("hashing trick") embedder preserves exactly that
//! signal, deterministically and with zero training. The tuple variant
//! includes column names as tokens, mirroring the paper's modification that
//! captures "both the meaning of the column as well as the value" (§4.2).

use crate::tokenize::{numeric_bucket, tokenize, with_bigrams};
use asqp_db::{Expr, Query, Row, Schema, SelectItem, Value};
use serde::{Deserialize, Serialize};

/// Deterministic 64-bit FNV-1a hash (stable across platforms and runs,
/// unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Signed feature-hashing embedder into `dim`-dimensional unit vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedder {
    pub dim: usize,
}

impl Default for Embedder {
    fn default() -> Self {
        Embedder { dim: 128 }
    }
}

impl Embedder {
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Embedder { dim }
    }

    /// Hash tokens into a signed frequency vector, then L2-normalise.
    pub fn embed_tokens<S: AsRef<str>>(&self, tokens: &[S]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        for t in tokens {
            let h = fnv1a(t.as_ref().as_bytes());
            let idx = (h % self.dim as u64) as usize;
            let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
            v[idx] += sign;
        }
        l2_normalize(&mut v);
        v
    }

    /// Embed a query: structural tokens (tables, join edges, predicate shape)
    /// plus bucketed literals, with bigrams for phrase sensitivity.
    pub fn embed_query(&self, q: &Query) -> Vec<f32> {
        let mut tokens: Vec<String> = Vec::new();
        for t in &q.from {
            tokens.push(format!("tbl:{}", t.table.to_lowercase()));
        }
        for j in &q.joins {
            // Join edges canonicalised so a=b and b=a embed identically.
            let mut pair = [
                j.left.to_string().to_lowercase(),
                j.right.to_string().to_lowercase(),
            ];
            pair.sort();
            tokens.push(format!("join:{}={}", pair[0], pair[1]));
        }
        for s in &q.select {
            if let SelectItem::Column(c) = s {
                tokens.push(format!("sel:{}", c.column.to_lowercase()));
            }
            if let SelectItem::Aggregate(a) = s {
                tokens.push(format!("agg:{}", a.func).to_lowercase());
                if let Some(c) = &a.arg {
                    tokens.push(format!("sel:{}", c.column.to_lowercase()));
                }
            }
        }
        for g in &q.group_by {
            tokens.push(format!("grp:{}", g.column.to_lowercase()));
        }
        if let Some(p) = &q.predicate {
            predicate_tokens(p, &mut tokens);
        }
        let tokens = with_bigrams(&tokens);
        self.embed_tokens(&tokens)
    }

    /// Embed a tuple: `col`, `col=value` and bucketed-numeric tokens.
    pub fn embed_tuple(&self, schema: &Schema, row: &Row) -> Vec<f32> {
        let mut tokens: Vec<String> = Vec::new();
        for (cdef, v) in schema.columns().iter().zip(row) {
            let col = cdef.name.to_lowercase();
            tokens.push(format!("col:{col}"));
            match v {
                Value::Null => tokens.push(format!("{col}=null")),
                Value::Str(s) => {
                    for t in tokenize(s) {
                        tokens.push(format!("{col}={t}"));
                        tokens.push(format!("val:{t}"));
                    }
                }
                Value::Int(i) => tokens.push(format!("{col}={}", numeric_bucket(*i as f64))),
                Value::Float(f) => tokens.push(format!("{col}={}", numeric_bucket(*f))),
                Value::Bool(b) => tokens.push(format!("{col}={b}")),
            }
        }
        self.embed_tokens(&tokens)
    }
}

/// Tokens describing a predicate's shape and (bucketed) constants.
fn predicate_tokens(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Column(c) => out.push(format!("pcol:{}", c.column.to_lowercase())),
        Expr::Slot(s) => out.push(format!("pslot:{s}")),
        Expr::Literal(v) => out.push(literal_token(v)),
        Expr::Cmp { op, lhs, rhs } => {
            out.push(format!("op:{op}"));
            predicate_tokens(lhs, out);
            predicate_tokens(rhs, out);
        }
        Expr::Arith { op, lhs, rhs } => {
            out.push(format!("op:{op}"));
            predicate_tokens(lhs, out);
            predicate_tokens(rhs, out);
        }
        Expr::And(a, b) => {
            predicate_tokens(a, out);
            predicate_tokens(b, out);
        }
        Expr::Or(a, b) => {
            out.push("op:or".to_string());
            predicate_tokens(a, out);
            predicate_tokens(b, out);
        }
        Expr::Not(x) => {
            out.push("op:not".to_string());
            predicate_tokens(x, out);
        }
        Expr::In { expr, list, .. } => {
            out.push("op:in".to_string());
            predicate_tokens(expr, out);
            for v in list {
                out.push(literal_token(v));
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            out.push("op:between".to_string());
            predicate_tokens(expr, out);
            predicate_tokens(low, out);
            predicate_tokens(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            out.push("op:like".to_string());
            predicate_tokens(expr, out);
            for t in tokenize(pattern) {
                out.push(format!("lit:{t}"));
            }
        }
        Expr::IsNull { expr, .. } => {
            out.push("op:isnull".to_string());
            predicate_tokens(expr, out);
        }
    }
}

fn literal_token(v: &Value) -> String {
    match v {
        Value::Null => "lit:null".to_string(),
        Value::Int(i) => format!("lit:{}", numeric_bucket(*i as f64)),
        Value::Float(f) => format!("lit:{}", numeric_bucket(*f)),
        Value::Bool(b) => format!("lit:{b}"),
        Value::Str(s) => {
            let toks = tokenize(s);
            if toks.is_empty() {
                "lit:empty".to_string()
            } else {
                format!("lit:{}", toks.join("_"))
            }
        }
    }
}

/// In-place L2 normalisation (no-op for the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
}

/// Cosine similarity of two equal-length vectors (0 for zero vectors).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Squared Euclidean distance.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_db::sql::parse;
    use asqp_db::ValueType;

    #[test]
    fn deterministic_embeddings() {
        let e = Embedder::new(64);
        let a = e.embed_tokens(&["hello", "world"]);
        let b = e.embed_tokens(&["hello", "world"]);
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_queries_embed_closer_than_dissimilar() {
        let e = Embedder::new(256);
        let q1 = parse("SELECT m.title FROM movies m WHERE m.year > 1994").unwrap();
        let q2 = parse("SELECT m.title FROM movies m WHERE m.year > 1996").unwrap();
        let q3 = parse("SELECT f.carrier FROM flights f WHERE f.dep_delay > 60").unwrap();
        let (v1, v2, v3) = (e.embed_query(&q1), e.embed_query(&q2), e.embed_query(&q3));
        let close = cosine(&v1, &v2);
        let far = cosine(&v1, &v3);
        assert!(
            close > far + 0.2,
            "similar queries should be closer: close={close} far={far}"
        );
    }

    #[test]
    fn join_order_canonicalised() {
        let e = Embedder::new(256);
        let q1 = parse("SELECT * FROM a, b WHERE a.x = b.y").unwrap();
        let q2 = parse("SELECT * FROM a, b WHERE b.y = a.x").unwrap();
        let (v1, v2) = (e.embed_query(&q1), e.embed_query(&q2));
        assert!(cosine(&v1, &v2) > 0.999);
    }

    #[test]
    fn tuple_embedding_reflects_value_overlap() {
        let e = Embedder::new(256);
        let schema = asqp_db::Schema::build(&[("title", ValueType::Str), ("year", ValueType::Int)]);
        let r1 = vec![Value::Str("star wars".into()), Value::Int(1977)];
        let r2 = vec![Value::Str("star trek".into()), Value::Int(1979)];
        let r3 = vec![Value::Str("amelie".into()), Value::Int(2001)];
        let (v1, v2, v3) = (
            e.embed_tuple(&schema, &r1),
            e.embed_tuple(&schema, &r2),
            e.embed_tuple(&schema, &r3),
        );
        assert!(cosine(&v1, &v2) > cosine(&v1, &v3));
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn fnv_stable() {
        // Pin the hash so serialized embeddings stay comparable across builds.
        assert_eq!(super::fnv1a(b"asqp"), super::fnv1a(b"asqp"));
        assert_ne!(super::fnv1a(b"asqp"), super::fnv1a(b"aspq"));
    }
}
