//! # asqp-embed — query & tuple embeddings for ASQP-RL
//!
//! Deterministic substitute for the paper's modified sentence-BERT models:
//!
//! * [`Embedder`] — signed feature-hashing into unit vectors, with a query
//!   mode (structure + bucketed literals) and a tuple mode (column names as
//!   tokens, per the paper's tabular adaptation)
//! * [`cosine`] / [`sq_dist`] — similarity primitives
//! * [`kmeans`] / [`kmedoids`] — representative selection, drift clustering
//!   and the QRD baseline's medoid step
//!
//! See DESIGN.md §2 for why feature hashing preserves the two signals the
//! paper actually uses embeddings for.

pub mod cluster;
pub mod embedder;
pub mod tokenize;

pub use cluster::{kmeans, kmedoids, Clustering};
pub use embedder::{cosine, l2_normalize, sq_dist, Embedder};
pub use tokenize::{numeric_bucket, tokenize, with_bigrams};
