//! Clustering over embedding vectors: k-means (query-representative
//! selection, drift clustering) and k-medoids (the QRD baseline).

use crate::embedder::sq_dist;
use rand::Rng;

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Cluster centres (means for k-means, medoid vectors for k-medoids).
    pub centroids: Vec<Vec<f32>>,
    /// For k-medoids: the index of each medoid in the input set.
    pub medoid_indices: Vec<usize>,
    /// Sum of squared distances to assigned centres.
    pub inertia: f32,
}

impl Clustering {
    /// The input index closest to each centroid (useful to pick one
    /// *representative* per cluster from the original points).
    pub fn representatives(&self, points: &[Vec<f32>]) -> Vec<usize> {
        if !self.medoid_indices.is_empty() {
            return self.medoid_indices.clone();
        }
        self.centroids
            .iter()
            .map(|c| {
                let mut best = 0;
                let mut best_d = f32::INFINITY;
                for (i, p) in points.iter().enumerate() {
                    let d = sq_dist(p, c);
                    if d < best_d {
                        best = i;
                        best_d = d;
                    }
                }
                best
            })
            .collect()
    }
}

/// Lloyd's k-means with k-means++ seeding. Deterministic in `rng`.
/// `k` is clamped to the number of points; empty input yields no clusters.
pub fn kmeans(points: &[Vec<f32>], k: usize, max_iters: usize, rng: &mut impl Rng) -> Clustering {
    let n = points.len();
    let k = k.min(n);
    if k == 0 {
        return Clustering {
            assignment: Vec::new(),
            centroids: Vec::new(),
            medoid_indices: Vec::new(),
            inertia: 0.0,
        };
    }
    let dim = points[0].len();

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..n)].clone());
    let mut dists: Vec<f32> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f32 = dists.iter().sum();
        let idx = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut u = rng.random_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                if u < d {
                    pick = i;
                    break;
                }
                u -= d;
            }
            pick
        };
        centroids.push(points[idx].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().unwrap());
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; n];
    for _ in 0..max_iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (ci, c) in centroids.iter().enumerate() {
                let d = sq_dist(p, c);
                if d < best_d {
                    best = ci;
                    best_d = d;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids; empty clusters re-seed on the farthest point.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &x) in sums[assignment[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for ci in 0..k {
            if counts[ci] == 0 {
                let far = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(&points[a], &centroids[assignment[a]])
                            .partial_cmp(&sq_dist(&points[b], &centroids[assignment[b]]))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0);
                centroids[ci] = points[far].clone();
            } else {
                for (c, s) in centroids[ci].iter_mut().zip(&sums[ci]) {
                    *c = s / counts[ci] as f32;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .enumerate()
        .map(|(i, p)| sq_dist(p, &centroids[assignment[i]]))
        .sum();
    Clustering {
        assignment,
        centroids,
        medoid_indices: Vec::new(),
        inertia,
    }
}

/// k-medoids via alternating assignment / medoid update (Voronoi iteration)
/// — the "select the medoids of clusters, then re-assign" algorithm the QRD
/// baseline uses (Liu & Jagadish, VLDB 2009).
pub fn kmedoids(points: &[Vec<f32>], k: usize, max_iters: usize, rng: &mut impl Rng) -> Clustering {
    let n = points.len();
    let k = k.min(n);
    if k == 0 {
        return Clustering {
            assignment: Vec::new(),
            centroids: Vec::new(),
            medoid_indices: Vec::new(),
            inertia: 0.0,
        };
    }

    // Random distinct initial medoids.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    while medoids.len() < k {
        let c = rng.random_range(0..n);
        if !medoids.contains(&c) {
            medoids.push(c);
        }
    }

    let mut assignment = vec![0usize; n];
    for _ in 0..max_iters {
        // Assign to nearest medoid.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (mi, &m) in medoids.iter().enumerate() {
                let d = sq_dist(p, &points[m]);
                if d < best_d {
                    best = mi;
                    best_d = d;
                }
            }
            assignment[i] = best;
        }
        // Update each medoid to the in-cluster point minimising total distance.
        let mut changed = false;
        for (mi, med) in medoids.iter_mut().enumerate().take(k) {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == mi).collect();
            if members.is_empty() {
                continue;
            }
            let mut best = *med;
            let mut best_cost = f32::INFINITY;
            for &cand in &members {
                let cost: f32 = members
                    .iter()
                    .map(|&m| sq_dist(&points[cand], &points[m]))
                    .sum();
                if cost < best_cost {
                    best = cand;
                    best_cost = cost;
                }
            }
            if best != *med {
                *med = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .enumerate()
        .map(|(i, p)| sq_dist(p, &points[medoids[assignment[i]]]))
        .sum();
    Clustering {
        assignment,
        centroids: medoids.iter().map(|&m| points[m].clone()).collect(),
        medoid_indices: medoids,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f32 * 0.01;
            pts.push(vec![1.0 + jitter, 1.0 - jitter]);
            pts.push(vec![-1.0 - jitter, -1.0 + jitter]);
        }
        pts
    }

    #[test]
    fn kmeans_separates_blobs() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let c = kmeans(&pts, 2, 50, &mut rng);
        // Points at even indices are blob A, odd are blob B.
        let a0 = c.assignment[0];
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(c.assignment[i], a0);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_ne!(c.assignment[i], a0);
        }
        assert!(c.inertia < 0.1);
    }

    #[test]
    fn kmedoids_picks_input_points() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(2);
        let c = kmedoids(&pts, 2, 50, &mut rng);
        assert_eq!(c.medoid_indices.len(), 2);
        for (&m, cvec) in c.medoid_indices.iter().zip(&c.centroids) {
            assert_eq!(&pts[m], cvec);
        }
        let reps = c.representatives(&pts);
        assert_eq!(reps, c.medoid_indices);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![0.0f32], vec![1.0]];
        let mut rng = StdRng::seed_from_u64(3);
        let c = kmeans(&pts, 10, 10, &mut rng);
        assert_eq!(c.centroids.len(), 2);
        let c2 = kmedoids(&pts, 10, 10, &mut rng);
        assert_eq!(c2.medoid_indices.len(), 2);
    }

    #[test]
    fn empty_input() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = kmeans(&[], 3, 10, &mut rng);
        assert!(c.centroids.is_empty());
        assert!(c.assignment.is_empty());
    }

    #[test]
    fn representatives_close_to_centroids() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(5);
        let c = kmeans(&pts, 2, 50, &mut rng);
        let reps = c.representatives(&pts);
        assert_eq!(reps.len(), 2);
        for (ri, &rep) in reps.iter().enumerate() {
            assert!(sq_dist(&pts[rep], &c.centroids[ri]) < 0.1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, 2, 50, &mut StdRng::seed_from_u64(7));
        let b = kmeans(&pts, 2, 50, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.assignment, b.assignment);
    }
}
