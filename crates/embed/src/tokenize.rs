//! Tokenisation of SQL text and tuple values into embedding tokens.

/// Lowercase and split on non-alphanumeric boundaries, dropping empties.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() || ch == '_' {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Bucket a numeric value into a coarse magnitude token, so numerically
/// close literals produce the same token (range similarity for queries like
/// `year > 1994` vs `year > 1996`).
pub fn numeric_bucket(v: f64) -> String {
    if !v.is_finite() {
        return "num:nan".to_string();
    }
    if v == 0.0 {
        return "num:0".to_string();
    }
    let sign = if v < 0.0 { "-" } else { "" };
    let a = v.abs();
    let exp = a.log10().floor() as i32;
    // Two buckets per decade: mantissa below/above ~3.16.
    let half = if a / 10f64.powi(exp) >= 3.1622776601683795 {
        "b"
    } else {
        "a"
    };
    format!("num:{sign}{exp}{half}")
}

/// N-gram expansion (bigrams of adjacent tokens) gives mild phrase
/// sensitivity without a learned model.
pub fn with_bigrams(tokens: &[String]) -> Vec<String> {
    let mut out = tokens.to_vec();
    for w in tokens.windows(2) {
        out.push(format!("{}+{}", w[0], w[1]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_sql() {
        let t = tokenize("SELECT m.title FROM movies WHERE m.year > 2000");
        assert_eq!(
            t,
            vec!["select", "m", "title", "from", "movies", "where", "m", "year", "2000"]
        );
    }

    #[test]
    fn tokenize_handles_unicode_and_underscores() {
        assert_eq!(tokenize("cast_info Ärger"), vec!["cast_info", "ärger"]);
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn numeric_buckets_group_close_values() {
        assert_eq!(numeric_bucket(1994.0), numeric_bucket(1996.0));
        assert_ne!(numeric_bucket(1994.0), numeric_bucket(200.0));
        assert_ne!(numeric_bucket(5.0), numeric_bucket(-5.0));
        assert_eq!(numeric_bucket(0.0), "num:0");
        assert_eq!(numeric_bucket(f64::NAN), "num:nan");
        // 2 and 9 share a decade but not a half-decade bucket.
        assert_ne!(numeric_bucket(2.0), numeric_bucket(9.0));
    }

    #[test]
    fn bigrams_appended() {
        let toks: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let bg = with_bigrams(&toks);
        assert!(bg.contains(&"a+b".to_string()));
        assert!(bg.contains(&"b+c".to_string()));
        assert_eq!(bg.len(), 5);
    }
}
