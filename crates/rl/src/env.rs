//! Gym-style environment interface (the paper uses OpenAI Gym; this trait is
//! its minimal Rust equivalent, extended with action masks).

/// Result of one environment transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation after the step.
    pub state: Vec<f32>,
    pub reward: f32,
    pub done: bool,
}

/// A discrete-action environment with action masking.
///
/// Implementations must be deterministic given their own internal RNG state
/// so that experiments are reproducible.
pub trait Environment {
    /// Size of the (fixed) discrete action space.
    fn action_count(&self) -> usize;

    /// Dimensionality of state observations.
    fn state_dim(&self) -> usize;

    /// Reset to the initial state and return the first observation.
    fn reset(&mut self) -> Vec<f32>;

    /// Validity mask over actions for the *current* state: `mask[a]` is
    /// `true` iff action `a` may be chosen. At least one entry must be true
    /// unless the episode is done.
    fn valid_actions(&self) -> Vec<bool>;

    /// Apply an action. Panics if the action is invalid (callers must mask).
    fn step(&mut self, action: usize) -> Transition;
}

/// A tiny deterministic coverage environment used by unit tests across the
/// RL stack: `n` actions, each action covers a weighted "query"; reward is
/// the weight the chosen action adds; episodes last `budget` steps. Optimal
/// play selects the `budget` heaviest actions.
#[derive(Debug, Clone)]
pub struct ToyCoverageEnv {
    pub weights: Vec<f32>,
    pub budget: usize,
    selected: Vec<bool>,
    steps: usize,
}

impl ToyCoverageEnv {
    pub fn new(weights: Vec<f32>, budget: usize) -> Self {
        let n = weights.len();
        assert!(budget <= n, "budget must not exceed the action count");
        ToyCoverageEnv {
            weights,
            budget,
            selected: vec![false; n],
            steps: 0,
        }
    }

    fn observation(&self) -> Vec<f32> {
        self.selected
            .iter()
            .map(|&s| if s { 1.0 } else { 0.0 })
            .collect()
    }
}

impl Environment for ToyCoverageEnv {
    fn action_count(&self) -> usize {
        self.weights.len()
    }

    fn state_dim(&self) -> usize {
        self.weights.len()
    }

    fn reset(&mut self) -> Vec<f32> {
        self.selected.iter_mut().for_each(|s| *s = false);
        self.steps = 0;
        self.observation()
    }

    fn valid_actions(&self) -> Vec<bool> {
        self.selected.iter().map(|&s| !s).collect()
    }

    fn step(&mut self, action: usize) -> Transition {
        assert!(
            !self.selected[action],
            "invalid action {action} re-selected"
        );
        self.selected[action] = true;
        self.steps += 1;
        Transition {
            state: self.observation(),
            reward: self.weights[action],
            done: self.steps >= self.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_env_masks_and_terminates() {
        let mut env = ToyCoverageEnv::new(vec![1.0, 2.0, 3.0], 2);
        let s0 = env.reset();
        assert_eq!(s0, vec![0.0, 0.0, 0.0]);
        assert_eq!(env.valid_actions(), vec![true, true, true]);
        let t1 = env.step(2);
        assert_eq!(t1.reward, 3.0);
        assert!(!t1.done);
        assert_eq!(env.valid_actions(), vec![true, true, false]);
        let t2 = env.step(1);
        assert!(t2.done);
        assert_eq!(t2.state, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "re-selected")]
    fn repeating_action_panics() {
        let mut env = ToyCoverageEnv::new(vec![1.0, 2.0], 2);
        env.reset();
        env.step(0);
        env.step(0);
    }
}
