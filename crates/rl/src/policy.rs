//! Masked actor–critic policy: an actor MLP producing logits over the
//! action space and a critic MLP producing a state-value estimate
//! (paper §5.1: "a large input layer matching the action space's size,
//! followed by smaller fully-connected layers", softmax policy head, linear
//! value head).

use asqp_nn::{func, Activation, Mlp};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What the policy returns when asked to act.
#[derive(Debug, Clone)]
pub struct ActionSample {
    pub action: usize,
    pub logprob: f32,
    pub value: f32,
    /// Full masked action distribution (stored for the KL penalty).
    pub probs: Vec<f32>,
}

/// Actor + critic networks sharing the state encoding convention.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActorCritic {
    pub actor: Mlp,
    pub critic: Mlp,
    pub n_actions: usize,
}

impl ActorCritic {
    /// `hidden` lists hidden-layer widths, e.g. `[256, 128]`.
    pub fn new(state_dim: usize, n_actions: usize, hidden: &[usize], rng: &mut impl Rng) -> Self {
        let mut actor_sizes = vec![state_dim];
        actor_sizes.extend_from_slice(hidden);
        actor_sizes.push(n_actions);
        let mut critic_sizes = vec![state_dim];
        critic_sizes.extend_from_slice(hidden);
        critic_sizes.push(1);
        ActorCritic {
            actor: Mlp::new(&actor_sizes, Activation::Tanh, rng),
            critic: Mlp::new(&critic_sizes, Activation::Tanh, rng),
            n_actions,
        }
    }

    /// Masked action probabilities for one state (inference, no caches).
    pub fn action_probs(&self, state: &[f32], mask: &[bool]) -> Vec<f32> {
        let mut row = self.actor.infer_row(state);
        func::mask_logits(&mut row, mask);
        func::softmax_in_place(&mut row);
        row
    }

    /// State value estimate (inference).
    pub fn value(&self, state: &[f32]) -> f32 {
        self.critic.infer_row(state)[0]
    }

    /// Fused rollout-path evaluation: masked action distribution and state
    /// value from one pass over the state, using the allocation-light
    /// single-row kernels. Bit-identical to calling [`Self::action_probs`]
    /// and [`Self::value`] separately (same kernels, same order) — the win
    /// is walking the state once and skipping the `Matrix` wrappers, which
    /// dominates at rollout batch size 1.
    pub fn probs_and_value(&self, state: &[f32], mask: &[bool]) -> (Vec<f32>, f32) {
        let mut row = self.actor.infer_row(state);
        func::mask_logits(&mut row, mask);
        func::softmax_in_place(&mut row);
        let value = self.critic.infer_row(state)[0];
        (row, value)
    }

    /// Sample an action from the masked policy. One fused
    /// [`Self::probs_and_value`] evaluation per call — this is the rollout
    /// hot path.
    pub fn act(&self, state: &[f32], mask: &[bool], rng: &mut impl Rng) -> ActionSample {
        debug_assert!(mask.iter().any(|&m| m), "fully-masked state");
        let (probs, value) = self.probs_and_value(state, mask);
        let action = func::sample_categorical(&probs, rng);
        ActionSample {
            action,
            logprob: probs[action].max(1e-20).ln(),
            value,
            probs,
        }
    }

    /// Greedy (argmax) action — used at inference time (Algorithm 2).
    /// Skips the softmax: argmax over masked logits equals argmax over
    /// masked probabilities.
    pub fn act_greedy(&self, state: &[f32], mask: &[bool]) -> usize {
        let mut row = self.actor.infer_row(state);
        func::mask_logits(&mut row, mask);
        func::argmax(&row)
    }

    pub fn param_count(&self) -> usize {
        self.actor.param_count() + self.critic.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masked_actions_never_sampled() {
        let mut rng = StdRng::seed_from_u64(0);
        let ac = ActorCritic::new(4, 4, &[8], &mut rng);
        let state = vec![0.0; 4];
        let mask = vec![true, false, true, false];
        for _ in 0..200 {
            let s = ac.act(&state, &mask, &mut rng);
            assert!(mask[s.action], "sampled masked action {}", s.action);
            assert_eq!(s.probs[1], 0.0);
            assert_eq!(s.probs[3], 0.0);
        }
    }

    #[test]
    fn probs_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let ac = ActorCritic::new(3, 5, &[8], &mut rng);
        let p = ac.action_probs(&[0.1, -0.2, 0.3], &[true; 5]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn greedy_matches_top_prob() {
        let mut rng = StdRng::seed_from_u64(2);
        let ac = ActorCritic::new(3, 4, &[8], &mut rng);
        let state = vec![1.0, 2.0, -1.0];
        let mask = vec![true; 4];
        let probs = ac.action_probs(&state, &mask);
        let greedy = ac.act_greedy(&state, &mask);
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(greedy, best);
    }

    #[test]
    fn fused_probs_and_value_match_separate_calls() {
        let mut rng = StdRng::seed_from_u64(5);
        let ac = ActorCritic::new(4, 6, &[16, 8], &mut rng);
        let state = vec![0.2, -1.3, 0.8, 0.0];
        let mask = vec![true, true, false, true, false, true];
        let (probs, value) = ac.probs_and_value(&state, &mask);
        assert_eq!(probs, ac.action_probs(&state, &mask));
        assert_eq!(value, ac.value(&state));
    }

    #[test]
    fn logprob_consistent_with_probs() {
        let mut rng = StdRng::seed_from_u64(3);
        let ac = ActorCritic::new(2, 3, &[4], &mut rng);
        let s = ac.act(&[0.5, 0.5], &[true, true, true], &mut rng);
        assert!((s.logprob.exp() - s.probs[s.action]).abs() < 1e-5);
    }
}
