//! The training loop: parallel rollout collection plus one of three update
//! rules — PPO-clip with a KL penalty (the full ASQP-RL agent), A2C (the
//! paper's "−ppo" ablation) and REINFORCE (the "−ppo −ac" ablation).

use crate::env::Environment;
use crate::policy::ActorCritic;
use crate::rollout::{RolloutBuffer, StoredStep};
use asqp_nn::{func, Adam, LayerGrads, Matrix};
use asqp_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which update rule drives learning (the paper's ablation axis, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentKind {
    /// Actor–critic + PPO clipped surrogate + KL penalty (full ASQP-RL).
    Ppo,
    /// Actor–critic with a plain policy-gradient loss ("ASQP-RL − ppo").
    A2c,
    /// REINFORCE: no critic baseline, no clipping ("ASQP-RL − ppo − ac").
    Reinforce,
}

/// Trainer hyper-parameters. Defaults follow the paper's §6.1 settings:
/// learning rate 5·10⁻⁵, KL coefficient 0.2, entropy coefficient 0.001.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainerConfig {
    pub agent: AgentKind,
    pub learning_rate: f32,
    pub gamma: f32,
    pub gae_lambda: f32,
    pub clip_epsilon: f32,
    pub kl_coef: f32,
    pub entropy_coef: f32,
    pub value_coef: f32,
    /// PPO optimisation epochs per iteration (K in Algorithm 3).
    pub update_epochs: usize,
    pub minibatch_size: usize,
    /// Parallel actor-learners (the paper trains 32 asynchronously).
    pub num_workers: usize,
    /// Rollout horizon per worker per iteration (T in Algorithm 3).
    pub steps_per_worker: usize,
    /// Hidden-layer widths for both networks.
    pub hidden: Vec<usize>,
    pub seed: u64,
}

impl TrainerConfig {
    /// Clamp degenerate values to their working minimums: `num_workers = 0`
    /// would otherwise request an empty rollout ensemble, and zero
    /// `steps_per_worker`/`minibatch_size` would starve every update.
    /// [`Trainer::new`] applies this, so a hand-built config can never
    /// silently train on no data.
    pub fn validated(mut self) -> Self {
        self.num_workers = self.num_workers.max(1);
        self.steps_per_worker = self.steps_per_worker.max(1);
        self.minibatch_size = self.minibatch_size.max(1);
        self
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            agent: AgentKind::Ppo,
            learning_rate: 5e-5,
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_epsilon: 0.2,
            kl_coef: 0.2,
            entropy_coef: 0.001,
            value_coef: 0.5,
            update_epochs: 4,
            minibatch_size: 64,
            num_workers: 4,
            steps_per_worker: 128,
            hidden: vec![128, 64],
            seed: 0,
        }
    }
}

/// Per-iteration training diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationStats {
    pub mean_episode_reward: f32,
    pub policy_loss: f32,
    pub value_loss: f32,
    pub entropy: f32,
    pub approx_kl: f32,
    pub steps: usize,
}

/// PPO/A2C/REINFORCE trainer over any [`Environment`].
pub struct Trainer {
    pub config: TrainerConfig,
    pub policy: ActorCritic,
    actor_opt: Adam,
    critic_opt: Adam,
    rng: StdRng,
}

impl Trainer {
    pub fn new(config: TrainerConfig, state_dim: usize, n_actions: usize) -> Self {
        let config = config.validated();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let policy = ActorCritic::new(state_dim, n_actions, &config.hidden, &mut rng);
        let actor_opt = Adam::new(config.learning_rate).with_max_grad_norm(Some(0.5));
        let critic_opt = Adam::new(config.learning_rate).with_max_grad_norm(Some(0.5));
        Trainer {
            config,
            policy,
            actor_opt,
            critic_opt,
            rng,
        }
    }

    /// Change the learning rate mid-run (used by ASQP-Light and the
    /// adaptive-configuration mode).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.config.learning_rate = lr;
        self.actor_opt.set_lr(lr);
        self.critic_opt.set_lr(lr);
    }

    /// Collect one iteration's worth of experience. With more than one
    /// worker, environments are cloned and rolled out on parallel threads
    /// (crossbeam scope), mirroring the paper's asynchronous actor-learners.
    pub fn collect<E>(&mut self, env: &E) -> RolloutBuffer
    where
        E: Environment + Clone + Send + Sync,
    {
        let workers = self.config.num_workers.max(1);
        let steps = self.config.steps_per_worker;
        let policy = &self.policy;
        let seeds: Vec<u64> = (0..workers).map(|_| self.rng.random()).collect();

        if workers == 1 {
            return rollout_worker(env.clone(), policy, steps, seeds[0]);
        }

        let mut buffers: Vec<RolloutBuffer> = Vec::with_capacity(workers);
        // asqp::in-order-merge: handles joined in spawn (seed) order below
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    let env = env.clone();
                    scope.spawn(move |_| rollout_worker(env, policy, steps, seed))
                })
                .collect();
            for h in handles {
                buffers.push(h.join().expect("rollout worker panicked"));
            }
        })
        .expect("crossbeam scope failed");

        let mut merged = RolloutBuffer::new();
        for b in buffers {
            merged.extend(b);
        }
        merged
    }

    /// One full iteration: collect + update. Returns diagnostics, and —
    /// when a telemetry recorder is installed — emits per-iteration spans,
    /// rollout throughput and the loss gauges.
    pub fn train_iteration<E>(&mut self, env: &E) -> IterationStats
    where
        E: Environment + Clone + Send + Sync,
    {
        let _iter_span = telemetry::span("rl.iteration");
        // asqp::allow(nondet): telemetry-gated timing; never feeds scores
        let collect_start = telemetry::enabled().then(Instant::now);
        let buf = {
            let _collect_span = telemetry::span("rl.collect");
            self.collect(env)
        };
        if let Some(t0) = collect_start {
            let secs = t0.elapsed().as_secs_f64();
            if secs > 0.0 {
                telemetry::gauge("rl.rollout_steps_per_sec", buf.len() as f64 / secs);
            }
            telemetry::counter("rl.steps", buf.len() as u64);
        }
        let mean_episode_reward = buf.mean_episode_reward();
        let (policy_loss, value_loss, entropy, approx_kl) = {
            let _update_span = telemetry::span("rl.update");
            self.update(&buf)
        };
        if telemetry::enabled() {
            telemetry::counter("rl.iterations", 1);
            telemetry::gauge("rl.mean_episode_reward", mean_episode_reward as f64);
            telemetry::gauge("rl.policy_loss", policy_loss as f64);
            telemetry::gauge("rl.value_loss", value_loss as f64);
            telemetry::gauge("rl.entropy", entropy as f64);
            telemetry::gauge("rl.approx_kl", approx_kl as f64);
        }
        IterationStats {
            mean_episode_reward,
            policy_loss,
            value_loss,
            entropy,
            approx_kl,
            steps: buf.len(),
        }
    }

    /// Gradient update(s) from a rollout buffer. Public so determinism
    /// tests (and external training drivers) can feed an identical buffer
    /// through trainers configured with different worker counts and assert
    /// byte-identical parameters. Returns mean (policy_loss, value_loss,
    /// entropy, approx_kl) over the minibatches.
    pub fn update(&mut self, buf: &RolloutBuffer) -> (f32, f32, f32, f32) {
        if buf.is_empty() {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let cfg = self.config.clone();
        let (advantages, returns) = match cfg.agent {
            // REINFORCE has no baseline: advantage = normalised return.
            AgentKind::Reinforce => {
                let (_, ret) = buf.gae(cfg.gamma, 1.0);
                let n = ret.len() as f32;
                let mean = ret.iter().sum::<f32>() / n;
                let var = ret.iter().map(|r| (r - mean) * (r - mean)).sum::<f32>() / n;
                let std = var.sqrt().max(1e-6);
                let adv: Vec<f32> = ret.iter().map(|r| (r - mean) / std).collect();
                (adv, ret)
            }
            _ => buf.normalized_advantages(cfg.gamma, cfg.gae_lambda),
        };

        let epochs = match cfg.agent {
            AgentKind::Ppo => cfg.update_epochs,
            _ => 1, // single pass: re-using stale data needs the PPO trust region
        };

        let n = buf.len();
        let mut order: Vec<usize> = (0..n).collect();
        let (mut pl_sum, mut vl_sum, mut ent_sum, mut kl_sum) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut batches = 0usize;

        for _ in 0..epochs {
            // Shuffle minibatch order.
            for i in (1..n).rev() {
                let j = self.rng.random_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(cfg.minibatch_size.max(1)) {
                let stats = self.update_minibatch(buf, chunk, &advantages, &returns);
                pl_sum += stats.0 as f64;
                vl_sum += stats.1 as f64;
                ent_sum += stats.2 as f64;
                kl_sum += stats.3 as f64;
                batches += 1;
            }
        }
        let b = batches.max(1) as f64;
        (
            (pl_sum / b) as f32,
            (vl_sum / b) as f32,
            (ent_sum / b) as f32,
            (kl_sum / b) as f32,
        )
    }

    /// One minibatch gradient step, sharded across data-parallel workers.
    ///
    /// The minibatch is cut into fixed [`GRAD_SHARD_ROWS`]-row logical
    /// shards; each shard runs an independent tape-based forward/backward
    /// against the shared (immutable) policy, and the per-shard gradients
    /// are reduced in shard order. The shard boundaries and the reduction
    /// order depend only on the minibatch — never on the thread count — so
    /// the updated parameters are byte-identical whether the shards run on
    /// one thread or many.
    ///
    /// Returns (policy_loss, value_loss, entropy, approx_kl) for the batch.
    fn update_minibatch(
        &mut self,
        buf: &RolloutBuffer,
        idx: &[usize],
        advantages: &[f32],
        returns: &[f32],
    ) -> (f32, f32, f32, f32) {
        let _span = telemetry::span("rl.update_minibatch");
        let m = idx.len();
        let use_critic = !matches!(self.config.agent, AgentKind::Reinforce);

        let shards: Vec<&[usize]> = idx.chunks(GRAD_SHARD_ROWS).collect();
        let results: Vec<ShardGrads> = {
            let policy = &self.policy;
            let cfg = &self.config;
            let threads = cfg
                .num_workers
                .min(shards.len())
                .min(
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                )
                .max(1);
            if threads <= 1 {
                shards
                    .iter()
                    .map(|s| minibatch_shard(policy, cfg, buf, s, advantages, returns, m))
                    .collect()
            } else {
                // asqp::in-order-merge: handles joined in spawn order below
                // Static contiguous partition of the shard list; joining the
                // thread handles in spawn order keeps the flattened result in
                // shard order, which the reduction below relies on.
                let per_thread = shards.len().div_ceil(threads);
                let mut out = Vec::with_capacity(shards.len());
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = shards
                        .chunks(per_thread)
                        .map(|group| {
                            scope.spawn(move |_| {
                                group
                                    .iter()
                                    .map(|s| {
                                        minibatch_shard(policy, cfg, buf, s, advantages, returns, m)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        out.extend(h.join().expect("gradient shard worker panicked"));
                    }
                })
                .expect("crossbeam scope failed");
                out
            }
        };

        // In-order reduction (f32 addition is not associative; see the
        // determinism note above).
        let mut results = results.into_iter();
        let first = results.next().expect("minibatch has at least one shard");
        let mut actor_grads = first.actor;
        let mut critic_grads = first.critic;
        let (mut policy_loss, mut value_loss) = (first.policy_loss, first.value_loss);
        let (mut entropy_total, mut approx_kl) = (first.entropy, first.approx_kl);
        for r in results {
            for (acc, g) in actor_grads.iter_mut().zip(&r.actor) {
                acc.accumulate(g);
            }
            if let (Some(acc_layers), Some(g_layers)) = (critic_grads.as_mut(), r.critic.as_ref()) {
                for (acc, g) in acc_layers.iter_mut().zip(g_layers) {
                    acc.accumulate(g);
                }
            }
            policy_loss += r.policy_loss;
            value_loss += r.value_loss;
            entropy_total += r.entropy;
            approx_kl += r.approx_kl;
        }

        self.actor_opt
            .step(self.policy.actor.params_with_grads(&actor_grads));
        if use_critic {
            let cg = critic_grads.expect("critic shards ran");
            self.critic_opt
                .step(self.policy.critic.params_with_grads(&cg));
        }

        (
            policy_loss / m as f32,
            value_loss / m as f32,
            entropy_total / m as f32,
            approx_kl / m as f32,
        )
    }
}

/// Rows per gradient shard in [`Trainer::update_minibatch`]. Fixed (rather
/// than derived from the worker count) so the floating-point reduction tree
/// — and therefore every updated parameter bit — is the same no matter how
/// many threads execute the shards.
const GRAD_SHARD_ROWS: usize = 16;

/// Per-shard output of [`minibatch_shard`]: layer gradients plus this
/// shard's (unnormalised) contribution to the batch diagnostics.
struct ShardGrads {
    actor: Vec<LayerGrads>,
    critic: Option<Vec<LayerGrads>>,
    policy_loss: f32,
    value_loss: f32,
    entropy: f32,
    approx_kl: f32,
}

/// Forward + backward for one gradient shard of a minibatch. Pure function
/// of the shared policy and the shard's rows (`batch_m` is the full
/// minibatch size — gradients are pre-divided by it so shard sums equal the
/// whole-batch gradient), so shards can run on any thread in any order.
#[allow(clippy::too_many_arguments)]
fn minibatch_shard(
    policy: &ActorCritic,
    cfg: &TrainerConfig,
    buf: &RolloutBuffer,
    shard_idx: &[usize],
    advantages: &[f32],
    returns: &[f32],
    batch_m: usize,
) -> ShardGrads {
    let rows = shard_idx.len();
    let state_dim = buf.steps[shard_idx[0]].state.len();
    let n_actions = policy.n_actions;
    let mut states = Matrix::zeros(rows, state_dim);
    for (bi, &i) in shard_idx.iter().enumerate() {
        states.row_mut(bi).copy_from_slice(&buf.steps[i].state);
    }

    // ----- Actor: tape forward, per-row dL/dlogits, tape backward ---------
    let actor_tape = policy.actor.forward_tape(&states);
    let logits = actor_tape.output();
    let mut dlogits = Matrix::zeros(rows, n_actions);
    let mut policy_loss = 0.0f32;
    let mut entropy_total = 0.0f32;
    let mut approx_kl = 0.0f32;

    for (bi, &i) in shard_idx.iter().enumerate() {
        let step = &buf.steps[i];
        let adv = advantages[i];

        // Masked probabilities under the current policy.
        let mut row = logits.row(bi).to_vec();
        func::mask_logits(&mut row, &step.mask);
        let mut probs = row.clone();
        func::softmax_in_place(&mut probs);
        let lp_new = probs[step.action].max(1e-20).ln();
        let entropy = func::entropy(&probs);
        entropy_total += entropy;
        approx_kl += step.logprob - lp_new;

        // dL/d(logprob of chosen action).
        let dl_dlp: f32 = match cfg.agent {
            AgentKind::Ppo => {
                let ratio = (lp_new - step.logprob).exp();
                let unclipped = ratio * adv;
                let clipped = ratio.clamp(1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon) * adv;
                policy_loss += -unclipped.min(clipped);
                if unclipped <= clipped {
                    // min picks the unclipped term → gradient flows.
                    -ratio * adv
                } else {
                    0.0
                }
            }
            AgentKind::A2c | AgentKind::Reinforce => {
                policy_loss += -lp_new * adv;
                -adv
            }
        };

        // Assemble dL/dlogits for this row.
        let drow = dlogits.row_mut(bi);
        for a in 0..n_actions {
            let p = probs[a];
            if !step.mask[a] {
                continue; // masked logits receive no gradient
            }
            let onehot = if a == step.action { 1.0 } else { 0.0 };
            let mut g = dl_dlp * (onehot - p);
            // Entropy bonus: L -= c_e * H  →  dL/dz = c_e * p (ln p + H).
            if p > 0.0 {
                g += cfg.entropy_coef * p * (p.ln() + entropy);
            }
            // KL penalty (PPO only): L += c_kl * KL(old ‖ new)
            //   → dL/dz = c_kl * (p_new − p_old).
            if matches!(cfg.agent, AgentKind::Ppo) {
                g += cfg.kl_coef * (p - step.old_probs[a]);
            }
            drow[a] = g / batch_m as f32;
        }
    }
    let actor = policy.actor.backward_tape(&actor_tape, &dlogits);

    // ----- Critic: tape forward/backward -----------------------------------
    let mut value_loss = 0.0f32;
    let critic = if matches!(cfg.agent, AgentKind::Reinforce) {
        None
    } else {
        let critic_tape = policy.critic.forward_tape(&states);
        let values = critic_tape.output();
        let mut dv = Matrix::zeros(rows, 1);
        for (bi, &i) in shard_idx.iter().enumerate() {
            let v = values.at(bi, 0);
            let err = v - returns[i];
            value_loss += err * err;
            *dv.at_mut(bi, 0) = cfg.value_coef * 2.0 * err / batch_m as f32;
        }
        Some(policy.critic.backward_tape(&critic_tape, &dv))
    };

    ShardGrads {
        actor,
        critic,
        policy_loss,
        value_loss,
        entropy: entropy_total,
        approx_kl,
    }
}

/// Roll the policy out in one environment for `steps` transitions,
/// resetting on episode end.
fn rollout_worker<E: Environment>(
    mut env: E,
    policy: &ActorCritic,
    steps: usize,
    seed: u64,
) -> RolloutBuffer {
    // Per-worker wall-clock lands in a histogram (workers run on their own
    // threads, so a span here would fragment the iteration tree).
    // asqp::allow(nondet): telemetry-gated timing; never feeds rewards
    let worker_start = telemetry::enabled().then(Instant::now);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = RolloutBuffer::new();
    let mut state = env.reset();
    for _ in 0..steps {
        let mask = env.valid_actions();
        if !mask.iter().any(|&m| m) {
            state = env.reset();
            continue;
        }
        let sample = policy.act(&state, &mask, &mut rng);
        let tr = env.step(sample.action);
        buf.push(StoredStep {
            state: std::mem::take(&mut state),
            action: sample.action,
            reward: tr.reward,
            done: tr.done,
            logprob: sample.logprob,
            value: sample.value,
            mask,
            old_probs: sample.probs,
        });
        state = if tr.done { env.reset() } else { tr.state };
    }
    // Mark the trailing partial episode as done so GAE does not bootstrap
    // across iterations (bounded-episode environments make this benign).
    if let Some(last) = buf.steps.last_mut() {
        last.done = true;
    }
    if let Some(t0) = worker_start {
        telemetry::observe_duration("rl.worker_rollout_ns", t0.elapsed());
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ToyCoverageEnv;

    fn toy_config(agent: AgentKind) -> TrainerConfig {
        TrainerConfig {
            agent,
            learning_rate: 3e-3,
            num_workers: 2,
            steps_per_worker: 64,
            minibatch_size: 32,
            update_epochs: 4,
            hidden: vec![32],
            seed: 7,
            ..TrainerConfig::default()
        }
    }

    /// The toy env has one clearly-best action set; a trained policy should
    /// collect noticeably more reward than a random one.
    fn train_and_measure(agent: AgentKind) -> (f32, f32) {
        let weights = vec![0.0, 0.1, 0.0, 1.0, 0.05, 0.9, 0.0, 0.8];
        let env = ToyCoverageEnv::new(weights, 3);
        let mut trainer = Trainer::new(toy_config(agent), 8, 8);
        let first = trainer.train_iteration(&env).mean_episode_reward;
        let mut last = first;
        for _ in 0..40 {
            last = trainer.train_iteration(&env).mean_episode_reward;
        }
        (first, last)
    }

    #[test]
    fn ppo_improves_on_toy_env() {
        let (first, last) = train_and_measure(AgentKind::Ppo);
        // Optimal = 2.7; random ≈ 3/8 of 2.85 ≈ 1.07.
        assert!(
            last > first + 0.3 || last > 2.3,
            "PPO did not improve: {first} -> {last}"
        );
    }

    #[test]
    fn a2c_improves_on_toy_env() {
        let (first, last) = train_and_measure(AgentKind::A2c);
        assert!(
            last > first + 0.2 || last > 2.0,
            "A2C did not improve: {first} -> {last}"
        );
    }

    #[test]
    fn reinforce_runs_and_does_not_diverge() {
        let (_, last) = train_and_measure(AgentKind::Reinforce);
        assert!(last.is_finite());
        assert!(last > 0.5, "REINFORCE collapsed: {last}");
    }

    #[test]
    fn rollouts_respect_masks_and_episode_length() {
        let env = ToyCoverageEnv::new(vec![1.0; 6], 2);
        let mut trainer = Trainer::new(toy_config(AgentKind::Ppo), 6, 6);
        let buf = trainer.collect(&env);
        assert_eq!(buf.len(), 2 * 64);
        // Episodes of length 2: every other step is done.
        let dones = buf.steps.iter().filter(|s| s.done).count();
        assert!(dones >= buf.len() / 2 - 2);
        for s in &buf.steps {
            assert!(s.mask.iter().filter(|&&m| !m).count() <= 1);
        }
    }

    #[test]
    fn zero_num_workers_clamps_to_one_and_still_collects() {
        let env = ToyCoverageEnv::new(vec![0.5; 4], 2);
        let cfg = TrainerConfig {
            num_workers: 0,
            steps_per_worker: 16,
            hidden: vec![16],
            ..TrainerConfig::default()
        };
        let mut trainer = Trainer::new(cfg, 4, 4);
        assert_eq!(
            trainer.config.num_workers, 1,
            "num_workers = 0 must clamp to 1"
        );
        let buf = trainer.collect(&env);
        assert_eq!(buf.len(), 16, "clamped config still fills a rollout");
        let stats = trainer.train_iteration(&env);
        assert!(stats.steps > 0 && stats.policy_loss.is_finite());
    }

    #[test]
    fn validated_clamps_all_degenerate_knobs() {
        let cfg = TrainerConfig {
            num_workers: 0,
            steps_per_worker: 0,
            minibatch_size: 0,
            ..TrainerConfig::default()
        }
        .validated();
        assert_eq!(cfg.num_workers, 1);
        assert_eq!(cfg.steps_per_worker, 1);
        assert_eq!(cfg.minibatch_size, 1);
        // Sane values pass through untouched.
        let keep = TrainerConfig::default().validated();
        assert_eq!(keep.num_workers, TrainerConfig::default().num_workers);
    }

    #[test]
    fn deterministic_given_seed() {
        let env = ToyCoverageEnv::new(vec![0.3, 0.5, 0.9, 0.1], 2);
        let run = |seed: u64| {
            let mut cfg = toy_config(AgentKind::Ppo);
            cfg.seed = seed;
            let mut t = Trainer::new(cfg, 4, 4);
            (0..5)
                .map(|_| t.train_iteration(&env).mean_episode_reward)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn stats_are_finite() {
        let env = ToyCoverageEnv::new(vec![0.5; 5], 2);
        let mut t = Trainer::new(toy_config(AgentKind::Ppo), 5, 5);
        let s = t.train_iteration(&env);
        assert!(s.policy_loss.is_finite());
        assert!(s.value_loss.is_finite());
        assert!(s.entropy.is_finite() && s.entropy >= 0.0);
        assert!(s.approx_kl.is_finite());
        assert_eq!(s.steps, 2 * 64);
    }
}
