//! # asqp-rl — reinforcement learning for ASQP-RL
//!
//! The RL machinery the paper builds on Ray/Gym/PyTorch, re-implemented:
//!
//! * [`Environment`] — Gym-style trait with **action masking**
//! * [`RolloutBuffer`] — trajectory storage + GAE(γ, λ)
//! * [`ActorCritic`] — masked softmax policy + value head
//! * [`Trainer`] — parallel rollout workers (crossbeam) and three update
//!   rules selected by [`AgentKind`]: PPO-clip with KL penalty (full
//!   ASQP-RL), A2C ("−ppo" ablation) and REINFORCE ("−ppo −ac" ablation)
//!
//! Everything is deterministic given `TrainerConfig::seed`.

pub mod env;
pub mod policy;
pub mod rollout;
pub mod trainer;

pub use env::{Environment, ToyCoverageEnv, Transition};
pub use policy::{ActionSample, ActorCritic};
pub use rollout::{RolloutBuffer, StoredStep};
pub use trainer::{AgentKind, IterationStats, Trainer, TrainerConfig};
