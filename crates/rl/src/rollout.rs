//! Trajectory storage and Generalised Advantage Estimation.

/// One stored transition (flattened across trajectories; `done` marks
/// episode boundaries for GAE).
#[derive(Debug, Clone)]
pub struct StoredStep {
    pub state: Vec<f32>,
    pub action: usize,
    pub reward: f32,
    pub done: bool,
    /// log π_old(a|s) at collection time.
    pub logprob: f32,
    /// V_old(s) at collection time.
    pub value: f32,
    /// Action mask at collection time (needed to re-evaluate the policy).
    pub mask: Vec<bool>,
    /// Full π_old(·|s) (needed for the KL penalty term).
    pub old_probs: Vec<f32>,
}

/// A batch of transitions collected under one policy snapshot.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    pub steps: Vec<StoredStep>,
}

impl RolloutBuffer {
    pub fn new() -> Self {
        RolloutBuffer::default()
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    pub fn push(&mut self, step: StoredStep) {
        self.steps.push(step);
    }

    pub fn extend(&mut self, other: RolloutBuffer) {
        self.steps.extend(other.steps);
    }

    /// Total reward divided by number of episodes (monitoring).
    pub fn mean_episode_reward(&self) -> f32 {
        let episodes = self.steps.iter().filter(|s| s.done).count().max(1);
        let total: f32 = self.steps.iter().map(|s| s.reward).sum();
        total / episodes as f32
    }

    /// Compute GAE(γ, λ) advantages and discounted returns.
    ///
    /// Trajectories are assumed terminated (`done == true` on their last
    /// step) — both ASQP environments have bounded episodes — so the value
    /// bootstrap beyond a `done` is zero.
    pub fn gae(&self, gamma: f32, lambda: f32) -> (Vec<f32>, Vec<f32>) {
        let n = self.steps.len();
        let mut advantages = vec![0.0f32; n];
        let mut returns = vec![0.0f32; n];
        let mut next_value = 0.0f32;
        let mut next_advantage = 0.0f32;
        for i in (0..n).rev() {
            let s = &self.steps[i];
            if s.done {
                next_value = 0.0;
                next_advantage = 0.0;
            }
            let delta = s.reward + gamma * next_value - s.value;
            let adv = delta + gamma * lambda * next_advantage;
            advantages[i] = adv;
            returns[i] = adv + s.value;
            next_value = s.value;
            next_advantage = adv;
        }
        (advantages, returns)
    }

    /// Advantages normalised to zero mean / unit variance (PPO practice).
    pub fn normalized_advantages(&self, gamma: f32, lambda: f32) -> (Vec<f32>, Vec<f32>) {
        let (mut adv, ret) = self.gae(gamma, lambda);
        let n = adv.len().max(1) as f32;
        let mean: f32 = adv.iter().sum::<f32>() / n;
        let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n;
        let std = var.sqrt().max(1e-6);
        adv.iter_mut().for_each(|a| *a = (*a - mean) / std);
        (adv, ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(reward: f32, value: f32, done: bool) -> StoredStep {
        StoredStep {
            state: vec![0.0],
            action: 0,
            reward,
            done,
            logprob: 0.0,
            value,
            mask: vec![true],
            old_probs: vec![1.0],
        }
    }

    #[test]
    fn gae_single_step_episode() {
        let mut buf = RolloutBuffer::new();
        buf.push(step(1.0, 0.5, true));
        let (adv, ret) = buf.gae(0.99, 0.95);
        // delta = 1.0 + 0 - 0.5 = 0.5; adv = delta; ret = adv + value = 1.0.
        assert!((adv[0] - 0.5).abs() < 1e-6);
        assert!((ret[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gae_respects_episode_boundaries() {
        let mut buf = RolloutBuffer::new();
        buf.push(step(1.0, 0.0, true)); // episode 1
        buf.push(step(5.0, 0.0, true)); // episode 2
        let (adv, _) = buf.gae(1.0, 1.0);
        // No leakage: first step's advantage must not include the 5.0.
        assert!((adv[0] - 1.0).abs() < 1e-6);
        assert!((adv[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn gae_discounts_future_rewards() {
        let mut buf = RolloutBuffer::new();
        buf.push(step(0.0, 0.0, false));
        buf.push(step(1.0, 0.0, true));
        let (adv, ret) = buf.gae(0.5, 1.0);
        // Return at t0 = 0 + 0.5 * 1.0 = 0.5.
        assert!((ret[0] - 0.5).abs() < 1e-6);
        assert!((adv[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalization_zero_mean_unit_std() {
        let mut buf = RolloutBuffer::new();
        for i in 0..10 {
            buf.push(step(i as f32, 0.0, true));
        }
        let (adv, _) = buf.normalized_advantages(0.99, 0.95);
        let mean: f32 = adv.iter().sum::<f32>() / adv.len() as f32;
        let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / adv.len() as f32;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn mean_episode_reward() {
        let mut buf = RolloutBuffer::new();
        buf.push(step(1.0, 0.0, false));
        buf.push(step(2.0, 0.0, true));
        buf.push(step(3.0, 0.0, true));
        assert!((buf.mean_episode_reward() - 3.0).abs() < 1e-6);
    }
}
