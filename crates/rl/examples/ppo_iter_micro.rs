//! End-to-end PPO iteration micro-bench at the default `TrainerConfig`:
//! `cargo run --release -p asqp-rl --example ppo_iter_micro`.

use asqp_rl::{Environment, ToyCoverageEnv, Trainer, TrainerConfig};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let env = ToyCoverageEnv::new(vec![0.5; 64], 8);
    let cfg = TrainerConfig::default();
    let mut trainer = Trainer::new(cfg, env.state_dim(), env.action_count());
    for _ in 0..2 {
        black_box(trainer.train_iteration(&env));
    }
    let mut times: Vec<u128> = Vec::new();
    for _ in 0..7 {
        let t0 = Instant::now();
        black_box(trainer.train_iteration(&env));
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    println!(
        "ppo_iteration (default TrainerConfig): median {:.3} ms",
        times[times.len() / 2] as f64 / 1e6
    );
}
