//! Phase breakdown of one PPO iteration using the telemetry recorder:
//! `cargo run --release -p asqp-rl --example ppo_profile`.

use asqp_rl::{Environment, ToyCoverageEnv, Trainer, TrainerConfig};
use asqp_telemetry::{MemoryRecorder, SpanReport};
use std::hint::black_box;
use std::sync::Arc;

fn print_spans(nodes: &[SpanReport], depth: usize) {
    for n in nodes {
        println!(
            "{:indent$}{}: n={} total={:.3} ms",
            "",
            n.name,
            n.count,
            n.total_ns as f64 / 1e6,
            indent = depth * 2
        );
        print_spans(&n.children, depth + 1);
    }
}

fn main() {
    let env = ToyCoverageEnv::new(vec![0.5; 64], 8);
    let mut trainer = Trainer::new(
        TrainerConfig::default(),
        env.state_dim(),
        env.action_count(),
    );
    for _ in 0..2 {
        black_box(trainer.train_iteration(&env));
    }
    let recorder = Arc::new(MemoryRecorder::new());
    asqp_telemetry::install(recorder.clone());
    for _ in 0..5 {
        black_box(trainer.train_iteration(&env));
    }
    asqp_telemetry::uninstall();
    let report = recorder.report();
    print_spans(&report.spans, 0);
    for (name, h) in &report.histograms {
        println!(
            "hist {name}: n={} total={:.3} ms  mean={:.1} us",
            h.count,
            h.sum_ns as f64 / 1e6,
            h.mean_ns() / 1e3
        );
    }
}
