//! Byte-determinism of the sharded PPO update.
//!
//! `Trainer::update_minibatch` cuts every minibatch into fixed 16-row
//! gradient shards and reduces them in shard order, so the updated
//! parameters must be *byte-identical* no matter how many worker threads
//! execute the shards. These tests feed one externally-collected rollout
//! buffer to trainers that differ only in `num_workers` and compare the
//! serialized policies bit for bit.
//!
//! (Full `train_iteration`s are *not* compared across worker counts:
//! `collect` draws one RNG seed per worker, so the experience itself
//! legitimately differs. The determinism contract covers the update path.)

use asqp_rl::env::ToyCoverageEnv;
use asqp_rl::trainer::{AgentKind, Trainer, TrainerConfig};
use asqp_rl::RolloutBuffer;

fn config(agent: AgentKind, num_workers: usize) -> TrainerConfig {
    TrainerConfig {
        agent,
        num_workers,
        steps_per_worker: 96,
        minibatch_size: 40, // shards of 16/16/8: the ragged tail exercises shard chunking
        update_epochs: 2,
        hidden: vec![24, 12],
        seed: 42,
        ..TrainerConfig::default()
    }
}

fn collect_shared_buffer(agent: AgentKind) -> RolloutBuffer {
    let env = ToyCoverageEnv::new(vec![0.1, 0.9, 0.4, 0.7, 0.2, 0.6], 3);
    let mut collector = Trainer::new(config(agent, 1), 6, 6);
    collector.collect(&env)
}

fn policy_bytes_after_updates(agent: AgentKind, num_workers: usize, buf: &RolloutBuffer) -> String {
    let mut t = Trainer::new(config(agent, num_workers), 6, 6);
    // Several consecutive updates so Adam moment state and parameter drift
    // both participate in the comparison.
    for _ in 0..3 {
        t.update(buf);
    }
    serde_json::to_string(&t.policy).expect("policy serializes")
}

#[test]
fn ppo_update_byte_identical_across_worker_counts() {
    let buf = collect_shared_buffer(AgentKind::Ppo);
    let single = policy_bytes_after_updates(AgentKind::Ppo, 1, &buf);
    let double = policy_bytes_after_updates(AgentKind::Ppo, 2, &buf);
    let many = policy_bytes_after_updates(AgentKind::Ppo, 8, &buf);
    assert_eq!(single, double, "1-worker vs 2-worker params diverged");
    assert_eq!(single, many, "1-worker vs 8-worker params diverged");
}

#[test]
fn a2c_update_byte_identical_across_worker_counts() {
    let buf = collect_shared_buffer(AgentKind::A2c);
    let single = policy_bytes_after_updates(AgentKind::A2c, 1, &buf);
    let double = policy_bytes_after_updates(AgentKind::A2c, 2, &buf);
    assert_eq!(single, double, "A2C 1-worker vs 2-worker params diverged");
}

#[test]
fn repeated_update_on_same_buffer_is_reproducible() {
    let buf = collect_shared_buffer(AgentKind::Ppo);
    let a = policy_bytes_after_updates(AgentKind::Ppo, 4, &buf);
    let b = policy_bytes_after_updates(AgentKind::Ppo, 4, &buf);
    assert_eq!(a, b, "same config reruns must match exactly");
}
