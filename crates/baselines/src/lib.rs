//! # asqp-baselines — every comparator from the ASQP-RL evaluation (§6.1)
//!
//! | Name | Kind | Module |
//! |------|------|--------|
//! | RAN  | uniform random sampling | [`naive::RandomSampling`] |
//! | BRT  | time-boxed brute force | [`naive::BruteForce`] |
//! | GRE  | time-boxed greedy marginal gain | [`naive::Greedy`] |
//! | TOP  | top-queried tuples | [`naive::TopQueried`] |
//! | CACH | LRU cache simulation | [`dbstyle::LruCache`] |
//! | QRD  | query-result diversification (medoids) | [`dbstyle::QueryResultDiversification`] |
//! | SKY  | onion-peeled skyline | [`dbstyle::Skyline`] |
//! | VERD | VerdictDB-style stratified sampling | [`aqp::Verdict`] |
//! | QUIK | QuickR-style universe sampling | [`aqp::QuickR`] |
//! | VAE  | generative model (gAQP) | [`vae::GenerativeVae`] |
//! | SPN  | DeepDB Sum–Product Network (aggregates) | [`spn::Spn`] |
//!
//! All selection baselines implement the [`Baseline`] trait and run inside
//! the same Fig. 2/8/9 harness as ASQP-RL.

pub mod aqp;
pub mod common;
pub mod dbstyle;
pub mod naive;
pub mod spn;
pub mod vae;

pub use aqp::{QuickR, Verdict};
pub use common::{proportional_budget, Baseline, BaselineOutput};
pub use dbstyle::{LruCache, QueryResultDiversification, Skyline};
pub use naive::{BruteForce, Greedy, RandomSampling, TopQueried};
pub use spn::Spn;
pub use vae::{GenerativeVae, TupleCodec};
