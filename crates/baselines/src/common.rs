//! The baseline interface shared by every comparator in the paper's
//! evaluation (§6.1): given the database, the training workload and the
//! memory budget `k`, produce either a row selection (sampling/selection
//! methods) or a fully synthetic database (generative methods).

use asqp_core::{MetricParams, Selection};
use asqp_db::{Database, DbResult, Workload};

/// What a baseline produces.
pub enum BaselineOutput {
    /// Row ids per table — materialise with [`Database::subset`].
    Selection(Selection),
    /// A synthetic database (generative baselines: queries run on it
    /// directly).
    Synthetic(Database),
}

impl BaselineOutput {
    /// Materialise into a queryable database.
    pub fn materialize(&self, db: &Database) -> DbResult<Database> {
        match self {
            BaselineOutput::Selection(sel) => db.subset(sel),
            BaselineOutput::Synthetic(s) => Ok(s.clone()),
        }
    }

    /// Total tuples in the output.
    pub fn tuple_count(&self) -> usize {
        match self {
            BaselineOutput::Selection(sel) => sel.values().map(Vec::len).sum(),
            BaselineOutput::Synthetic(db) => db.total_rows(),
        }
    }
}

/// A competitor in the Fig. 2 / Fig. 8 / Fig. 9 comparisons.
pub trait Baseline {
    /// Short name as used in the paper's tables (RAN, BRT, GRE, ...).
    fn name(&self) -> &'static str;

    /// Build the approximation under a budget of `k` tuples.
    fn build(
        &mut self,
        db: &Database,
        train: &Workload,
        k: usize,
        params: MetricParams,
    ) -> DbResult<BaselineOutput>;
}

/// Split a tuple budget across tables proportionally to their row counts
/// (at least 1 per non-empty table when the budget allows).
pub fn proportional_budget(db: &Database, k: usize) -> Vec<(String, usize)> {
    let total: usize = db.total_rows();
    if total == 0 || k == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut assigned = 0usize;
    let tables: Vec<_> = db.tables().filter(|t| t.row_count() > 0).collect();
    for (i, t) in tables.iter().enumerate() {
        let share = if i + 1 == tables.len() {
            k.saturating_sub(assigned) // remainder to the last table
        } else {
            ((k as f64) * (t.row_count() as f64) / (total as f64)).round() as usize
        };
        let share = share.min(t.row_count());
        assigned += share;
        out.push((t.name().to_string(), share));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_db::{Schema, Value, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        for (name, n) in [("big", 90usize), ("small", 10)] {
            let t = db
                .create_table(name, Schema::build(&[("x", ValueType::Int)]))
                .unwrap();
            for i in 0..n {
                t.push_row(&[Value::Int(i as i64)]).unwrap();
            }
        }
        db
    }

    #[test]
    fn proportional_split() {
        let db = db();
        let b = proportional_budget(&db, 20);
        let m: std::collections::HashMap<_, _> = b.into_iter().collect();
        assert_eq!(m["big"], 18);
        assert_eq!(m["small"], 2);
    }

    #[test]
    fn budget_never_exceeds_table_size() {
        let db = db();
        let b = proportional_budget(&db, 1000);
        for (name, share) in b {
            assert!(share <= db.table(&name).unwrap().row_count());
        }
    }

    #[test]
    fn zero_budget() {
        let db = db();
        assert!(proportional_budget(&db, 0).is_empty());
    }

    #[test]
    fn output_materialize_and_count() {
        let db = db();
        let mut sel = Selection::new();
        sel.insert("big".into(), vec![0, 1, 2]);
        let out = BaselineOutput::Selection(sel);
        assert_eq!(out.tuple_count(), 3);
        let m = out.materialize(&db).unwrap();
        assert_eq!(m.table("big").unwrap().row_count(), 3);
        assert_eq!(m.table("small").unwrap().row_count(), 0);
    }
}
