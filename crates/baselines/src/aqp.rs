//! AQP-system baselines (§6.1): VERD (VerdictDB-style stratified
//! "variational" sampling) and QUIK (QuickR-style join-aware universe
//! sampling).

use crate::common::{proportional_budget, Baseline, BaselineOutput};
use asqp_core::{detect_joins, MetricParams, Selection};
use asqp_db::{Database, DbResult, Value, ValueType, Workload};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::BTreeMap;

/// VERD — VerdictDB-style sampling (Park et al., SIGMOD 2018): each table
/// is stratified on its lowest-cardinality categorical column and sampled
/// with per-stratum allocation proportional to √frequency, which keeps rare
/// strata represented (the variance-reduction idea behind variational
/// subsampling).
pub struct Verdict {
    pub seed: u64,
}

impl Baseline for Verdict {
    fn name(&self) -> &'static str {
        "VERD"
    }

    fn build(
        &mut self,
        db: &Database,
        _train: &Workload,
        k: usize,
        _params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7e4d);
        let mut sel = Selection::new();
        for (table_name, share) in proportional_budget(db, k) {
            if share == 0 {
                continue;
            }
            let table = db.table(&table_name)?;
            let n = table.row_count();

            // Stratification column: the categorical column with the fewest
            // distinct values above 1 (most meaningful strata).
            let strat_col = table
                .schema()
                .columns()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.ty == ValueType::Str)
                .min_by_key(|(ci, _)| table.column(*ci).dict_len().unwrap_or(usize::MAX));

            let chosen: Vec<usize> = match strat_col {
                Some((ci, _)) => {
                    // Group rows by stratum value.
                    // BTreeMap: stratum order (and thus RNG consumption)
                    // must not depend on HashMap's per-process hash seed.
                    let mut strata: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
                    for r in 0..n {
                        strata.entry(table.value(r, ci)).or_default().push(r);
                    }
                    // Allocation ∝ sqrt(|stratum|), at least 1.
                    let weights: Vec<(Vec<usize>, f64)> = strata
                        .into_values()
                        .map(|rows| {
                            let w = (rows.len() as f64).sqrt();
                            (rows, w)
                        })
                        .collect();
                    let total_w: f64 = weights.iter().map(|(_, w)| w).sum();
                    let mut out = Vec::with_capacity(share);
                    for (mut rows, w) in weights {
                        let quota = (((share as f64) * w / total_w).round() as usize)
                            .max(1)
                            .min(rows.len());
                        for i in 0..quota {
                            let j = rng.random_range(i..rows.len());
                            rows.swap(i, j);
                        }
                        out.extend(rows.into_iter().take(quota));
                        if out.len() >= share {
                            break;
                        }
                    }
                    out.truncate(share);
                    out
                }
                None => {
                    // No categorical column: plain uniform sample.
                    let mut ids: Vec<usize> = (0..n).collect();
                    for i in 0..share.min(n) {
                        let j = rng.random_range(i..n);
                        ids.swap(i, j);
                    }
                    ids.truncate(share);
                    ids
                }
            };
            let mut chosen = chosen;
            chosen.sort_unstable();
            chosen.dedup();
            sel.insert(table_name, chosen);
        }
        Ok(BaselineOutput::Selection(sel))
    }
}

/// QUIK — QuickR-style universe sampling (Kandula et al., SIGMOD 2016):
/// join columns are discovered, a hash-defined *universe* of join-key
/// values is fixed, and every table keeps exactly the rows whose key falls
/// in the universe — so sampled tuples still join. Non-key budget is filled
/// uniformly.
pub struct QuickR {
    pub seed: u64,
}

/// Deterministic value hash for universe membership.
fn value_hash(v: &Value, salt: u64) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    salt.hash(&mut h);
    v.hash(&mut h);
    h.finish()
}

impl Baseline for QuickR {
    fn name(&self) -> &'static str {
        "QUIK"
    }

    fn build(
        &mut self,
        db: &Database,
        _train: &Workload,
        k: usize,
        _params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x901c);
        let salt: u64 = rng.random();
        let joins = detect_joins(db);
        let mut sel = Selection::new();

        // Phase 1 — QuickR keeps small dimension tables whole (its catalog
        // stores full copies of anything cheap); the leftover budget goes to
        // the large tables.
        let dim_cap = (k / 10).max(64);
        let mut remaining = k;
        let mut large: Vec<&asqp_db::Table> = Vec::new();
        let mut tables: Vec<&asqp_db::Table> = db.tables().collect();
        tables.sort_by_key(|t| t.row_count());
        for table in tables {
            let n = table.row_count();
            if n == 0 {
                continue;
            }
            if n <= dim_cap && n <= remaining {
                sel.insert(table.name().to_string(), (0..n).collect());
                remaining -= n;
            } else {
                large.push(table);
            }
        }

        // Phase 2 — universe-sample each large table on its join key(s):
        // a row survives iff hash(key) lands under the table's sampling
        // fraction, so two large tables sharing a key keep *the same* key
        // universe and their samples still join. No uniform top-up — that
        // would break join consistency (the whole point of QuickR).
        let large_total: usize = large.iter().map(|t| t.row_count()).sum();
        for table in large {
            let name = table.name().to_string();
            let n = table.row_count();
            let budget =
                ((remaining as f64) * (n as f64) / (large_total.max(1) as f64)).round() as usize;
            if budget == 0 {
                continue;
            }
            let key_cols: Vec<usize> = joins
                .iter()
                .filter_map(|e| {
                    if e.from_table == name {
                        table.schema().index_of(&e.from_col)
                    } else if e.to_table == name {
                        table.schema().index_of(&e.to_col)
                    } else {
                        None
                    }
                })
                .collect();

            let frac = (budget as f64 / n as f64).clamp(0.0, 1.0);
            let threshold = (frac * u64::MAX as f64) as u64;
            let mut chosen: Vec<usize> = if key_cols.is_empty() {
                // No join key: plain uniform sample (QuickR's fallback).
                let mut ids: Vec<usize> = (0..n).collect();
                for i in 0..budget.min(n) {
                    let j = rng.random_range(i..n);
                    ids.swap(i, j);
                }
                ids.truncate(budget);
                ids
            } else {
                (0..n)
                    .filter(|&r| {
                        key_cols.iter().all(|&c| {
                            let v = table.value(r, c);
                            v.is_null() || value_hash(&v, salt) < threshold
                        }) && key_cols.iter().any(|&c| !table.value(r, c).is_null())
                    })
                    .collect()
            };
            if chosen.len() > budget {
                for i in 0..budget {
                    let j = rng.random_range(i..chosen.len());
                    chosen.swap(i, j);
                }
                chosen.truncate(budget);
            }
            chosen.sort_unstable();
            chosen.dedup();
            sel.insert(name, chosen);
        }
        Ok(BaselineOutput::Selection(sel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_data::{flights, imdb, Scale};

    #[test]
    fn verd_keeps_rare_strata() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(6, 1);
        let mut verd = Verdict { seed: 2 };
        let out = verd.build(&db, &w, 120, MetricParams::new(20)).unwrap();
        let sub = out.materialize(&db).unwrap();
        // Every kind present in the full data should survive in the sample
        // (sqrt allocation guarantees ≥1 per stratum while budget lasts).
        let full_kinds = db
            .sql("SELECT DISTINCT t.kind FROM title t")
            .unwrap()
            .rows
            .len();
        let sub_kinds = sub
            .sql("SELECT DISTINCT t.kind FROM title t")
            .unwrap()
            .rows
            .len();
        assert!(
            sub_kinds as f64 >= full_kinds as f64 * 0.6,
            "{sub_kinds}/{full_kinds} strata survived"
        );
    }

    #[test]
    fn quik_samples_join_consistently() {
        let db = flights::generate(Scale::Tiny, 1);
        let w = flights::workload(6, 1);
        let mut quik = QuickR { seed: 4 };
        let out = quik.build(&db, &w, 200, MetricParams::new(20)).unwrap();
        let sub = out.materialize(&db).unwrap();
        // Sampled flights should still join the carrier dimension: the
        // join rate must be far above the independent-sampling expectation.
        let flights_kept = sub.table("flights").unwrap().row_count();
        if flights_kept == 0 {
            return;
        }
        let joined = sub
            .sql("SELECT COUNT(*) FROM flights f JOIN carriers c ON f.carrier = c.code")
            .unwrap()
            .rows[0][0]
            .as_i64()
            .unwrap() as usize;
        assert!(
            joined * 2 >= flights_kept,
            "universe sampling must preserve joins: {joined}/{flights_kept}"
        );
    }

    #[test]
    fn budgets_respected() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(6, 1);
        for (name, out) in [
            (
                "verd",
                Verdict { seed: 1 }
                    .build(&db, &w, 90, MetricParams::new(20))
                    .unwrap(),
            ),
            (
                "quik",
                QuickR { seed: 1 }
                    .build(&db, &w, 90, MetricParams::new(20))
                    .unwrap(),
            ),
        ] {
            assert!(
                out.tuple_count() <= 95,
                "{name} exceeded budget: {}",
                out.tuple_count()
            );
        }
    }
}
