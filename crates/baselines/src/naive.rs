//! The paper's *naive* baselines (§6.1): RAN (random sampling), BRT
//! (time-boxed brute force), GRE (time-boxed greedy) and TOP (top-queried
//! tuples).

use crate::common::{proportional_budget, Baseline, BaselineOutput};
use asqp_core::{score_with_counts, AnaqpInstance, FullCounts, MetricParams, Selection};
use asqp_db::{Database, DbResult, Workload};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::HashMap;

/// RAN — uniform random rows, budget split proportionally across tables.
pub struct RandomSampling {
    pub seed: u64,
}

impl Baseline for RandomSampling {
    fn name(&self) -> &'static str {
        "RAN"
    }

    fn build(
        &mut self,
        db: &Database,
        _train: &Workload,
        k: usize,
        _params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut sel = Selection::new();
        for (table, share) in proportional_budget(db, k) {
            let n = db.table(&table)?.row_count();
            // Partial Fisher–Yates: the first `share` entries are a uniform
            // sample without replacement.
            let mut ids: Vec<usize> = (0..n).collect();
            for i in 0..share.min(n) {
                let j = rng.random_range(i..n);
                ids.swap(i, j);
            }
            ids.truncate(share);
            ids.sort_unstable();
            sel.insert(table, ids);
        }
        Ok(BaselineOutput::Selection(sel))
    }
}

/// BRT — brute force: evaluate a fixed number of random candidate
/// selections, keep the best. The paper caps BRT at 48 h and reports
/// best-found-so-far; a draw count is the deterministic analogue of that
/// cap (a wall-clock loop would make the reported score depend on machine
/// speed and run-to-run jitter).
pub struct BruteForce {
    pub seed: u64,
    /// Number of random candidate selections to score.
    pub draws: usize,
}

impl Baseline for BruteForce {
    fn name(&self) -> &'static str {
        "BRT"
    }

    fn build(
        &mut self,
        db: &Database,
        train: &Workload,
        k: usize,
        params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        let full = FullCounts::compute(db, train)?;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xb47);
        let mut best: (Selection, f64) = (Selection::new(), -1.0);
        let mut ran = RandomSampling { seed: 0 };
        for _ in 0..self.draws {
            ran.seed = rng.random();
            let BaselineOutput::Selection(cand) = ran.build(db, train, k, params)? else {
                unreachable!("RAN yields selections")
            };
            let sub = db.subset(&cand)?;
            let s = score_with_counts(&sub, train, &full, params)?;
            if s > best.1 {
                best = (cand, s);
            }
        }
        Ok(BaselineOutput::Selection(best.0))
    }
}

/// GRE — greedy largest-marginal-gain row selection, capped by candidate
/// evaluations (the paper's GRE never finished inside 48 h on IMDB; ours
/// reports its partial set the same way, but with a deterministic budget so
/// runs reproduce exactly).
pub struct Greedy {
    /// Cap on candidate scorings across the whole greedy run.
    pub max_evals: usize,
}

impl Baseline for Greedy {
    fn name(&self) -> &'static str {
        "GRE"
    }

    fn build(
        &mut self,
        db: &Database,
        train: &Workload,
        k: usize,
        params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        let inst = AnaqpInstance::new(db.clone(), train.clone(), k, params.frame_size);
        let (sel, _) = inst.solve_greedy(self.max_evals)?;
        Ok(BaselineOutput::Selection(sel))
    }
}

/// TOP — rank base tuples by how many workload queries their lineage
/// appears in; take the top `k` (most-queried tuples first).
pub struct TopQueried {
    pub seed: u64,
}

impl Baseline for TopQueried {
    fn name(&self) -> &'static str {
        "TOP"
    }

    fn build(
        &mut self,
        db: &Database,
        train: &Workload,
        k: usize,
        _params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        // (table, row) → number of distinct queries touching it.
        let mut counts: HashMap<(String, usize), u32> = HashMap::new();
        for q in &train.queries {
            let out = db.execute_with_lineage(&q.strip_aggregates())?;
            let mut seen: std::collections::HashSet<(usize, usize)> = Default::default();
            for lin in &out.lineage {
                for (bi, &rid) in lin.iter().enumerate() {
                    if seen.insert((bi, rid)) {
                        *counts
                            .entry((out.binding_tables[bi].clone(), rid))
                            .or_insert(0) += 1;
                    }
                }
            }
        }
        let mut ranked: Vec<((String, usize), u32)> = counts.into_iter().collect();
        // Deterministic tie-break by (count desc, table, row).
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        let mut sel = Selection::new();
        for ((table, rid), _) in ranked {
            sel.entry(table).or_default().push(rid);
        }
        for rows in sel.values_mut() {
            rows.sort_unstable();
            rows.dedup();
        }
        Ok(BaselineOutput::Selection(sel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_core::score;
    use asqp_data::{imdb, Scale};

    fn setup() -> (Database, Workload) {
        (imdb::generate(Scale::Tiny, 1), imdb::workload(10, 1))
    }

    #[test]
    fn ran_respects_budget_and_is_deterministic() {
        let (db, w) = setup();
        let mut ran = RandomSampling { seed: 5 };
        let out = ran.build(&db, &w, 100, MetricParams::new(50)).unwrap();
        assert!(out.tuple_count() <= 100);
        assert!(out.tuple_count() >= 95);
        let out2 = RandomSampling { seed: 5 }
            .build(&db, &w, 100, MetricParams::new(50))
            .unwrap();
        assert_eq!(out.tuple_count(), out2.tuple_count());
    }

    #[test]
    fn brt_beats_single_random_draw() {
        let (db, w) = setup();
        let params = MetricParams::new(20);
        let mut ran = RandomSampling { seed: 1 };
        let rsel = ran.build(&db, &w, 60, params).unwrap();
        let rscore = score(&db, &rsel.materialize(&db).unwrap(), &w, params).unwrap();

        let mut brt = BruteForce { seed: 1, draws: 40 };
        let bsel = brt.build(&db, &w, 60, params).unwrap();
        let bscore = score(&db, &bsel.materialize(&db).unwrap(), &w, params).unwrap();
        assert!(
            bscore >= rscore - 1e-9,
            "best-of-many must be at least one draw: {bscore} vs {rscore}"
        );
    }

    #[test]
    fn top_prefers_frequently_queried_tuples() {
        let (db, w) = setup();
        let mut top = TopQueried { seed: 0 };
        let out = top.build(&db, &w, 50, MetricParams::new(20)).unwrap();
        assert!(out.tuple_count() > 0 && out.tuple_count() <= 50);
        // TOP's tuples actually answer queries: strictly better than nothing.
        let sub = out.materialize(&db).unwrap();
        let s = score(&db, &sub, &w, MetricParams::new(20)).unwrap();
        assert!(s > 0.0);
    }

    #[test]
    fn greedy_budgeted_returns_valid_selection() {
        let (db, w) = setup();
        let mut gre = Greedy { max_evals: 2_000 };
        let out = gre.build(&db, &w, 10, MetricParams::new(20)).unwrap();
        assert!(out.tuple_count() <= 10);
        out.materialize(&db).unwrap();
    }
}
