//! DeepDB-style Sum–Product Network (Hilprecht et al., VLDB 2020) — the
//! aggregate-estimation comparator of §6.4 (Fig. 12).
//!
//! Structure learning follows the classic recursion: try to split columns
//! into (near-)independent groups → **product** node; otherwise cluster the
//! rows → **sum** node; single columns / small partitions become histogram
//! **leaves**. Estimation answers COUNT / SUM / AVG (with GROUP BY) over
//! conjunctive range/equality predicates without touching the data again.

use asqp_db::{
    AggExpr, AggFunc, CmpOp, ColRef, Expr, Query, ResultSet, Row, SelectItem, Table, Value,
    ValueType,
};
use std::collections::{BTreeMap, HashMap};

const NUM_BINS: usize = 24;
const MIN_INSTANCES: usize = 64;
const CORR_THRESHOLD: f64 = 0.25;

/// Per-column constraint extracted from a predicate.
#[derive(Debug, Clone)]
enum ColPred {
    Range { lo: f64, hi: f64 },
    OneOf(Vec<Value>),
}

/// Histogram leaf over one column.
#[derive(Debug, Clone)]
enum LeafDist {
    Numeric {
        min: f64,
        max: f64,
        /// Per-bin row count.
        counts: Vec<f64>,
        /// Per-bin value sum (for E[x]).
        sums: Vec<f64>,
        total: f64,
    },
    Categorical {
        counts: HashMap<Value, f64>,
        total: f64,
    },
}

impl LeafDist {
    fn fit(table: &Table, rows: &[usize], col: usize) -> LeafDist {
        match table.schema().column(col).ty {
            ValueType::Int | ValueType::Float => {
                let vals: Vec<f64> = rows
                    .iter()
                    .filter_map(|&r| table.column(col).get_f64(r))
                    .collect();
                let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
                let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let (min, max) = if vals.is_empty() {
                    (0.0, 0.0)
                } else {
                    (min, max)
                };
                let width = ((max - min) / NUM_BINS as f64).max(f64::MIN_POSITIVE);
                let mut counts = vec![0.0; NUM_BINS];
                let mut sums = vec![0.0; NUM_BINS];
                for &v in &vals {
                    let b = (((v - min) / width) as usize).min(NUM_BINS - 1);
                    counts[b] += 1.0;
                    sums[b] += v;
                }
                LeafDist::Numeric {
                    min,
                    max,
                    counts,
                    sums,
                    total: vals.len() as f64,
                }
            }
            _ => {
                let mut counts: HashMap<Value, f64> = HashMap::new();
                for &r in rows {
                    *counts.entry(table.value(r, col)).or_insert(0.0) += 1.0;
                }
                let total = rows.len() as f64;
                LeafDist::Categorical { counts, total }
            }
        }
    }

    /// `(P(pred), E[x·1(pred)])` under this leaf's marginal.
    fn prob_and_exp(&self, pred: Option<&ColPred>) -> (f64, f64) {
        match self {
            LeafDist::Numeric {
                min,
                max,
                counts,
                sums,
                total,
            } => {
                if *total == 0.0 {
                    return (0.0, 0.0);
                }
                let (lo, hi) = match pred {
                    None => (f64::NEG_INFINITY, f64::INFINITY),
                    Some(ColPred::Range { lo, hi }) => (*lo, *hi),
                    Some(ColPred::OneOf(vals)) => {
                        // Point predicates on numerics: sum matching bins.
                        let width = ((max - min) / NUM_BINS as f64).max(f64::MIN_POSITIVE);
                        let mut p = 0.0;
                        let mut e = 0.0;
                        for v in vals {
                            if let Some(f) = v.as_f64() {
                                if f >= *min && f <= *max {
                                    let b = (((f - min) / width) as usize).min(NUM_BINS - 1);
                                    // Assume the point carries its bin's
                                    // average share of one distinct value.
                                    let bin_frac = counts[b] / total;
                                    let per_val = bin_frac / (width.max(1.0)).max(1.0);
                                    p += per_val;
                                    e += f * per_val * total;
                                }
                            }
                        }
                        return (p.min(1.0), e / total.max(1.0) * total);
                    }
                };
                let width = ((max - min) / NUM_BINS as f64).max(f64::MIN_POSITIVE);
                let mut cnt = 0.0;
                let mut sum = 0.0;
                for b in 0..NUM_BINS {
                    let b_lo = min + b as f64 * width;
                    let b_hi = b_lo + width;
                    let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0) / width;
                    let overlap = overlap.min(1.0);
                    if overlap > 0.0 {
                        cnt += counts[b] * overlap;
                        sum += sums[b] * overlap;
                    }
                }
                (cnt / total, sum / total)
            }
            LeafDist::Categorical { counts, total } => {
                if *total == 0.0 {
                    return (0.0, 0.0);
                }
                match pred {
                    None => (1.0, 0.0),
                    Some(ColPred::OneOf(vals)) => {
                        let c: f64 = vals
                            .iter()
                            .map(|v| counts.get(v).copied().unwrap_or(0.0))
                            .sum();
                        (c / total, 0.0)
                    }
                    Some(ColPred::Range { .. }) => (0.0, 0.0),
                }
            }
        }
    }
}

/// SPN node.
#[derive(Debug, Clone)]
enum Node {
    Sum(Vec<(f64, Node)>),
    /// Children partition the column set.
    Product(Vec<Node>),
    Leaf {
        col: usize,
        dist: LeafDist,
    },
}

/// A learned SPN over one table.
#[derive(Debug, Clone)]
pub struct Spn {
    root: Node,
    pub n_rows: usize,
    col_index: HashMap<String, usize>,
    table_name: String,
    /// Distinct values per categorical column (for GROUP BY enumeration).
    categorical_domains: HashMap<usize, Vec<Value>>,
}

impl Spn {
    /// Learn an SPN from a table.
    pub fn learn(table: &Table) -> Spn {
        let n = table.row_count();
        let rows: Vec<usize> = (0..n).collect();
        let cols: Vec<usize> = (0..table.schema().len()).collect();
        let root = build(table, &rows, &cols, 0);
        let col_index = table
            .schema()
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        let mut categorical_domains = HashMap::new();
        for (ci, c) in table.schema().columns().iter().enumerate() {
            if c.ty == ValueType::Str || c.ty == ValueType::Int {
                let mut vals: Vec<Value> = (0..n)
                    .map(|r| table.value(r, ci))
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
                if vals.len() <= 64 {
                    vals.sort();
                    categorical_domains.insert(ci, vals);
                }
            }
        }
        Spn {
            root,
            n_rows: n,
            col_index,
            table_name: table.name().to_string(),
            categorical_domains,
        }
    }

    /// `(P(pred), E[target·1(pred)])` for a conjunctive predicate.
    fn joint(&self, preds: &HashMap<usize, ColPred>, target: Option<usize>) -> (f64, f64) {
        node_joint(&self.root, preds, target)
    }

    /// Estimate an aggregate query. Returns `None` for shapes the SPN does
    /// not support (joins, OR / NOT / LIKE predicates, multi-group keys).
    pub fn estimate(&self, q: &Query) -> Option<ResultSet> {
        if !q.is_aggregate() || q.from.len() != 1 || q.from[0].table != self.table_name {
            return None;
        }
        let mut preds: HashMap<usize, ColPred> = HashMap::new();
        if let Some(p) = &q.predicate {
            for conj in p.clone().split_conjuncts() {
                let (col, cp) = self.extract_pred(&conj)?;
                merge_pred(&mut preds, col, cp);
            }
        }
        if q.group_by.len() > 1 {
            return None;
        }

        // Collect output spec.
        let mut columns = Vec::new();
        for s in &q.select {
            columns.push(s.to_string());
        }

        let make_row =
            |preds: &HashMap<usize, ColPred>, group_val: Option<&Value>| -> Option<Row> {
                let mut row = Row::new();
                for s in &q.select {
                    match s {
                        SelectItem::Column(_) => row.push(group_val?.clone()),
                        SelectItem::Aggregate(AggExpr { func, arg }) => {
                            let target = match arg {
                                Some(c) => Some(self.resolve(c)?),
                                None => None,
                            };
                            let (p, e) = self.joint(preds, target);
                            let count = p * self.n_rows as f64;
                            let v = match func {
                                AggFunc::Count => Value::Float(count.round()),
                                AggFunc::Sum => Value::Float(e * self.n_rows as f64),
                                AggFunc::Avg => {
                                    if p <= 0.0 {
                                        Value::Null
                                    } else {
                                        Value::Float(e / p)
                                    }
                                }
                                AggFunc::Min | AggFunc::Max => return None,
                            };
                            row.push(v);
                        }
                        SelectItem::Star => return None,
                    }
                }
                Some(row)
            };

        let mut rows: Vec<Row> = Vec::new();
        if let Some(g) = q.group_by.first() {
            let gcol = self.resolve(g)?;
            let domain = self.categorical_domains.get(&gcol)?.clone();
            for val in domain {
                let mut gp = preds.clone();
                merge_pred(&mut gp, gcol, ColPred::OneOf(vec![val.clone()]));
                let (p, _) = self.joint(&gp, None);
                // Keep only groups estimated at half a row or more.
                if p * (self.n_rows as f64) < 0.5 {
                    continue;
                }
                rows.push(make_row(&gp, Some(&val))?);
            }
            // Match the executor's deterministic group ordering.
            rows.sort_by(|a, b| a[0].cmp(&b[0]));
        } else {
            rows.push(make_row(&preds, None)?);
        }
        if let Some(l) = q.limit {
            rows.truncate(l);
        }
        Some(ResultSet { columns, rows })
    }

    fn resolve(&self, c: &ColRef) -> Option<usize> {
        self.col_index.get(&c.column).copied()
    }

    /// Extract a supported per-column constraint from one conjunct.
    fn extract_pred(&self, e: &Expr) -> Option<(usize, ColPred)> {
        match e {
            Expr::Cmp { op, lhs, rhs } => {
                let (col, lit, op) = match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Column(c), Expr::Literal(v)) => (self.resolve(c)?, v.clone(), *op),
                    (Expr::Literal(v), Expr::Column(c)) => (self.resolve(c)?, v.clone(), op.flip()),
                    _ => return None,
                };
                match (op, lit.as_f64(), &lit) {
                    (CmpOp::Eq, _, v) => Some((col, ColPred::OneOf(vec![v.clone()]))),
                    (CmpOp::Ge | CmpOp::Gt, Some(f), _) => Some((
                        col,
                        ColPred::Range {
                            lo: f,
                            hi: f64::INFINITY,
                        },
                    )),
                    (CmpOp::Le | CmpOp::Lt, Some(f), _) => Some((
                        col,
                        ColPred::Range {
                            lo: f64::NEG_INFINITY,
                            hi: f,
                        },
                    )),
                    _ => None,
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                let Expr::Column(c) = expr.as_ref() else {
                    return None;
                };
                let (Expr::Literal(lo), Expr::Literal(hi)) = (low.as_ref(), high.as_ref()) else {
                    return None;
                };
                Some((
                    self.resolve(c)?,
                    ColPred::Range {
                        lo: lo.as_f64()?,
                        hi: hi.as_f64()?,
                    },
                ))
            }
            Expr::In {
                expr,
                list,
                negated: false,
            } => {
                let Expr::Column(c) = expr.as_ref() else {
                    return None;
                };
                Some((self.resolve(c)?, ColPred::OneOf(list.clone())))
            }
            _ => None,
        }
    }
}

fn merge_pred(preds: &mut HashMap<usize, ColPred>, col: usize, cp: ColPred) {
    match (preds.get_mut(&col), cp) {
        (Some(ColPred::Range { lo, hi }), ColPred::Range { lo: l2, hi: h2 }) => {
            *lo = lo.max(l2);
            *hi = hi.min(h2);
        }
        (slot, cp) => {
            if slot.is_none() {
                preds.insert(col, cp);
            } else {
                // Conflicting shapes: last wins (rare; conjunctions in the
                // generated workloads touch distinct columns).
                preds.insert(col, cp);
            }
        }
    }
}

fn node_joint(node: &Node, preds: &HashMap<usize, ColPred>, target: Option<usize>) -> (f64, f64) {
    match node {
        Node::Leaf { col, dist } => {
            let (p, e) = dist.prob_and_exp(preds.get(col));
            if target == Some(*col) {
                (p, e)
            } else {
                (p, 0.0)
            }
        }
        Node::Product(children) => {
            let mut prob = 1.0;
            let mut exp_cond = 0.0; // E[x·1] factorises: e_child * ∏ other p
            let mut exp_child_p = 1.0;
            for ch in children {
                let (p, e) = node_joint(ch, preds, target);
                if subtree_has_target(ch, target) {
                    exp_cond = e;
                    exp_child_p = p.max(f64::MIN_POSITIVE);
                }
                prob *= p;
            }
            let exp = if prob > 0.0 {
                exp_cond * (prob / exp_child_p)
            } else {
                0.0
            };
            (prob, exp)
        }
        Node::Sum(children) => {
            let mut prob = 0.0;
            let mut exp = 0.0;
            for (w, ch) in children {
                let (p, e) = node_joint(ch, preds, target);
                prob += w * p;
                exp += w * e;
            }
            (prob, exp)
        }
    }
}

fn subtree_has_target(node: &Node, target: Option<usize>) -> bool {
    let Some(t) = target else { return false };
    match node {
        Node::Leaf { col, .. } => *col == t,
        Node::Product(children) => children.iter().any(|c| subtree_has_target(c, target)),
        Node::Sum(children) => children.iter().any(|(_, c)| subtree_has_target(c, target)),
    }
}

/// Recursive structure learning.
fn build(table: &Table, rows: &[usize], cols: &[usize], depth: usize) -> Node {
    if cols.len() == 1 {
        return Node::Leaf {
            col: cols[0],
            dist: LeafDist::fit(table, rows, cols[0]),
        };
    }
    if rows.len() < MIN_INSTANCES || depth >= 6 {
        // Naive factorisation: independent leaves.
        return Node::Product(
            cols.iter()
                .map(|&c| Node::Leaf {
                    col: c,
                    dist: LeafDist::fit(table, rows, c),
                })
                .collect(),
        );
    }

    // Column split: group columns by |correlation| ≥ threshold (union-find).
    let groups = correlation_groups(table, rows, cols);
    if groups.len() > 1 {
        return Node::Product(
            groups
                .into_iter()
                .map(|g| build(table, rows, &g, depth + 1))
                .collect(),
        );
    }

    // Row split: 2-means on the first numeric column (fallback: halves).
    let (a, b) = split_rows(table, rows, cols);
    if a.is_empty() || b.is_empty() {
        return Node::Product(
            cols.iter()
                .map(|&c| Node::Leaf {
                    col: c,
                    dist: LeafDist::fit(table, rows, c),
                })
                .collect(),
        );
    }
    let wa = a.len() as f64 / rows.len() as f64;
    let wb = 1.0 - wa;
    Node::Sum(vec![
        (wa, build(table, &a, cols, depth + 1)),
        (wb, build(table, &b, cols, depth + 1)),
    ])
}

/// Union-find grouping of columns by pairwise dependence. Numeric pairs use
/// Pearson correlation on a row sample; pairs involving categoricals use a
/// cheap normalised-contingency proxy.
fn correlation_groups(table: &Table, rows: &[usize], cols: &[usize]) -> Vec<Vec<usize>> {
    let sample: Vec<usize> = rows
        .iter()
        .copied()
        .step_by((rows.len() / 512).max(1))
        .collect();
    let m = cols.len();
    let mut parent: Vec<usize> = (0..m).collect();
    fn find(p: &mut Vec<usize>, i: usize) -> usize {
        if p[i] != i {
            let r = find(p, p[i]);
            p[i] = r;
        }
        p[i]
    }
    for i in 0..m {
        for j in (i + 1)..m {
            if dependence(table, &sample, cols[i], cols[j]) >= CORR_THRESHOLD {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, &c) in cols.iter().enumerate().take(m) {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(c);
    }
    groups.into_values().collect()
}

fn dependence(table: &Table, sample: &[usize], a: usize, b: usize) -> f64 {
    let fa: Vec<f64> = sample.iter().map(|&r| col_as_f64(table, r, a)).collect();
    let fb: Vec<f64> = sample.iter().map(|&r| col_as_f64(table, r, b)).collect();
    pearson(&fa, &fb).abs()
}

/// Numeric view of any column (categoricals via dictionary code).
fn col_as_f64(table: &Table, row: usize, col: usize) -> f64 {
    table
        .column(col)
        .get_f64(row)
        .or_else(|| table.column(col).str_code(row).map(|c| c as f64))
        .unwrap_or(0.0)
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Split rows into two clusters by thresholding the most spread numeric
/// column at its sample median.
fn split_rows(table: &Table, rows: &[usize], cols: &[usize]) -> (Vec<usize>, Vec<usize>) {
    // Pick the numeric column with the widest normalised spread.
    let mut best: Option<(usize, f64)> = None;
    for &c in cols {
        let vals: Vec<f64> = rows
            .iter()
            .take(512)
            .filter_map(|&r| table.column(c).get_f64(r))
            .collect();
        if vals.len() < 2 {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        let spread = if mean.abs() > 1e-9 {
            var.sqrt() / mean.abs()
        } else {
            var.sqrt()
        };
        if best.is_none_or(|(_, s)| spread > s) {
            best = Some((c, spread));
        }
    }
    let Some((split_col, _)) = best else {
        let mid = rows.len() / 2;
        return (rows[..mid].to_vec(), rows[mid..].to_vec());
    };
    let mut vals: Vec<f64> = rows
        .iter()
        .filter_map(|&r| table.column(split_col).get_f64(r))
        .collect();
    vals.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let median = vals.get(vals.len() / 2).copied().unwrap_or(0.0);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for &r in rows {
        if table.column(split_col).get_f64(r).unwrap_or(median) < median {
            a.push(r);
        } else {
            b.push(r);
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_data::{flights, Scale};
    use asqp_db::sql::parse;
    use asqp_db::Database;

    fn spn_and_db() -> (Spn, Database) {
        let db = flights::generate(Scale::Tiny, 1);
        let spn = Spn::learn(db.table("flights").unwrap());
        (spn, db)
    }

    #[test]
    fn count_estimate_close_to_truth() {
        let (spn, db) = spn_and_db();
        let q = parse("SELECT COUNT(*) FROM flights f WHERE f.distance >= 1000").unwrap();
        let truth = db.execute(&q).unwrap().rows[0][0].as_i64().unwrap() as f64;
        let est = spn.estimate(&q).unwrap().rows[0][0].as_f64().unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.25, "COUNT estimate err {err}: {est} vs {truth}");
    }

    #[test]
    fn avg_estimate_reasonable() {
        let (spn, db) = spn_and_db();
        let q = parse("SELECT AVG(f.distance) FROM flights f WHERE f.month = 3").unwrap();
        let truth = db.execute(&q).unwrap().rows[0][0].as_f64().unwrap();
        let est = spn.estimate(&q).unwrap().rows[0][0].as_f64().unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.3, "AVG err {err}: {est} vs {truth}");
    }

    #[test]
    fn group_by_estimates_cover_major_groups() {
        let (spn, db) = spn_and_db();
        let q = parse("SELECT f.carrier, COUNT(*) FROM flights f GROUP BY f.carrier").unwrap();
        let truth = db.execute(&q).unwrap();
        let est = spn.estimate(&q).unwrap();
        assert!(
            est.rows.len() as f64 >= truth.rows.len() as f64 * 0.7,
            "groups: {} vs {}",
            est.rows.len(),
            truth.rows.len()
        );
        // Largest group's count within 2x.
        let t0 = truth.rows[0][1].as_f64().unwrap();
        let e0 = est
            .rows
            .iter()
            .find(|r| r[0] == truth.rows[0][0])
            .map(|r| r[1].as_f64().unwrap())
            .unwrap_or(0.0);
        assert!(e0 > t0 * 0.4 && e0 < t0 * 2.5, "{e0} vs {t0}");
    }

    #[test]
    fn unsupported_shapes_return_none() {
        let (spn, _) = spn_and_db();
        let join =
            parse("SELECT COUNT(*) FROM flights f JOIN carriers c ON f.carrier = c.code").unwrap();
        assert!(spn.estimate(&join).is_none());
        let like = parse("SELECT COUNT(*) FROM flights f WHERE f.origin LIKE 'A%'").unwrap();
        assert!(spn.estimate(&like).is_none());
        let spj = parse("SELECT f.origin FROM flights f").unwrap();
        assert!(spn.estimate(&spj).is_none());
    }

    #[test]
    fn full_table_count_is_exact() {
        let (spn, db) = spn_and_db();
        let q = parse("SELECT COUNT(*) FROM flights f").unwrap();
        let truth = db.execute(&q).unwrap().rows[0][0].as_i64().unwrap() as f64;
        let est = spn.estimate(&q).unwrap().rows[0][0].as_f64().unwrap();
        assert!((est - truth).abs() < 1.0, "{est} vs {truth}");
    }

    #[test]
    fn sum_estimate_reasonable() {
        let (spn, db) = spn_and_db();
        let q = parse("SELECT SUM(f.distance) FROM flights f WHERE f.distance >= 500").unwrap();
        let truth = db.execute(&q).unwrap().rows[0][0].as_f64().unwrap();
        let est = spn.estimate(&q).unwrap().rows[0][0].as_f64().unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.3, "SUM err {err}: {est} vs {truth}");
    }
}
