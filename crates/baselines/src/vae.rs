//! VAE — the generative-model baseline (Thirumuruganathan et al., ICDE
//! 2020, "gAQP"): a variational autoencoder learns each table's tuple
//! distribution from numeric features, and *synthetic* tuples decoded from
//! latent samples form the approximation database. The paper's §6 finding —
//! generated tuples drift off the data manifold and fail selection
//! predicates — emerges naturally from the reconstruction error.

use crate::common::{proportional_budget, Baseline, BaselineOutput};
use asqp_core::MetricParams;
use asqp_db::{Database, DbResult, Row, Table, Value, ValueType, Workload};
use asqp_nn::{Matrix, Vae, VaeConfig};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Feature encoding of one column.
#[derive(Debug, Clone)]
enum ColCodec {
    /// z-normalised numeric: (mean, std, is_int, min, max).
    Numeric {
        mean: f64,
        std: f64,
        is_int: bool,
        min: f64,
        max: f64,
    },
    /// One-hot over the top values (+ implicit "other" = argmax fallback).
    Categorical {
        values: Vec<Value>,
    },
    Bool,
}

impl ColCodec {
    fn width(&self) -> usize {
        match self {
            ColCodec::Numeric { .. } | ColCodec::Bool => 1,
            ColCodec::Categorical { values } => values.len(),
        }
    }
}

/// Bidirectional tuple ↔ feature-vector codec for one table.
#[derive(Debug, Clone)]
pub struct TupleCodec {
    cols: Vec<ColCodec>,
    pub width: usize,
}

/// Max one-hot categories per column (rest collapse onto the most common).
const MAX_CATEGORIES: usize = 16;

impl TupleCodec {
    pub fn fit(table: &Table) -> TupleCodec {
        let stats = asqp_db::TableStats::compute(table);
        let mut cols = Vec::with_capacity(table.schema().len());
        for (ci, cdef) in table.schema().columns().iter().enumerate() {
            let cs = &stats.columns[ci];
            let codec = match cdef.ty {
                ValueType::Int | ValueType::Float => ColCodec::Numeric {
                    mean: cs.mean.unwrap_or(0.0),
                    std: cs.std.unwrap_or(1.0).max(1e-6),
                    is_int: cdef.ty == ValueType::Int,
                    min: cs.min.as_ref().and_then(Value::as_f64).unwrap_or(0.0),
                    max: cs.max.as_ref().and_then(Value::as_f64).unwrap_or(0.0),
                },
                ValueType::Str => ColCodec::Categorical {
                    values: cs
                        .top_values
                        .iter()
                        .take(MAX_CATEGORIES)
                        .map(|(v, _)| v.clone())
                        .collect(),
                },
                ValueType::Bool => ColCodec::Bool,
            };
            cols.push(codec);
        }
        let width = cols.iter().map(ColCodec::width).sum::<usize>().max(1);
        TupleCodec { cols, width }
    }

    pub fn encode_row(&self, row: &Row, out: &mut [f32]) {
        out.iter_mut().for_each(|x| *x = 0.0);
        let mut off = 0;
        for (codec, v) in self.cols.iter().zip(row) {
            match codec {
                ColCodec::Numeric { mean, std, .. } => {
                    out[off] = v.as_f64().map(|f| ((f - mean) / std) as f32).unwrap_or(0.0);
                }
                ColCodec::Categorical { values } => {
                    if let Some(pos) = values.iter().position(|c| c == v) {
                        out[off + pos] = 1.0;
                    }
                }
                ColCodec::Bool => {
                    out[off] = v.as_bool().map(|b| b as i64 as f32).unwrap_or(0.0);
                }
            }
            off += codec.width();
        }
    }

    pub fn decode_row(&self, features: &[f32]) -> Row {
        let mut row = Row::with_capacity(self.cols.len());
        let mut off = 0;
        for codec in &self.cols {
            let v = match codec {
                ColCodec::Numeric {
                    mean,
                    std,
                    is_int,
                    min,
                    max,
                } => {
                    let f = (features[off] as f64) * std + mean;
                    let f = if max > min { f.clamp(*min, *max) } else { f };
                    if *is_int {
                        Value::Int(f.round() as i64)
                    } else {
                        Value::Float(f)
                    }
                }
                ColCodec::Categorical { values } => {
                    if values.is_empty() {
                        Value::Null
                    } else {
                        let slice = &features[off..off + values.len()];
                        let mut best = 0;
                        for (i, &x) in slice.iter().enumerate() {
                            if x > slice[best] {
                                best = i;
                            }
                        }
                        values[best].clone()
                    }
                }
                ColCodec::Bool => Value::Bool(features[off] > 0.5),
            };
            row.push(v);
            off += codec.width();
        }
        row
    }
}

/// The VAE baseline: one VAE per table, synthetic tuples as output.
pub struct GenerativeVae {
    pub seed: u64,
    /// Training rows sampled per table.
    pub train_cap: usize,
    pub epochs: usize,
    pub latent_dim: usize,
}

impl Default for GenerativeVae {
    fn default() -> Self {
        GenerativeVae {
            seed: 0,
            train_cap: 2000,
            epochs: 30,
            latent_dim: 8,
        }
    }
}

impl GenerativeVae {
    /// Train on `table` and generate `count` synthetic rows.
    fn synthesize_table(&self, table: &Table, count: usize, rng: &mut StdRng) -> DbResult<Table> {
        let mut out = Table::with_capacity(table.name(), table.schema().clone(), count);
        let n = table.row_count();
        if n == 0 || count == 0 {
            return Ok(out);
        }
        let codec = TupleCodec::fit(table);

        // Sample training rows.
        let take = self.train_cap.min(n);
        let mut ids: Vec<usize> = (0..n).collect();
        for i in 0..take {
            let j = rng.random_range(i..n);
            ids.swap(i, j);
        }
        ids.truncate(take);
        let mut data = Matrix::zeros(take, codec.width);
        for (bi, &rid) in ids.iter().enumerate() {
            codec.encode_row(&table.row(rid), data.row_mut(bi));
        }

        let mut vae = Vae::new(
            VaeConfig {
                latent_dim: self.latent_dim.min(codec.width.max(2)),
                ..VaeConfig::new(codec.width, self.latent_dim)
            },
            rng,
        );
        vae.fit(&data, self.epochs, 64, rng);

        let samples = vae.sample(count, rng);
        for r in 0..count {
            let row = codec.decode_row(samples.row(r));
            out.push_row(&row)?;
        }
        Ok(out)
    }
}

impl Baseline for GenerativeVae {
    fn name(&self) -> &'static str {
        "VAE"
    }

    fn build(
        &mut self,
        db: &Database,
        _train: &Workload,
        k: usize,
        _params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xae0);
        let budgets = proportional_budget(db, k);
        let mut synth = Database::new();
        for table in db.tables() {
            let share = budgets
                .iter()
                .find(|(t, _)| t == table.name())
                .map(|(_, s)| *s)
                .unwrap_or(0);
            synth.add_table(self.synthesize_table(table, share, &mut rng)?)?;
        }
        Ok(BaselineOutput::Synthetic(synth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_data::{imdb, Scale};
    use asqp_db::Schema;

    #[test]
    fn codec_roundtrips_typical_rows() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::build(&[
                    ("x", ValueType::Int),
                    ("name", ValueType::Str),
                    ("f", ValueType::Bool),
                ]),
            )
            .unwrap();
        for i in 0..50 {
            let name = if i % 2 == 0 { "alpha" } else { "beta" };
            t.push_row(&[Value::Int(i), name.into(), Value::Bool(i % 3 == 0)])
                .unwrap();
        }
        let codec = TupleCodec::fit(db.table("t").unwrap());
        let mut buf = vec![0.0f32; codec.width];
        let row = db.table("t").unwrap().row(7);
        codec.encode_row(&row, &mut buf);
        let back = codec.decode_row(&buf);
        assert_eq!(back[0], row[0]);
        assert_eq!(back[1], row[1]);
        assert_eq!(back[2], row[2]);
    }

    #[test]
    fn decoded_values_stay_in_domain() {
        let db = imdb::generate(Scale::Tiny, 1);
        let table = db.table("title").unwrap();
        let codec = TupleCodec::fit(table);
        // Wild feature vector: decode must clamp numerics and pick a real
        // categorical value.
        let wild = vec![100.0f32; codec.width];
        let row = codec.decode_row(&wild);
        let year = row[2].as_i64().unwrap();
        assert!((1800..=2100).contains(&year), "year clamped: {year}");
        assert!(row[3].as_str().is_some());
    }

    #[test]
    fn vae_baseline_generates_schema_valid_tuples() {
        let db = imdb::generate(Scale::Tiny, 1);
        let w = imdb::workload(6, 1);
        let mut vae = GenerativeVae {
            epochs: 5,
            train_cap: 200,
            ..GenerativeVae::default()
        };
        let out = vae.build(&db, &w, 100, MetricParams::new(20)).unwrap();
        let BaselineOutput::Synthetic(synth) = &out else {
            panic!("VAE must be generative")
        };
        assert!(out.tuple_count() >= 90);
        // Synthetic db is queryable with the same schema.
        let r = synth
            .sql("SELECT t.title FROM title t WHERE t.production_year > 1900")
            .unwrap();
        let _ = r.rows.len();
    }
}
