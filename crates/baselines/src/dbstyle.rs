//! Database-domain baselines (§6.1): CACH (LRU cache simulation), QRD
//! (query-result diversification via medoids), SKY (onion-peeled skyline
//! with frequency-ordered categoricals).

use crate::common::{proportional_budget, Baseline, BaselineOutput};
use asqp_core::{MetricParams, Selection};
use asqp_db::{Database, DbResult, Table, TableStats, Value, Workload};
use asqp_embed::{kmeans, Embedder};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::HashMap;

/// CACH — simulate an LRU tuple cache while the workload executes in an
/// interleaved order (the paper's footnote: multiple users with different
/// interests hit the cache simultaneously, so the order is shuffled).
pub struct LruCache {
    pub seed: u64,
}

impl Baseline for LruCache {
    fn name(&self) -> &'static str {
        "CACH"
    }

    fn build(
        &mut self,
        db: &Database,
        train: &Workload,
        k: usize,
        _params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xcac4e);
        // Shuffled execution order (interleaved user interests).
        let mut order: Vec<usize> = (0..train.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        // LRU over (table, row): most-recent at the back.
        let mut lru: Vec<(String, usize)> = Vec::new();
        let mut pos: HashMap<(String, usize), ()> = HashMap::new();
        for &qi in &order {
            let q = train.queries[qi].strip_aggregates();
            let out = db.execute_with_lineage(&q)?;
            for lin in &out.lineage {
                for (bi, &rid) in lin.iter().enumerate() {
                    let key = (out.binding_tables[bi].clone(), rid);
                    if pos.contains_key(&key) {
                        // Touch: move to the back.
                        if let Some(p) = lru.iter().position(|e| *e == key) {
                            let e = lru.remove(p);
                            lru.push(e);
                        }
                        continue;
                    }
                    if lru.len() >= k {
                        let evicted = lru.remove(0);
                        pos.remove(&evicted);
                    }
                    pos.insert(key.clone(), ());
                    lru.push(key);
                }
            }
        }
        let mut sel = Selection::new();
        for (table, rid) in lru {
            sel.entry(table).or_default().push(rid);
        }
        for rows in sel.values_mut() {
            rows.sort_unstable();
            rows.dedup();
        }
        Ok(BaselineOutput::Selection(sel))
    }
}

/// QRD — query-result diversification (Liu & Jagadish 2009 style): embed a
/// sample of tuples, cluster, take medoid-centred representatives
/// round-robin until the budget is filled. Workload-agnostic (usable in the
/// no-workload experiment, Fig. 6).
pub struct QueryResultDiversification {
    pub seed: u64,
    /// Tuples sampled per table before clustering (bounds the O(n·k) cost).
    pub sample_per_table: usize,
}

impl Default for QueryResultDiversification {
    fn default() -> Self {
        QueryResultDiversification {
            seed: 0,
            sample_per_table: 2000,
        }
    }
}

impl Baseline for QueryResultDiversification {
    fn name(&self) -> &'static str {
        "QRD"
    }

    fn build(
        &mut self,
        db: &Database,
        _train: &Workload,
        k: usize,
        _params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        let embedder = Embedder::new(64);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x92d);
        let mut sel = Selection::new();
        for (table_name, share) in proportional_budget(db, k) {
            if share == 0 {
                continue;
            }
            let table = db.table(&table_name)?;
            let n = table.row_count();
            // Sample row ids.
            let mut ids: Vec<usize> = (0..n).collect();
            for i in 0..self.sample_per_table.min(n) {
                let j = rng.random_range(i..n);
                ids.swap(i, j);
            }
            ids.truncate(self.sample_per_table.min(n));
            // Embed and cluster.
            let points: Vec<Vec<f32>> = ids
                .iter()
                .map(|&rid| embedder.embed_tuple(table.schema(), &table.row(rid)))
                .collect();
            let n_clusters = share.clamp(1, 64);
            let clustering = kmeans(&points, n_clusters, 15, &mut rng);
            // Round-robin across clusters: medoid-closest first.
            let mut per_cluster: Vec<Vec<usize>> = vec![Vec::new(); clustering.centroids.len()];
            for (pi, &c) in clustering.assignment.iter().enumerate() {
                per_cluster[c].push(pi);
            }
            for members in per_cluster.iter_mut() {
                members.sort_by(|&a, &b| {
                    let da = asqp_embed::sq_dist(
                        &points[a],
                        &clustering.centroids[clustering.assignment[a]],
                    );
                    let db_ = asqp_embed::sq_dist(
                        &points[b],
                        &clustering.centroids[clustering.assignment[b]],
                    );
                    da.partial_cmp(&db_).unwrap_or(std::cmp::Ordering::Equal)
                });
            }
            let mut chosen: Vec<usize> = Vec::with_capacity(share);
            let mut round = 0usize;
            while chosen.len() < share {
                let mut any = false;
                for members in &per_cluster {
                    if let Some(&pi) = members.get(round) {
                        chosen.push(ids[pi]);
                        any = true;
                        if chosen.len() >= share {
                            break;
                        }
                    }
                }
                if !any {
                    break;
                }
                round += 1;
            }
            chosen.sort_unstable();
            chosen.dedup();
            sel.insert(table_name, chosen);
        }
        Ok(BaselineOutput::Selection(sel))
    }
}

/// SKY — skyline summarisation (Papadias et al. 2005) extended to
/// categorical columns by value frequency (paper §6.1), peeled in onion
/// layers until the budget is filled.
pub struct Skyline;

impl Skyline {
    /// Per-row preference vector: numeric columns as-is (higher better),
    /// categorical columns mapped to their value frequency.
    fn preference_vectors(table: &Table) -> Vec<Vec<f64>> {
        let stats = TableStats::compute(table);
        let n = table.row_count();
        let ncols = table.schema().len();
        // Frequency lookup per categorical column.
        let mut freq: Vec<HashMap<Value, usize>> = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let mut m = HashMap::new();
            if table.schema().column(c).ty == asqp_db::ValueType::Str {
                for r in 0..n {
                    *m.entry(table.value(r, c)).or_insert(0) += 1;
                }
            }
            freq.push(m);
        }
        let _ = stats;
        (0..n)
            .map(|r| {
                (0..ncols)
                    .map(|c| match table.value(r, c) {
                        Value::Int(i) => i as f64,
                        Value::Float(f) => f,
                        Value::Bool(b) => b as i64 as f64,
                        v @ Value::Str(_) => freq[c].get(&v).copied().unwrap_or(0) as f64,
                        Value::Null => f64::NEG_INFINITY,
                    })
                    .collect()
            })
            .collect()
    }

    /// One skyline layer (block-nested-loops): rows not dominated by any
    /// other remaining row. `a` dominates `b` iff ≥ on all dims, > on one.
    fn skyline_layer(prefs: &[Vec<f64>], remaining: &[usize]) -> Vec<usize> {
        let dominates = |a: &[f64], b: &[f64]| {
            let mut strict = false;
            for (x, y) in a.iter().zip(b) {
                if x < y {
                    return false;
                }
                if x > y {
                    strict = true;
                }
            }
            strict
        };
        remaining
            .iter()
            .copied()
            .filter(|&r| {
                !remaining
                    .iter()
                    .any(|&o| o != r && dominates(&prefs[o], &prefs[r]))
            })
            .collect()
    }
}

impl Baseline for Skyline {
    fn name(&self) -> &'static str {
        "SKY"
    }

    fn build(
        &mut self,
        db: &Database,
        _train: &Workload,
        k: usize,
        _params: MetricParams,
    ) -> DbResult<BaselineOutput> {
        let mut sel = Selection::new();
        for (table_name, share) in proportional_budget(db, k) {
            if share == 0 {
                continue;
            }
            let table = db.table(&table_name)?;
            let prefs = Self::preference_vectors(table);
            let mut remaining: Vec<usize> = (0..table.row_count()).collect();
            let mut chosen: Vec<usize> = Vec::with_capacity(share);
            while chosen.len() < share && !remaining.is_empty() {
                let mut layer = Self::skyline_layer(&prefs, &remaining);
                if layer.is_empty() {
                    break; // all-equal rows: take arbitrarily
                }
                layer.truncate(share - chosen.len());
                remaining.retain(|r| !layer.contains(r));
                chosen.extend(layer);
            }
            // Degenerate tables (single value): fill from the front.
            for r in remaining {
                if chosen.len() >= share {
                    break;
                }
                chosen.push(r);
            }
            chosen.sort_unstable();
            chosen.dedup();
            sel.insert(table_name, chosen);
        }
        Ok(BaselineOutput::Selection(sel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asqp_data::{imdb, Scale};
    use asqp_db::{Schema, ValueType};

    fn setup() -> (Database, Workload) {
        (imdb::generate(Scale::Tiny, 1), imdb::workload(10, 1))
    }

    #[test]
    fn cach_holds_recent_query_tuples() {
        let (db, w) = setup();
        let mut cach = LruCache { seed: 3 };
        let out = cach.build(&db, &w, 80, MetricParams::new(20)).unwrap();
        assert!(out.tuple_count() > 0 && out.tuple_count() <= 80);
        // Cached tuples answer at least part of the workload.
        let sub = out.materialize(&db).unwrap();
        let s = asqp_core::score(&db, &sub, &w, MetricParams::new(20)).unwrap();
        assert!(s > 0.0);
    }

    #[test]
    fn qrd_fills_budget_with_diverse_rows() {
        let (db, w) = setup();
        let mut qrd = QueryResultDiversification {
            seed: 1,
            sample_per_table: 300,
        };
        let out = qrd.build(&db, &w, 60, MetricParams::new(20)).unwrap();
        assert!(out.tuple_count() >= 50 && out.tuple_count() <= 60);
    }

    #[test]
    fn skyline_prefers_dominating_rows() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::build(&[("a", ValueType::Int), ("b", ValueType::Int)]),
            )
            .unwrap();
        // Row 0 dominates everything; rows 1-2 form the second layer.
        for (a, b) in [(10, 10), (9, 5), (5, 9), (1, 1)] {
            t.push_row(&[Value::Int(a), Value::Int(b)]).unwrap();
        }
        let mut sky = Skyline;
        let out = sky
            .build(&db, &Workload::uniform(vec![]), 1, MetricParams::new(20))
            .unwrap();
        let BaselineOutput::Selection(sel) = out else {
            panic!()
        };
        assert_eq!(sel["t"], vec![0], "top layer is the dominating row");
    }

    #[test]
    fn skyline_onion_peels_until_budget() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::build(&[("a", ValueType::Int), ("b", ValueType::Int)]),
            )
            .unwrap();
        for (a, b) in [(10, 10), (9, 5), (5, 9), (1, 1)] {
            t.push_row(&[Value::Int(a), Value::Int(b)]).unwrap();
        }
        let mut sky = Skyline;
        let out = sky
            .build(&db, &Workload::uniform(vec![]), 3, MetricParams::new(20))
            .unwrap();
        let BaselineOutput::Selection(sel) = out else {
            panic!()
        };
        assert_eq!(sel["t"], vec![0, 1, 2]);
    }
}
