//@path: crates/core/src/metric.rs
// Wall-clock and ambient randomness in a scored module: every one of
// these fires `nondet`.

fn score_with_timing() -> f64 {
    let t0 = std::time::Instant::now(); //~ ERROR nondet
    let wall = std::time::SystemTime::now(); //~ ERROR nondet
    let _ = wall;
    t0.elapsed().as_secs_f64()
}

fn ambient_rng() -> u64 {
    let mut rng = rand::thread_rng(); //~ ERROR nondet
    let other = rand::rngs::StdRng::from_entropy(); //~ ERROR nondet
    let _ = other;
    rng.gen()
}

fn seeded_is_fine() -> u64 {
    // Explicit seeds are the sanctioned path — no finding.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    rng.gen()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: wall-clock in assertions is harmless.
    #[test]
    fn timing_in_tests_is_fine() {
        let _t = std::time::Instant::now();
    }
}
