//@path: crates/core/src/metric.rs
// HashMap/HashSet iteration feeding a scored computation: order leaks
// into f64 accumulation.

use std::collections::{HashMap, HashSet};

fn leaky_sum(weights: &HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for (_q, w) in weights { //~ ERROR iter-order
        total += w;
    }
    total
}

fn leaky_set(seen: HashSet<u64>) -> Vec<u64> {
    seen.into_iter().collect() //~ ERROR iter-order
}

fn inferred_binding() -> f64 {
    let scores = HashMap::<String, f64>::new();
    scores.values().sum() //~ ERROR iter-order
}

fn lookup_only_is_fine(cache: &HashMap<String, f64>, key: &str) -> f64 {
    // Point lookups don't depend on iteration order — no finding.
    cache.get(key).copied().unwrap_or(0.0)
}
