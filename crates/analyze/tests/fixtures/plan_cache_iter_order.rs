//@path: crates/db/src/plan_cache.rs
// Cache bookkeeping must not iterate hash structures: eviction order and
// fingerprint accumulation would become run-dependent, so a "valid" cached
// plan could differ between identical runs. The real cache uses BTreeMap
// with a monotonic LRU tick for exactly this reason.

use std::collections::HashMap;

fn evict_first(entries: &mut HashMap<String, u64>) -> Option<String> {
    let victim = entries.keys().next().cloned(); //~ ERROR iter-order
    if let Some(k) = &victim {
        entries.remove(k);
    }
    victim
}

fn fingerprint_tables(schemas: &HashMap<String, Vec<String>>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for (name, cols) in schemas { //~ ERROR iter-order
        h ^= name.len() as u64 ^ cols.len() as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn lookup_is_fine(entries: &HashMap<String, u64>, key: &str) -> Option<u64> {
    // Point lookups don't observe iteration order — no finding.
    entries.get(key).copied()
}
