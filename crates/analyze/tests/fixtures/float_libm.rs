//@path: crates/nn/src/kernels.rs
// Transcendental libm calls inside the kernels module: their results are
// not bit-specified by IEEE 754, so cross-platform determinism breaks.

fn activation(x: f32) -> f32 {
    x.tanh() //~ ERROR float-libm
}

fn softmax_term(x: f64) -> f64 {
    x.exp() //~ ERROR float-libm
}

fn exact_ops_are_fine(x: f32, y: f32) -> f32 {
    // sqrt and mul_add are correctly-rounded per IEEE 754 — exempt.
    x.sqrt().mul_add(y, 1.0)
}
