//@path: crates/serve/src/worker.rs
// Panic vectors on the request path: one admitted query must not be able
// to take a worker (and every queued request behind it) down.

fn handle(jobs: &[u64], table: &std::collections::BTreeMap<u64, String>) -> String {
    let first = jobs.first().unwrap(); //~ ERROR panic-path
    let named = table.get(first).expect("job must be registered"); //~ ERROR panic-path
    let direct = &jobs[0]; //~ ERROR panic-path
    if named.is_empty() {
        panic!("empty job name"); //~ ERROR panic-path
    }
    format!("{direct}")
}

fn graceful(jobs: &[u64]) -> Option<u64> {
    // The fallible forms are fine.
    jobs.first().copied()
}
