//@path: crates/telemetry/src/lib.rs
// The telemetry crate is exempt from `nondet` by design — its whole job
// is measuring wall-clock. Nothing here fires.

pub fn span_start() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
