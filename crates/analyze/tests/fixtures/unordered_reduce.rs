//@path: crates/rl/src/trainer.rs
// Scoped-thread fan-out whose merge order is undocumented: without an
// in-order-merge marker the reduction is presumed unordered.

fn unmarked_fanout(parts: &[Vec<f32>]) -> Vec<f32> {
    let mut out = Vec::new();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|p| s.spawn(move |_| p.iter().sum::<f32>())) //~ ERROR unordered-reduce
            .collect();
        for h in handles {
            out.push(h.join().unwrap());
        }
    })
    .unwrap();
    out
}

fn marked_fanout(parts: &[Vec<f32>]) -> Vec<f32> {
    // asqp::in-order-merge: handles joined in spawn order below
    let mut out = Vec::new();
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|p| s.spawn(move |_| p.iter().sum::<f32>()))
            .collect();
        for h in handles {
            out.push(h.join().unwrap());
        }
    })
    .unwrap();
    out
}
