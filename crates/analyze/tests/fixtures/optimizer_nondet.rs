//@path: crates/db/src/optimizer.rs
// The cost-based planner is a scored path: join orders feed cardinalities
// feed rewards. Timing-dependent tie-breaks or ambient randomness in plan
// choice would make figure runs diverge — both fire `nondet` here.

fn timed_plan_choice(costs: &[f64]) -> usize {
    let t0 = std::time::Instant::now(); //~ ERROR nondet
    let mut best = 0;
    for (i, c) in costs.iter().enumerate() {
        if *c < costs[best] {
            best = i;
        }
    }
    if t0.elapsed().as_micros() > 50 {
        return 0; // "give up" under time pressure: plan depends on the clock
    }
    best
}

fn random_tie_break(candidates: &[usize]) -> usize {
    let mut rng = rand::thread_rng(); //~ ERROR nondet
    candidates[rng.gen_range(0..candidates.len())]
}

fn deterministic_tie_break(candidates: &[usize]) -> usize {
    // Lowest binding index wins: the sanctioned tie-break — no finding.
    candidates.iter().copied().min().unwrap_or(0)
}
