//! Lexer corpus tests: the hand-rolled lexer must be *lossless* on every
//! Rust file in the repository — first-party crates, the root crate, test
//! and bench trees, and the vendored `third_party/` stand-ins alike. Every
//! byte of every file lands in exactly one token span, so concatenating
//! the spans reconstructs the source byte-for-byte.
//!
//! A proptest layer then hammers the same invariant with adversarial
//! inputs the corpus can't cover: unterminated strings, stray quotes,
//! half-open block comments, non-UTF-8-adjacent punctuation soup.

use asqp_analyze::lexer::{lex, TokenKind};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    asqp_analyze::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("analyze crate lives inside the workspace")
}

/// Every `.rs` file under the repo — wider than the gate's scan set on
/// purpose: the lexer must not choke even on code the rules never see.
fn all_rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn assert_lossless(src: &str, what: &str) {
    let tokens = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut prev_end = 0usize;
    for t in &tokens {
        assert_eq!(
            t.start, prev_end,
            "{what}: gap or overlap at byte {prev_end} (token {:?})",
            t.kind
        );
        assert!(t.end > t.start, "{what}: empty token {:?}", t.kind);
        rebuilt.push_str(&src[t.start..t.end]);
        prev_end = t.end;
    }
    assert_eq!(prev_end, src.len(), "{what}: trailing bytes unlexed");
    assert_eq!(rebuilt, src, "{what}: reconstruction differs");
}

#[test]
fn every_workspace_file_lexes_losslessly() {
    let root = workspace_root();
    let files = all_rust_files(&root);
    assert!(
        files.len() > 100,
        "corpus unexpectedly small: {} files",
        files.len()
    );
    for f in &files {
        let src = fs::read_to_string(f).unwrap();
        assert_lossless(&src, &f.display().to_string());
    }
}

#[test]
fn corpus_has_no_unknown_tokens_in_first_party_code() {
    // `Unknown` is the lexer's recovery bucket; real workspace sources
    // must never need it (it would mean the lexer misread something and
    // the rules could silently skip that region).
    let root = workspace_root();
    for rel in asqp_analyze::workspace_files(&root).unwrap() {
        let src = fs::read_to_string(root.join(&rel)).unwrap();
        for t in lex(&src) {
            assert!(
                !matches!(t.kind, TokenKind::Unknown),
                "{rel}: unknown token at bytes {}..{}: {:?}",
                t.start,
                t.end,
                &src[t.start..t.end]
            );
        }
    }
}

/// Tricky constructs the corpus may or may not exercise: raw strings with
/// fences, lifetimes, char literals, nested comments, numeric suffixes,
/// and deliberately *broken* forms the error recovery must absorb.
const SOUP: &[&str] = &[
    "r#\"raw \" quote\"#",
    "r##\"nested \"# fence\"##",
    "'a",
    "'a'",
    "'\\n'",
    "'",
    "/* outer /* inner */ outer */",
    "/* unterminated",
    "// line comment",
    "b\"bytes\\\"esc\"",
    "\"unterminated",
    "1_000u64",
    "1.5e-3f32",
    "0xFFu8",
    "r#match",
    "ident",
    "::<>()[]{}.,;#!&|",
    "\u{1F980}",
    "\n",
    " ",
];

proptest! {
    /// Losslessness holds for *arbitrary* byte soup, not just valid Rust —
    /// the lexer's error recovery (unterminated literals absorb to EOF,
    /// stray bytes become `Unknown`) must still account for every byte.
    #[test]
    fn arbitrary_strings_lex_losslessly(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_lossless(&src, "random bytes");
    }

    /// Random interleavings of the construct table, joined with and
    /// without separating space (adjacency is where lexers break).
    #[test]
    fn construct_soup_lexes_losslessly(
        picks in prop::collection::vec((0usize..SOUP.len(), any::<bool>()), 0..24),
    ) {
        let mut src = String::new();
        for (idx, spaced) in picks {
            src.push_str(SOUP[idx]);
            if spaced {
                src.push(' ');
            }
        }
        assert_lossless(&src, "construct soup");
    }
}
