//! Golden-file tests for the rule engine, plus the two end-to-end
//! guarantees the CI gate rests on:
//!
//! * the current tree is clean (`analyze_workspace` returns no findings —
//!   this makes `cargo test` itself a determinism gate), and
//! * the gate actually *fails* when a violation is seeded into a scored
//!   file (guards against the analyzer silently rotting into a no-op).
//!
//! Fixtures live in `tests/fixtures/`. Each is a Rust source whose first
//! line is `//@path: <virtual workspace path>` (rules are path-scoped) and
//! whose expected findings are marked compiletest-style with a trailing
//! `//~ ERROR <rule-id>` comment on the offending line. A fixture with no
//! markers asserts the analyzer stays *silent* on it.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    asqp_analyze::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("analyze crate lives inside the workspace")
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parse a fixture: virtual path from the `//@path:` header, expected
/// `(line, rule)` pairs from `//~ ERROR` markers.
fn parse_fixture(src: &str, name: &str) -> (String, BTreeMap<(usize, String), usize>) {
    let first = src.lines().next().unwrap_or_default();
    let vpath = first
        .strip_prefix("//@path:")
        .unwrap_or_else(|| panic!("{name}: first line must be `//@path: <virtual path>`"))
        .trim()
        .to_string();
    let mut expected: BTreeMap<(usize, String), usize> = BTreeMap::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~ ERROR ") {
            let rule = line[pos + "//~ ERROR ".len()..].trim().to_string();
            assert!(
                !rule.is_empty(),
                "{name}: empty rule in marker on line {}",
                idx + 1
            );
            *expected.entry((idx + 1, rule)).or_default() += 1;
        }
    }
    (vpath, expected)
}

fn check_fixture(path: &Path) {
    let name = path.file_name().unwrap().to_string_lossy().to_string();
    let src = fs::read_to_string(path).unwrap();
    let (vpath, expected) = parse_fixture(&src, &name);
    let (findings, _) = asqp_analyze::analyze_source(&vpath, &src);
    let mut actual: BTreeMap<(usize, String), usize> = BTreeMap::new();
    for f in &findings {
        *actual.entry((f.line, f.rule.to_string())).or_default() += 1;
    }
    assert_eq!(
        actual, expected,
        "{name}: findings diverge from //~ ERROR markers\nfull findings: {findings:#?}"
    );
}

#[test]
fn golden_fixtures_match_their_markers() {
    let dir = fixtures_dir();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(fixtures.len() >= 6, "fixture set shrank: {fixtures:?}");
    for f in &fixtures {
        check_fixture(f);
    }
}

#[test]
fn workspace_is_clean() {
    // The same invariant the CI `analyze` job enforces, embedded in the
    // test suite: zero unsuppressed findings, zero unused allows.
    let report = asqp_analyze::analyze_workspace(&workspace_root()).unwrap();
    assert!(
        report.findings.is_empty(),
        "workspace has unsuppressed findings:\n{}",
        report.render_human()
    );
    assert!(report.files_scanned > 80, "scan set shrank unexpectedly");
}

#[test]
fn gate_fails_on_seeded_violation() {
    // Acceptance drill: take the *real* scoring module, seed a wall-clock
    // read into it, and prove the gate trips. If the lexer or the scope
    // matching regresses, this is the test that catches it.
    let root = workspace_root();
    let rel = "crates/core/src/metric.rs";
    let clean = fs::read_to_string(root.join(rel)).unwrap();
    let (before, _) = asqp_analyze::analyze_source(rel, &clean);
    assert!(
        before.is_empty(),
        "metric.rs should start clean: {before:?}"
    );

    // Inject after the first `{` that opens a non-test fn body.
    let inject = "\n    let _seeded = std::time::Instant::now();";
    let pos = clean
        .find("fn ")
        .and_then(|f| clean[f..].find('{').map(|b| f + b + 1))
        .expect("metric.rs has a function");
    let mut seeded = clean.clone();
    seeded.insert_str(pos, inject);

    let (after, _) = asqp_analyze::analyze_source(rel, &seeded);
    assert!(
        after.iter().any(|f| f.rule == "nondet"),
        "seeded Instant::now() must trip the nondet rule: {after:?}"
    );
}

#[test]
fn seeded_violation_is_suppressible_with_pragma() {
    let root = workspace_root();
    let rel = "crates/core/src/metric.rs";
    let clean = fs::read_to_string(root.join(rel)).unwrap();
    let inject = "\n    // asqp::allow(nondet): test drill, justified\n    \
                  let _seeded = std::time::Instant::now();";
    let pos = clean
        .find("fn ")
        .and_then(|f| clean[f..].find('{').map(|b| f + b + 1))
        .expect("metric.rs has a function");
    let mut seeded = clean.clone();
    seeded.insert_str(pos, inject);
    let (findings, used) = asqp_analyze::analyze_source(rel, &seeded);
    assert!(findings.is_empty(), "{findings:?}");
    assert!(used >= 1, "the drill pragma must count as honoured");
}

#[test]
fn json_report_is_well_formed_and_stable() {
    let src = "fn f() { let t = Instant::now(); }\n";
    let (findings, _) = asqp_analyze::analyze_source("crates/core/src/metric.rs", src);
    let mut report = asqp_analyze::diag::Report {
        findings,
        files_scanned: 1,
        allows_used: 0,
    };
    report.sort();
    let json = report.render_json();
    // Hand-rolled writer: spot-check shape and key order stability.
    assert!(
        json.starts_with('{') && json.trim_end().ends_with('}'),
        "{json}"
    );
    assert!(json.contains("\"rule\": \"nondet\""), "{json}");
    assert!(
        json.contains("\"path\": \"crates/core/src/metric.rs\""),
        "{json}"
    );
    assert!(json.contains("\"files_scanned\": 1"), "{json}");
    let again = report.render_json();
    assert_eq!(json, again, "JSON rendering must be deterministic");
}
