//! The rule set. Each rule is scoped to the module paths where its
//! invariant is load-bearing (see DESIGN.md §10 for why each exists and
//! which PR established the invariant it guards):
//!
//! * `nondet` — no wall-clock or ambient randomness in scored paths
//!   (Eq.-1 scoring, environments, RL training, query execution). PR 1's
//!   byte-identical fig02 runs and PR 3's worker-count-invariant PPO both
//!   assume it.
//! * `iter-order` — no `HashMap`/`HashSet` iteration feeding scores,
//!   rewards or serialized reports; `BTreeMap`/`BTreeSet` iterate in key
//!   order (the fix PR 1 applied to VERD strata).
//! * `unordered-reduce` — scoped-thread fan-ins must carry an
//!   `// asqp::in-order-merge: …` marker documenting that the merge is
//!   performed in deterministic order (f32 addition is not associative;
//!   PR 3's sharded PPO relies on in-order reduction).
//! * `panic-path` — no `unwrap`/`expect`/`panic!`/indexing on the serve
//!   request path or in `core::session` routing: every admitted request
//!   must resolve (PR 4's zero-lost-requests chaos contract).
//! * `float-libm` — no libm-backed transcendental calls inside
//!   `nn::kernels`: libm results differ across platforms/versions, while
//!   the kernels promise bit-identical results across ISAs (PR 3's
//!   numerics contract; `tanh_approx` exists for exactly this reason).

use crate::diag::Finding;
use crate::engine::{module_matches, FileModel};
use crate::lexer::TokenKind;

/// All primary rule ids (pragma validation accepts exactly these).
pub const RULE_IDS: &[&str] = &[
    "nondet",
    "iter-order",
    "unordered-reduce",
    "panic-path",
    "float-libm",
];

struct Scope {
    applies: &'static [&'static str],
    exempt: &'static [&'static str],
}

impl Scope {
    fn covers(&self, module: &[String]) -> bool {
        self.applies.iter().any(|p| module_matches(module, p))
            && !self.exempt.iter().any(|p| module_matches(module, p))
    }
}

/// Scored paths: Eq.-1 metric, the GSL/DRP environments, all of RL
/// training, and query execution (cardinalities are rewards' raw input) —
/// including planning: a wall-clock or ambient-randomness dependence in the
/// optimizer or its plan cache would make join orders run-dependent.
const NONDET: Scope = Scope {
    applies: &[
        "asqp_core::metric",
        "asqp_core::envs",
        "asqp_rl",
        "asqp_db::exec",
        "asqp_db::plan",
        "asqp_db::optimizer",
        "asqp_db::plan_cache",
        // Multi-tenant placement and the multi-tenant simulator must be
        // pure functions of the seed: a clock or ambient-randomness read
        // would break the byte-identical double-run gate.
        "asqp_serve::tenant",
        "asqp_serve::mt_sim",
        // The streaming driver's transcript is double-run byte-compared
        // in CI; every decision must be a pure function of the seed.
        "asqp_serve::stream",
    ],
    // Telemetry is timing-by-design; the fault planner is seeded and pure.
    exempt: &["asqp_telemetry", "asqp_serve::fault"],
};

/// Anywhere map/set iteration can reach scores, rewards, strata, training
/// inputs or serialized reports.
const ITER_ORDER: Scope = Scope {
    applies: &[
        "asqp_core::metric",
        "asqp_core::envs",
        "asqp_core::preprocess",
        "asqp_core::diversity",
        "asqp_core::aggregates",
        "asqp_core::estimator",
        "asqp_rl",
        "asqp_db::exec",
        "asqp_db::plan",
        "asqp_db::optimizer",
        "asqp_db::plan_cache",
        "asqp_db::stats",
        "asqp_telemetry",
        "asqp_bench",
        // Multi-tenant accounting renders transcripts that CI diffs
        // byte-for-byte; map iteration feeding them must be ordered.
        "asqp_serve::tenant",
        "asqp_serve::batch",
        "asqp_serve::multitenant",
        "asqp_serve::mt_sim",
        "asqp_serve::stream",
    ],
    exempt: &[],
};

/// Compute crates that fan work out across threads and merge numeric
/// results.
const REDUCE: Scope = Scope {
    applies: &["asqp_db", "asqp_rl", "asqp_core", "asqp_nn"],
    exempt: &[],
};

/// The serving request path: every admitted request must resolve.
const PANIC: Scope = Scope {
    applies: &["asqp_serve", "asqp_core::session"],
    // The chaos harness binary is operator tooling, not the request path.
    exempt: &["asqp_serve::bin"],
};

const FLOAT: Scope = Scope {
    applies: &["asqp_nn::kernels"],
    exempt: &[],
};

const NONDET_IDENTS: &[&str] = &[
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// libm-backed `f32`/`f64` methods whose results are platform-dependent.
/// (`sqrt` and `mul_add` are IEEE-exact and allowed.)
const LIBM_METHODS: &[&str] = &[
    "tanh", "sinh", "cosh", "exp", "exp2", "exp_m1", "ln", "ln_1p", "log", "log2", "log10", "sin",
    "cos", "tan", "asin", "acos", "atan", "atan2", "asinh", "acosh", "atanh", "powf", "cbrt",
    "hypot",
];

/// Run every rule over one file model. Findings come back unsuppressed;
/// the driver applies `asqp::allow` pragmas afterwards.
pub fn check_file(model: &FileModel<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    let n = model.sig.len();
    let text = |i: usize| model.sig_text(i);
    let kind = |i: usize| model.sig_kind(i);

    let mut push = |i: usize, rule: &'static str, message: String, help: String| {
        let (line, col) = model.sig_pos(i);
        out.push(Finding {
            rule,
            path: model.rel_path.clone(),
            line,
            col,
            message,
            help,
        });
    };

    for i in 0..n {
        if model.ctx[i].in_test {
            continue;
        }
        let module = model.module_of(i);
        let mpath = module.join("::");

        // ---- nondet ---------------------------------------------------
        if NONDET.covers(module) {
            // `::` lexes as two `:` puncts, so the path is four tokens.
            if text(i) == "Instant"
                && i + 3 < n
                && text(i + 1) == ":"
                && text(i + 2) == ":"
                && text(i + 3) == "now"
            {
                push(
                    i,
                    "nondet",
                    format!("`Instant::now()` in scored path `{mpath}`"),
                    "wall-clock time must not reach scores/rewards; pass timings in, gate \
                     behind telemetry, or justify with `// asqp::allow(nondet): <reason>`"
                        .to_string(),
                );
            }
            if kind(i) == TokenKind::Ident && NONDET_IDENTS.contains(&text(i)) {
                push(
                    i,
                    "nondet",
                    format!("ambient entropy `{}` in scored path `{mpath}`", text(i)),
                    "seed explicitly (`SeedableRng::seed_from_u64`) so runs replay \
                     byte-identically, or justify with `// asqp::allow(nondet): <reason>`"
                        .to_string(),
                );
            }
            if text(i) == "rand"
                && i + 3 < n
                && text(i + 1) == ":"
                && text(i + 2) == ":"
                && text(i + 3) == "random"
            {
                push(
                    i,
                    "nondet",
                    format!("argless `rand::random` in scored path `{mpath}`"),
                    "draw from an explicitly seeded RNG instead".to_string(),
                );
            }
        }

        // ---- iter-order -----------------------------------------------
        if ITER_ORDER.covers(module) && kind(i) == TokenKind::Ident {
            let name = text(i);
            if model.hash_bindings.contains(name) {
                // `name.method(` where method iterates.
                if i + 2 < n
                    && text(i + 1) == "."
                    && ITER_METHODS.contains(&text(i + 2))
                    && (i + 3 >= n || text(i + 3) == "(")
                {
                    push(
                        i + 2,
                        "iter-order",
                        format!(
                            "iterating `{name}` (HashMap/HashSet) via `.{}()` in `{mpath}` — \
                             iteration order is unspecified",
                            text(i + 2)
                        ),
                        "switch to BTreeMap/BTreeSet (ordered iteration, as PR 1 did for VERD \
                         strata), sort before use, or justify with \
                         `// asqp::allow(iter-order): <reason>`"
                            .to_string(),
                    );
                }
            }
            // `for pat in [&[mut]] name` over a tracked binding.
            if name == "for" {
                let mut j = i + 1;
                let mut depth = 0i32;
                let limit = (i + 12).min(n);
                while j < limit {
                    match text(j) {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth == 0 => break,
                        "{" => {
                            j = limit;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < limit && text(j) == "in" {
                    let mut k = j + 1;
                    while k < n && (text(k) == "&" || text(k) == "mut") {
                        k += 1;
                    }
                    if k < n
                        && kind(k) == TokenKind::Ident
                        && model.hash_bindings.contains(text(k))
                        && (k + 1 >= n || text(k + 1) == "{" || text(k + 1) == ".")
                    {
                        let iterated = text(k);
                        push(
                            k,
                            "iter-order",
                            format!(
                                "`for … in {iterated}` iterates a HashMap/HashSet in `{mpath}` — \
                                 iteration order is unspecified"
                            ),
                            "switch to BTreeMap/BTreeSet or sort before iterating".to_string(),
                        );
                    }
                }
            }
        }

        // ---- unordered-reduce -----------------------------------------
        if REDUCE.covers(module)
            && text(i) == "spawn"
            && kind(i) == TokenKind::Ident
            && i + 1 < n
            && text(i + 1) == "("
            && !model.marker_in_same_fn(i)
        {
            push(
                i,
                "unordered-reduce",
                format!("thread fan-out without an in-order merge marker in `{mpath}`"),
                "if results are merged, join handles in spawn order and mark the function \
                 with `// asqp::in-order-merge: <why the merge is ordered>`; otherwise \
                 justify with `// asqp::allow(unordered-reduce): <reason>`"
                    .to_string(),
            );
        }

        // ---- panic-path -----------------------------------------------
        if PANIC.covers(module) {
            if text(i) == "."
                && i + 2 < n
                && (text(i + 1) == "unwrap" || text(i + 1) == "expect")
                && text(i + 2) == "("
            {
                push(
                    i + 1,
                    "panic-path",
                    format!("`.{}()` on the request path `{mpath}`", text(i + 1)),
                    "every admitted request must resolve: return a typed error \
                     (`ErrorClass`), recover (`unwrap_or_else(|p| p.into_inner())` for lock \
                     poisoning), or justify with `// asqp::allow(panic-path): <reason>`"
                        .to_string(),
                );
            }
            if kind(i) == TokenKind::Ident
                && PANIC_MACROS.contains(&text(i))
                && i + 1 < n
                && text(i + 1) == "!"
            {
                push(
                    i,
                    "panic-path",
                    format!("`{}!` on the request path `{mpath}`", text(i)),
                    "turn the panic into a typed error the degradation ladder can absorb"
                        .to_string(),
                );
            }
            if text(i) == "["
                && i > 0
                && (matches!(kind(i - 1), TokenKind::Ident | TokenKind::RawIdent)
                    || text(i - 1) == ")"
                    || text(i - 1) == "]")
            {
                push(
                    i,
                    "panic-path",
                    format!("indexing (may panic) on the request path `{mpath}`"),
                    "use `.get(…)` and handle `None`, or justify with \
                     `// asqp::allow(panic-path): <reason>`"
                        .to_string(),
                );
            }
        }

        // ---- float-libm ------------------------------------------------
        if FLOAT.covers(module)
            && text(i) == "."
            && i + 2 < n
            && LIBM_METHODS.contains(&text(i + 1))
            && text(i + 2) == "("
        {
            push(
                i + 1,
                "float-libm",
                format!(
                    "libm-backed `.{}()` inside `{mpath}` — results vary across \
                     platforms/libm versions",
                    text(i + 1)
                ),
                "kernels promise bit-identical results across ISAs: use an exact polynomial \
                 / rational approximation (see `tanh_approx`) or hoist the call out of the \
                 kernel crate"
                    .to_string(),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::build_model;

    fn findings(path: &str, src: &str) -> Vec<(String, usize)> {
        let model = build_model(path, src);
        check_file(&model)
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line))
            .collect()
    }

    #[test]
    fn instant_now_flagged_only_in_scope() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(findings("crates/core/src/metric.rs", src).len(), 1);
        assert_eq!(findings("crates/rl/src/trainer.rs", src).len(), 1);
        // session is outside the nondet scope (its latency telemetry is
        // wall-clock by design).
        assert!(findings("crates/core/src/session.rs", src).is_empty());
    }

    #[test]
    fn nondet_skips_tests_and_telemetry() {
        let src = "#[cfg(test)]\nmod tests { fn f() { let t = Instant::now(); } }\n";
        assert!(findings("crates/core/src/metric.rs", src).is_empty());
        let live = "fn f() { let t = Instant::now(); }\n";
        assert!(findings("crates/telemetry/src/lib.rs", live).is_empty());
    }

    #[test]
    fn hash_iteration_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                       let mut m: HashMap<u32, u32> = HashMap::new();\n\
                       for (k, v) in &m { score(k, v); }\n\
                       let s: Vec<_> = m.iter().collect();\n\
                       let ok = m.get(&1);\n\
                   }\n";
        let fs = findings("crates/core/src/metric.rs", src);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|(r, _)| r == "iter-order"));
    }

    #[test]
    fn lookup_only_hashmap_is_fine() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }\n";
        assert!(findings("crates/db/src/exec.rs", src).is_empty());
    }

    #[test]
    fn spawn_requires_marker() {
        let bare = "fn fan_out(s: &S) { s.spawn(|| work()); }\n";
        let fs = findings("crates/rl/src/trainer.rs", bare);
        assert_eq!(fs, vec![("unordered-reduce".to_string(), 1)]);

        let marked = "fn fan_out(s: &S) {\n\
                      // asqp::in-order-merge: handles joined in spawn order below\n\
                      s.spawn(|| work());\n}\n";
        assert!(findings("crates/rl/src/trainer.rs", marked).is_empty());
    }

    #[test]
    fn panic_path_catches_unwrap_expect_macros_indexing() {
        let src = "fn handle(v: &[u8]) {\n\
                       let a = v.first().unwrap();\n\
                       let b = lock().expect(\"poisoned\");\n\
                       if bad { panic!(\"no\"); }\n\
                       let c = v[0];\n\
                   }\n";
        let fs = findings("crates/serve/src/server.rs", src);
        let rules: Vec<_> = fs.iter().map(|(r, _)| r.as_str()).collect();
        assert_eq!(rules, vec!["panic-path"; 4], "{fs:?}");
        // …but the chaos harness binary is exempt.
        assert!(findings("crates/serve/src/bin/chaos_run.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f() { let g = m.lock().unwrap_or_else(|p| p.into_inner()); }\n";
        assert!(findings("crates/serve/src/queue.rs", src).is_empty());
    }

    #[test]
    fn attribute_brackets_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S { x: [u8; 4] }\nfn f(s: &S) -> u8 { s.x[0] }\n";
        let fs = findings("crates/serve/src/error.rs", src);
        assert_eq!(fs.len(), 1, "only the real indexing: {fs:?}");
        assert_eq!(fs[0].1, 3);
    }

    #[test]
    fn float_libm_only_inside_kernels() {
        let src = "fn act(x: f32) -> f32 { x.tanh() }\n";
        assert_eq!(findings("crates/nn/src/kernels.rs", src).len(), 1);
        assert!(findings("crates/nn/src/func.rs", src).is_empty());
        // sqrt is IEEE-exact: allowed even in kernels.
        let sqrt = "fn norm(x: f32) -> f32 { x.sqrt() }\n";
        assert!(findings("crates/nn/src/kernels.rs", sqrt).is_empty());
    }
}
