//! The path/scope-aware analysis engine.
//!
//! Sits between the lexer and the rules: walks a file's token stream once
//! and produces a [`FileModel`] with, for every significant token, the
//! inline-module path, the enclosing function, and whether the token is in
//! test code (`#[cfg(test)]` module, `#[test]` function, or a file under
//! `tests/` / `examples/` / `benches/`). It also collects the suppression
//! pragmas (`// asqp::allow(rule): reason`) and in-order-merge markers
//! (`// asqp::in-order-merge: reason`) that the rules and the pragma
//! validator consume.

use crate::lexer::{lex, line_col, Token, TokenKind};
use std::collections::BTreeSet;

/// Module path of a file derived from its workspace-relative path, e.g.
/// `crates/db/src/exec/vector.rs` → `["asqp_db", "exec", "vector"]`.
/// Returns `None` for files that are entirely test/bench/example code.
pub fn file_module(rel_path: &str) -> Option<Vec<String>> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts
        .iter()
        .any(|p| *p == "tests" || *p == "examples" || *p == "benches")
    {
        return None;
    }
    let (crate_name, rest): (String, &[&str]) = if parts.first() == Some(&"crates") {
        if parts.len() < 3 || parts[2] != "src" {
            return None;
        }
        (format!("asqp_{}", parts[1].replace('-', "_")), &parts[3..])
    } else if parts.first() == Some(&"src") {
        ("asqp".to_string(), &parts[1..])
    } else {
        return None;
    };
    let mut module = vec![crate_name];
    for (i, seg) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            match seg.strip_suffix(".rs") {
                Some("lib") | Some("mod") => {}
                Some("main") => module.push("bin".to_string()),
                Some(stem) => module.push(stem.to_string()),
                None => return None,
            }
        } else if *seg == "bin" {
            module.push("bin".to_string());
        } else {
            module.push(seg.to_string());
        }
    }
    Some(module)
}

/// Does `module` fall under `prefix` at a segment boundary?
/// (`asqp_db::exec` covers `asqp_db::exec` and `asqp_db::exec::vector`,
/// not `asqp_db::executor`.)
pub fn module_matches(module: &[String], prefix: &str) -> bool {
    let pre: Vec<&str> = prefix.split("::").collect();
    if pre.len() > module.len() {
        return false;
    }
    pre.iter().zip(module).all(|(p, m)| *p == m)
}

/// Context attached to each significant token.
#[derive(Debug, Clone, Copy)]
pub struct TokCtx {
    /// Index into [`FileModel::modules`].
    pub module: u32,
    /// Index into [`FileModel::fns`], if inside a function body.
    pub fn_id: Option<u32>,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// One function body encountered in the file.
#[derive(Debug, Clone)]
pub struct FnScope {
    pub name: String,
    /// Byte range of the body (from `{` to the matching `}`), used to
    /// attach comments (markers) to their enclosing function.
    pub body_start: usize,
    pub body_end: usize,
}

/// A suppression pragma: `// asqp::allow(rule): reason`.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub line: usize,
    pub col: usize,
    /// The line whose findings this pragma suppresses (its own line for a
    /// trailing comment, the next code line otherwise).
    pub target_line: usize,
    pub used: std::cell::Cell<bool>,
}

/// An in-order-merge marker: `// asqp::in-order-merge: reason`, attached
/// to the innermost function whose body contains it.
#[derive(Debug, Clone)]
pub struct Marker {
    pub fn_id: Option<u32>,
    pub line: usize,
}

/// A malformed pragma (missing reason, unknown shape) — always an error.
#[derive(Debug, Clone)]
pub struct BadPragma {
    pub line: usize,
    pub col: usize,
    pub why: String,
}

/// Everything the rules need to analyse one file.
pub struct FileModel<'s> {
    pub src: &'s str,
    pub rel_path: String,
    /// Full lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-whitespace, non-comment)
    /// tokens.
    pub sig: Vec<usize>,
    /// Context per entry of `sig`.
    pub ctx: Vec<TokCtx>,
    /// Distinct module paths seen (file module plus inline `mod`s).
    pub modules: Vec<Vec<String>>,
    pub fns: Vec<FnScope>,
    pub allows: Vec<Allow>,
    pub markers: Vec<Marker>,
    pub bad_pragmas: Vec<BadPragma>,
    /// Identifiers bound to `HashMap`/`HashSet` in this file (let
    /// bindings, fn params, struct fields).
    pub hash_bindings: BTreeSet<String>,
}

impl<'s> FileModel<'s> {
    /// Significant-token text by `sig` index.
    pub fn sig_text(&self, i: usize) -> &'s str {
        self.tokens[self.sig[i]].text(self.src)
    }

    pub fn sig_kind(&self, i: usize) -> TokenKind {
        self.tokens[self.sig[i]].kind
    }

    /// Line/col of significant token `i`.
    pub fn sig_pos(&self, i: usize) -> (usize, usize) {
        line_col(self.src, self.tokens[self.sig[i]].start)
    }

    pub fn module_of(&self, i: usize) -> &[String] {
        &self.modules[self.ctx[i].module as usize]
    }

    /// Does any in-order-merge marker sit in the same function as
    /// significant token `i`?
    pub fn marker_in_same_fn(&self, i: usize) -> bool {
        let fn_id = self.ctx[i].fn_id;
        fn_id.is_some() && self.markers.iter().any(|m| m.fn_id == fn_id)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Block,
    Module,
    TestModule,
    Fn(u32),
    TestFn(u32),
}

struct Scope {
    kind: ScopeKind,
    /// Length of the inline-module segment stack when this scope opened.
    mod_depth: usize,
}

/// Build the [`FileModel`] for one file. `rel_path` must be
/// workspace-relative with `/` separators. Files whose path yields no
/// module (pure test/bench/example files) are modelled with `in_test`
/// on every token.
pub fn build_model<'s>(rel_path: &str, src: &'s str) -> FileModel<'s> {
    let tokens = lex(src);
    let file_mod = file_module(rel_path);
    let all_test = file_mod.is_none();
    let base_mod = file_mod.unwrap_or_else(|| vec!["test_file".to_string()]);

    let mut model = FileModel {
        src,
        rel_path: rel_path.to_string(),
        tokens,
        sig: Vec::new(),
        ctx: Vec::new(),
        modules: vec![base_mod.clone()],
        fns: Vec::new(),
        allows: Vec::new(),
        markers: Vec::new(),
        bad_pragmas: Vec::new(),
        hash_bindings: BTreeSet::new(),
    };

    // ---- pass 1: scope walk over significant tokens -------------------
    let mut scopes: Vec<Scope> = Vec::new();
    let mut mod_segments: Vec<String> = Vec::new();
    let mut cur_module: u32 = 0;
    // Pending item: set by `mod NAME` / `fn NAME`, resolved at `{` or `;`.
    #[derive(Clone)]
    enum Pending {
        Mod(String, bool), // name, test-attr
        Fn(String, bool),
        None,
    }
    let mut pending = Pending::None;
    // `#[…]` attribute carrying cfg(test)/test, waiting for its item.
    let mut attr_test = false;
    let mut open_fn_brace: Vec<(u32, usize)> = Vec::new(); // (fn_id, body_start)

    let n = model.tokens.len();
    let mut i = 0usize;
    let sig_of = |model: &FileModel<'_>, tok_idx: usize| model.tokens[tok_idx];
    while i < n {
        let tok = sig_of(&model, i);
        match tok.kind {
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment => {
                i += 1;
                continue;
            }
            _ => {}
        }
        let text = tok.text(src);

        // Attributes: `#` `[` … `]` (balanced). Detect `test` / `cfg(test)`.
        if text == "#" {
            // find the `[`
            let mut j = i + 1;
            while j < n
                && matches!(
                    model.tokens[j].kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            {
                j += 1;
            }
            if j < n && model.tokens[j].text(src) == "[" {
                let mut depth = 0i32;
                let mut has_test = false;
                let mut k = j;
                while k < n {
                    let t = model.tokens[k].text(src);
                    match t {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "test" => has_test = true,
                        _ => {}
                    }
                    k += 1;
                }
                if has_test {
                    attr_test = true;
                }
                // Record the attribute tokens as significant and move on.
                let in_test_now = all_test
                    || scopes
                        .iter()
                        .any(|s| matches!(s.kind, ScopeKind::TestModule | ScopeKind::TestFn(_)));
                let fn_id = scopes.iter().rev().find_map(|s| match s.kind {
                    ScopeKind::Fn(id) | ScopeKind::TestFn(id) => Some(id),
                    _ => None,
                });
                for idx in i..=k.min(n - 1) {
                    if !matches!(
                        model.tokens[idx].kind,
                        TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                    ) {
                        model.sig.push(idx);
                        model.ctx.push(TokCtx {
                            module: cur_module,
                            fn_id,
                            in_test: in_test_now,
                        });
                    }
                }
                i = k + 1;
                continue;
            }
        }

        // Item starts.
        match text {
            "mod" => {
                // `mod NAME { … }` or `mod NAME;`
                if let Some(name_tok) = next_sig(&model.tokens, src, i + 1) {
                    let name = model.tokens[name_tok].text(src).to_string();
                    pending = Pending::Mod(name, attr_test);
                    attr_test = false;
                }
            }
            "fn" => {
                if let Some(name_tok) = next_sig(&model.tokens, src, i + 1) {
                    let nt = model.tokens[name_tok];
                    if nt.kind == TokenKind::Ident || nt.kind == TokenKind::RawIdent {
                        pending = Pending::Fn(nt.text(src).to_string(), attr_test);
                        attr_test = false;
                    }
                }
            }
            "{" => {
                let kind = match std::mem::replace(&mut pending, Pending::None) {
                    Pending::Mod(name, test) => {
                        mod_segments.push(name);
                        let mut full = base_mod.clone();
                        full.extend(mod_segments.iter().cloned());
                        cur_module = intern_module(&mut model.modules, full);
                        if test {
                            ScopeKind::TestModule
                        } else {
                            ScopeKind::Module
                        }
                    }
                    Pending::Fn(name, test) => {
                        let id = model.fns.len() as u32;
                        model.fns.push(FnScope {
                            name,
                            body_start: tok.start,
                            body_end: src.len(),
                        });
                        open_fn_brace.push((id, tok.start));
                        if test {
                            ScopeKind::TestFn(id)
                        } else {
                            ScopeKind::Fn(id)
                        }
                    }
                    Pending::None => ScopeKind::Block,
                };
                scopes.push(Scope {
                    kind,
                    mod_depth: mod_segments.len(),
                });
            }
            "}" => {
                if let Some(s) = scopes.pop() {
                    if matches!(s.kind, ScopeKind::Module | ScopeKind::TestModule) {
                        mod_segments.truncate(s.mod_depth.saturating_sub(1));
                        let mut full = base_mod.clone();
                        full.extend(mod_segments.iter().cloned());
                        cur_module = intern_module(&mut model.modules, full);
                    }
                    if let ScopeKind::Fn(id) | ScopeKind::TestFn(id) = s.kind {
                        model.fns[id as usize].body_end = tok.end;
                        open_fn_brace.retain(|&(fid, _)| fid != id);
                    }
                }
            }
            ";" => {
                // `mod name;`, `use …;`, fn declarations without bodies.
                pending = Pending::None;
                attr_test = false;
            }
            _ => {}
        }

        let in_test_now = all_test
            || scopes
                .iter()
                .any(|s| matches!(s.kind, ScopeKind::TestModule | ScopeKind::TestFn(_)));
        let fn_id = scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn(id) | ScopeKind::TestFn(id) => Some(id),
            _ => None,
        });
        model.sig.push(i);
        model.ctx.push(TokCtx {
            module: cur_module,
            fn_id,
            in_test: in_test_now,
        });
        i += 1;
    }

    collect_pragmas(&mut model);
    collect_hash_bindings(&mut model);
    model
}

fn intern_module(modules: &mut Vec<Vec<String>>, full: Vec<String>) -> u32 {
    if let Some(pos) = modules.iter().position(|m| *m == full) {
        pos as u32
    } else {
        modules.push(full);
        (modules.len() - 1) as u32
    }
}

fn next_sig(tokens: &[Token], _src: &str, from: usize) -> Option<usize> {
    (from..tokens.len()).find(|&j| {
        !matches!(
            tokens[j].kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    })
}

/// Strip comment markers and leading whitespace: a comment is a pragma
/// only when the directive *leads* it (`// asqp::allow(…): …`), so prose
/// that merely mentions the syntax (docs, help strings) is never parsed.
fn comment_directive(text: &str) -> &str {
    text.trim_start_matches(['/', '*', '!']).trim_start()
}

/// Scan comments for `asqp::allow(rule): reason` pragmas and
/// `asqp::in-order-merge: reason` markers.
fn collect_pragmas(model: &mut FileModel<'_>) {
    let src = model.src;
    for tok in model.tokens.iter() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = comment_directive(tok.text(src));
        let (line, col) = line_col(src, tok.start);
        if let Some(rest) = text.strip_prefix("asqp::allow") {
            match parse_allow(rest) {
                Ok(rule) => {
                    // Trailing comment (code before it on the same line)
                    // targets its own line; a standalone pragma targets the
                    // next line holding a significant token.
                    let own_line_has_code = model.sig.iter().any(|&s| {
                        let t = model.tokens[s];
                        t.start < tok.start && line_col(src, t.start).0 == line
                    });
                    let target_line = if own_line_has_code {
                        line
                    } else {
                        model
                            .sig
                            .iter()
                            .map(|&s| model.tokens[s])
                            .find(|t| t.start > tok.end)
                            .map(|t| line_col(src, t.start).0)
                            .unwrap_or(line)
                    };
                    model.allows.push(Allow {
                        rule,
                        line,
                        col,
                        target_line,
                        used: std::cell::Cell::new(false),
                    });
                }
                Err(why) => model.bad_pragmas.push(BadPragma { line, col, why }),
            }
        } else if let Some(rest) = text.strip_prefix("asqp::in-order-merge") {
            let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
            if reason.is_empty() {
                model.bad_pragmas.push(BadPragma {
                    line,
                    col,
                    why: "in-order-merge marker needs a reason: \
                          `// asqp::in-order-merge: <why the merge is ordered>`"
                        .to_string(),
                });
            } else {
                let fn_id = model
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.body_start <= tok.start && tok.end <= f.body_end)
                    .max_by_key(|(_, f)| f.body_start)
                    .map(|(i, _)| i as u32);
                model.markers.push(Marker { fn_id, line });
            }
        }
    }
}

/// Parse the tail of an allow pragma: `(rule): reason`.
fn parse_allow(rest: &str) -> Result<String, String> {
    let rest = rest.trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.split_once(')'))
        .ok_or_else(|| {
            "malformed allow pragma: expected `asqp::allow(rule_id): reason`".to_string()
        })?;
    let (rule, after) = inner;
    let rule = rule.trim();
    if rule.is_empty() {
        return Err("allow pragma has an empty rule id".to_string());
    }
    let reason = after.trim_start().strip_prefix(':').map(str::trim);
    match reason {
        Some(r) if !r.is_empty() => Ok(rule.to_string()),
        _ => Err(format!(
            "allow pragma for `{rule}` needs a written justification: \
             `// asqp::allow({rule}): <reason>`"
        )),
    }
}

/// Record identifiers declared with `HashMap`/`HashSet` types: annotated
/// bindings and fields (`name: HashMap<…>`) and inferred let bindings
/// whose initialiser mentions the type (`let m = HashMap::new()`,
/// `.collect::<HashSet<_>>()`).
fn collect_hash_bindings(model: &mut FileModel<'_>) {
    let sig_texts: Vec<&str> = (0..model.sig.len()).map(|i| model.sig_text(i)).collect();
    let is_hash = |t: &str| t == "HashMap" || t == "HashSet";
    let n = sig_texts.len();
    for i in 0..n {
        // `NAME : … HashMap …` up to a delimiter that ends the type.
        if sig_texts[i] == ":"
            && i > 0
            && model.sig_kind(i - 1) == TokenKind::Ident
            && (i < 2 || sig_texts[i - 2] != ":")
        {
            let name = sig_texts[i - 1];
            if !name
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
            {
                continue; // type ascriptions on paths, struct names, etc.
            }
            let mut depth = 0i32;
            for &t in &sig_texts[i + 1..] {
                match t {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "," | ";" | "=" | "{" if depth == 0 => break,
                    t if is_hash(t) => {
                        model.hash_bindings.insert(name.to_string());
                        break;
                    }
                    _ => {}
                }
            }
        }
        // `let [mut] NAME = … HashMap/HashSet … ;`
        if sig_texts[i] == "let" {
            let mut j = i + 1;
            if j < n && sig_texts[j] == "mut" {
                j += 1;
            }
            if j < n && model.sig_kind(j) == TokenKind::Ident {
                let name = sig_texts[j].to_string();
                if j + 1 < n && sig_texts[j + 1] == "=" {
                    for &t in &sig_texts[j + 2..] {
                        if t == ";" {
                            break;
                        }
                        if is_hash(t) {
                            model.hash_bindings.insert(name);
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_module_paths() {
        assert_eq!(
            file_module("crates/db/src/exec/vector.rs").unwrap(),
            vec!["asqp_db", "exec", "vector"]
        );
        assert_eq!(
            file_module("crates/core/src/lib.rs").unwrap(),
            vec!["asqp_core"]
        );
        assert_eq!(file_module("src/lib.rs").unwrap(), vec!["asqp"]);
        assert_eq!(
            file_module("crates/serve/src/bin/chaos_run.rs").unwrap(),
            vec!["asqp_serve", "bin", "chaos_run"]
        );
        assert!(file_module("crates/db/tests/sql_roundtrip.rs").is_none());
        assert!(file_module("crates/nn/examples/matmul_micro.rs").is_none());
    }

    #[test]
    fn module_prefix_matching() {
        let m: Vec<String> = vec!["asqp_db".into(), "exec".into(), "vector".into()];
        assert!(module_matches(&m, "asqp_db"));
        assert!(module_matches(&m, "asqp_db::exec"));
        assert!(module_matches(&m, "asqp_db::exec::vector"));
        assert!(!module_matches(&m, "asqp_db::exec::vector::deeper"));
        assert!(!module_matches(&m, "asqp_rl"));
    }

    #[test]
    fn cfg_test_module_marks_tokens() {
        let src = "fn live() { x(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y(); }\n}\n";
        let m = build_model("crates/db/src/lib.rs", src);
        let x = (0..m.sig.len()).find(|&i| m.sig_text(i) == "x").unwrap();
        let y = (0..m.sig.len()).find(|&i| m.sig_text(i) == "y").unwrap();
        assert!(!m.ctx[x].in_test);
        assert!(m.ctx[y].in_test);
    }

    #[test]
    fn test_attr_on_fn_marks_body() {
        let src = "#[test]\nfn check() { z(); }\nfn live() { w(); }\n";
        let m = build_model("crates/db/src/lib.rs", src);
        let z = (0..m.sig.len()).find(|&i| m.sig_text(i) == "z").unwrap();
        let w = (0..m.sig.len()).find(|&i| m.sig_text(i) == "w").unwrap();
        assert!(m.ctx[z].in_test);
        assert!(!m.ctx[w].in_test);
    }

    #[test]
    fn inline_modules_extend_the_path() {
        let src = "mod inner { fn f() { g(); } }\nfn top() {}\n";
        let m = build_model("crates/rl/src/lib.rs", src);
        let g = (0..m.sig.len()).find(|&i| m.sig_text(i) == "g").unwrap();
        assert_eq!(
            m.module_of(g),
            &["asqp_rl".to_string(), "inner".to_string()][..]
        );
        let top = (0..m.sig.len()).find(|&i| m.sig_text(i) == "top").unwrap();
        assert_eq!(m.module_of(top), &["asqp_rl".to_string()][..]);
    }

    #[test]
    fn allow_pragma_parses_and_targets_next_line() {
        let src = "fn f() {\n    // asqp::allow(nondet): timing is telemetry-only\n    now();\n}\n";
        let m = build_model("crates/rl/src/lib.rs", src);
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].rule, "nondet");
        assert_eq!(m.allows[0].target_line, 3);
        assert!(m.bad_pragmas.is_empty());
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "fn f() {\n    now(); // asqp::allow(nondet): bench-only timing\n}\n";
        let m = build_model("crates/rl/src/lib.rs", src);
        assert_eq!(m.allows[0].target_line, 2);
    }

    #[test]
    fn reasonless_pragmas_are_bad() {
        let src = "// asqp::allow(nondet)\nfn f() {}\n// asqp::in-order-merge\nfn g() {}\n";
        let m = build_model("crates/rl/src/lib.rs", src);
        assert_eq!(m.bad_pragmas.len(), 2, "{:?}", m.bad_pragmas);
        assert!(m.allows.is_empty());
        assert!(m.markers.is_empty());
    }

    #[test]
    fn markers_attach_to_their_function() {
        let src = "fn merge() {\n    // asqp::in-order-merge: joined in spawn order\n    s();\n}\nfn other() { t(); }\n";
        let m = build_model("crates/rl/src/lib.rs", src);
        assert_eq!(m.markers.len(), 1);
        let s = (0..m.sig.len()).find(|&i| m.sig_text(i) == "s").unwrap();
        let t = (0..m.sig.len()).find(|&i| m.sig_text(i) == "t").unwrap();
        assert!(m.marker_in_same_fn(s));
        assert!(!m.marker_in_same_fn(t));
    }

    #[test]
    fn hash_bindings_from_annotations_and_inference() {
        let src = "struct S { cache: HashMap<String, u64> }\n\
                   fn f(seen: HashSet<u32>) {\n\
                       let mut groups = HashMap::new();\n\
                       let ok: Vec<u32> = vec![];\n\
                       let direct: HashMap<u8, u8> = HashMap::new();\n\
                   }\n";
        let m = build_model("crates/db/src/lib.rs", src);
        for name in ["cache", "seen", "groups", "direct"] {
            assert!(
                m.hash_bindings.contains(name),
                "missing {name}: {:?}",
                m.hash_bindings
            );
        }
        assert!(!m.hash_bindings.contains("ok"));
    }
}
