//! A hand-rolled, lossless Rust lexer.
//!
//! Every byte of the input lands in exactly one token span, in order —
//! concatenating `&src[tok.start..tok.end]` over the token stream
//! reconstructs the source byte-for-byte (the corpus test enforces this
//! over every workspace file). The lexer handles the parts of Rust's
//! lexical grammar that matter for span fidelity: raw strings with
//! arbitrary `#` fences, nested block comments, byte/char literals,
//! lifetimes vs. char literals (`'a` vs `'a'`), raw identifiers
//! (`r#match`), numeric literals with suffixes, and attributes (which
//! are plain punctuation here; grouping happens in the engine).
//!
//! It does **not** build an AST — the rule engine works on the token
//! stream plus a scope tracker, which is all the invariants need.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// `// …` (including doc `///` and `//!`), without the newline.
    LineComment,
    /// `/* … */`, nesting respected.
    BlockComment,
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, …).
    Ident,
    /// Raw identifier, e.g. `r#match`.
    RawIdent,
    /// `'a`, `'static`, `'_` — a quote followed by an identifier with no
    /// closing quote.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'`.
    CharLit,
    /// `"…"`, `b"…"` with escapes.
    StrLit,
    /// `r"…"`, `r#"…"#`, `br#"…"#` with any fence depth.
    RawStrLit,
    /// Integer or float literal, including suffix (`1_000u64`, `1e-3f32`).
    NumLit,
    /// A single punctuation byte (`{`, `.`, `#`, …). Multi-byte operators
    /// are emitted as consecutive single-byte tokens; losslessness and the
    /// rule patterns don't need them joined.
    Punct,
    /// Byte that fits no class (kept so the stream stays lossless).
    Unknown,
}

/// One token: kind plus its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// 1-based line/column of a byte offset (column counts bytes, which matches
/// how rustc reports columns for ASCII source).
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let mut line = 1usize;
    let mut col = 1usize;
    for (i, b) in src.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenise `src` losslessly. Never fails: bytes that fit no lexical class
/// come back as [`TokenKind::Unknown`] so the stream always reconstructs
/// the input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token {
                kind,
                start,
                end: self.pos,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Current char (the lexer is byte-driven but must step over multi-byte
    /// UTF-8 inside identifiers, strings and comments).
    fn cur_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump_char(&mut self) {
        if let Some(c) = self.cur_char() {
            self.pos += c.len_utf8();
        } else {
            self.pos += 1;
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = match self.cur_char() {
            Some(c) => c,
            None => {
                self.pos += 1;
                return TokenKind::Unknown;
            }
        };

        if c.is_whitespace() {
            while self.cur_char().is_some_and(char::is_whitespace) {
                self.bump_char();
            }
            return TokenKind::Whitespace;
        }

        if c == '/' {
            match self.peek(1) {
                Some(b'/') => return self.line_comment(),
                Some(b'*') => return self.block_comment(),
                _ => {
                    self.pos += 1;
                    return TokenKind::Punct;
                }
            }
        }

        // r"…" / r#"…"# / r#ident — raw string vs. raw identifier.
        if c == 'r' {
            if let Some(kind) = self.try_raw(0) {
                return kind;
            }
        }
        // b'…' / b"…" / br"…" / br#"…"#.
        if c == 'b' {
            match self.peek(1) {
                Some(b'\'') => {
                    self.pos += 1;
                    return self.char_or_lifetime(true);
                }
                Some(b'"') => {
                    self.pos += 1;
                    return self.quoted_string();
                }
                Some(b'r') => {
                    if let Some(kind) = self.try_raw(1) {
                        return kind;
                    }
                }
                _ => {}
            }
        }

        if is_ident_start(c) {
            while self.cur_char().is_some_and(is_ident_continue) {
                self.bump_char();
            }
            return TokenKind::Ident;
        }

        if c.is_ascii_digit() {
            return self.number();
        }

        if c == '\'' {
            return self.char_or_lifetime(false);
        }
        if c == '"' {
            return self.quoted_string();
        }

        if c.is_ascii_punctuation() {
            self.pos += 1;
            return TokenKind::Punct;
        }

        self.bump_char();
        TokenKind::Unknown
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump_char();
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        // self.pos is at `/*`. Block comments nest.
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => self.bump_char(),
                (None, _) => break, // unterminated: absorb to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// Try to lex a raw string (`r"…"`, `r###"…"###`) or raw identifier
    /// (`r#match`) beginning at `pos + offset` (offset skips a leading `b`).
    /// Returns `None` when the `r` is just an ordinary identifier start.
    fn try_raw(&mut self, offset: usize) -> Option<TokenKind> {
        let mut i = self.pos + offset + 1; // past the `r`
        let mut hashes = 0usize;
        while self.bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        match self.bytes.get(i) {
            Some(b'"') => {
                // Raw string: scan for `"` followed by `hashes` hashes.
                self.pos = i + 1;
                loop {
                    match self.peek(0) {
                        None => break,
                        Some(b'"') => {
                            let fence = &self.bytes[self.pos + 1..];
                            if fence.len() >= hashes && fence[..hashes].iter().all(|&b| b == b'#') {
                                self.pos += 1 + hashes;
                                break;
                            }
                            self.pos += 1;
                        }
                        Some(_) => self.bump_char(),
                    }
                }
                Some(TokenKind::RawStrLit)
            }
            Some(&b) if hashes == 1 && offset == 0 && is_ident_start(b as char) => {
                // Raw identifier r#foo.
                self.pos = i;
                while self.cur_char().is_some_and(is_ident_continue) {
                    self.bump_char();
                }
                Some(TokenKind::RawIdent)
            }
            _ => None,
        }
    }

    /// At a `'`: decide lifetime vs. char literal. `'a` with no closing
    /// quote is a lifetime; `'a'`, `'\n'`, `'🦀'` are char literals. Byte
    /// chars (`b'x'`, entered with `byte = true`) are always literals.
    fn char_or_lifetime(&mut self, byte: bool) -> TokenKind {
        self.pos += 1; // the quote
        if !byte {
            if let Some(c) = self.cur_char() {
                if is_ident_start(c) && c != '\\' {
                    // Scan the identifier; a quote right after makes it a
                    // char literal like 'a', otherwise it's a lifetime.
                    let save = self.pos;
                    while self.cur_char().is_some_and(is_ident_continue) {
                        self.bump_char();
                    }
                    if self.peek(0) == Some(b'\'') {
                        self.pos += 1;
                        return TokenKind::CharLit;
                    }
                    let _ = save;
                    return TokenKind::Lifetime;
                }
            }
        }
        // Char literal body: one (possibly escaped) char then closing quote.
        match self.cur_char() {
            Some('\\') => {
                self.pos += 1;
                self.bump_char(); // the escaped char ('\n', '\'', '\\', '\u')
                if self.peek(0) == Some(b'{') {
                    // \u{…}
                    while let Some(b) = self.peek(0) {
                        self.pos += 1;
                        if b == b'}' {
                            break;
                        }
                    }
                }
            }
            Some(_) => self.bump_char(),
            None => return TokenKind::CharLit,
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
        TokenKind::CharLit
    }

    fn quoted_string(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.pos += 1;
                    self.bump_char();
                }
                b'"' => {
                    self.pos += 1;
                    return TokenKind::StrLit;
                }
                _ => self.bump_char(),
            }
        }
        TokenKind::StrLit // unterminated: absorbed to EOF
    }

    fn number(&mut self) -> TokenKind {
        // Integer part (with radix prefixes and `_` separators).
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|b| (b as char).is_ascii_hexdigit() || b == b'_')
            {
                self.pos += 1;
            }
        } else {
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_digit() || b == b'_')
            {
                self.pos += 1;
            }
            // Fraction: a dot followed by a digit (not `1.foo()` / `1..2`).
            if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.pos += 1;
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let mut j = 1;
                if matches!(self.peek(1), Some(b'+' | b'-')) {
                    j = 2;
                }
                if self.peek(j).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += j;
                    while self
                        .peek(0)
                        .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                    {
                        self.pos += 1;
                    }
                }
            }
        }
        // Type suffix (u64, f32, usize, …) — any trailing ident chars.
        while self.cur_char().is_some_and(is_ident_continue) {
            self.bump_char();
        }
        TokenKind::NumLit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<(TokenKind, String)> {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lex must be lossless");
        toks.iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_punct() {
        let toks = roundtrip("fn main() { let x = y; }");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "main".into()));
        assert!(toks.iter().any(|t| t.1 == ";"));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = roundtrip("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::CharLit).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let toks = roundtrip("&'static str; &'_ T");
        assert!(toks.iter().any(|t| t.1 == "'static"));
        assert!(toks.iter().any(|t| t.1 == "'_"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = roundtrip(r####"let s = r#"quote " inside"#; let t = r"plain";"####);
        let raws: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::RawStrLit)
            .collect();
        assert_eq!(raws.len(), 2);
        assert!(raws[0].1.contains("quote \" inside"));
    }

    #[test]
    fn raw_identifier() {
        let toks = roundtrip("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::RawIdent && t.1 == "r#match"));
    }

    #[test]
    fn byte_literals() {
        let toks = roundtrip(r##"let a = b'x'; let s = b"bytes"; let r = br#"raw"#;"##);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::CharLit && t.1 == "b'x'"));
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::StrLit && t.1 == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::RawStrLit && t.1 == "br#\"raw\"#"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = roundtrip("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.ends_with("still outer */"));
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let toks = roundtrip("1_000u64 + 0xFFu8 + 1.5e-3f32 + 2. .. 3");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::NumLit)
            .map(|t| t.1.as_str())
            .collect();
        // `2.` lexes as `2` `.` (dot not followed by digit) — same as the
        // range expression `2..3` — so the literal list is:
        assert_eq!(nums, vec!["1_000u64", "0xFFu8", "1.5e-3f32", "2", "3"]);
    }

    #[test]
    fn strings_with_escapes() {
        let toks = roundtrip(r#"let s = "a \" b \\"; f(s);"#);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::StrLit && t.1 == r#""a \" b \\""#));
    }

    #[test]
    fn unterminated_forms_absorb_to_eof() {
        // Must terminate and stay lossless even on bad input.
        roundtrip("let s = \"never closed");
        roundtrip("/* never closed");
        roundtrip("let c = '");
    }

    #[test]
    fn line_col_math() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }
}
