//! Diagnostics: rustc-style human rendering and a hand-rolled JSON mode
//! (the crate is dependency-free, so no serde here).

use std::fmt::Write as _;

/// One finding, anchored to a `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `nondet` or `panic-path`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    pub line: usize,
    pub col: usize,
    /// What was found, with the offending snippet.
    pub message: String,
    /// How to fix it (or how to suppress it with a justified pragma).
    pub help: String,
}

impl Finding {
    /// Sort key for deterministic output.
    fn key(&self) -> (&str, usize, usize, &str) {
        (&self.path, self.line, self.col, self.rule)
    }
}

/// The full result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    /// Pragmas that suppressed at least one finding (for the summary line).
    pub allows_used: usize,
}

impl Report {
    /// Canonical ordering: by path, line, column, rule.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| a.key().cmp(&b.key()));
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human mode: one rustc-style block per finding plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "error[{}]: {}", f.rule, f.message);
            let _ = writeln!(out, "  --> {}:{}:{}", f.path, f.line, f.col);
            let _ = writeln!(out, "  = help: {}", f.help);
        }
        let _ = writeln!(
            out,
            "asqp-analyze: {} finding(s), {} file(s) scanned, {} allow pragma(s) honoured",
            self.findings.len(),
            self.files_scanned,
            self.allows_used
        );
        out
    }

    /// Machine mode: a single JSON object. Keys are emitted in a fixed
    /// order so same-tree runs are byte-identical.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"allows_used\": {},", self.allows_used);
        let _ = writeln!(out, "  \"finding_count\": {},", self.findings.len());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"rule\": {}, ", json_str(f.rule));
            let _ = write!(out, "\"path\": {}, ", json_str(&f.path));
            let _ = write!(out, "\"line\": {}, ", f.line);
            let _ = write!(out, "\"col\": {}, ", f.col);
            let _ = write!(out, "\"message\": {}, ", json_str(&f.message));
            let _ = write!(out, "\"help\": {}", json_str(&f.help));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (control chars, quote, backslash).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: usize, rule: &'static str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            col: 1,
            message: format!("msg {rule}"),
            help: "fix \"it\"".to_string(),
        }
    }

    #[test]
    fn sort_is_by_path_line_col_rule() {
        let mut r = Report {
            findings: vec![
                finding("b.rs", 1, "nondet"),
                finding("a.rs", 9, "nondet"),
                finding("a.rs", 2, "panic-path"),
            ],
            files_scanned: 2,
            allows_used: 0,
        };
        r.sort();
        let order: Vec<_> = r
            .findings
            .iter()
            .map(|f| (f.path.clone(), f.line))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            files_scanned: 1,
            ..Report::default()
        };
        r.findings.push(finding("x.rs", 3, "iter-order"));
        let js = r.render_json();
        assert!(js.contains("\"finding_count\": 1"));
        assert!(js.contains("\\\"it\\\""), "quotes must be escaped: {js}");
    }

    #[test]
    fn human_render_is_rustc_style() {
        let mut r = Report::default();
        r.findings.push(finding("crates/x/src/lib.rs", 7, "nondet"));
        let h = r.render_human();
        assert!(h.contains("error[nondet]"));
        assert!(h.contains("--> crates/x/src/lib.rs:7:1"));
    }
}
