//! CLI for the workspace determinism & panic-safety gate.
//!
//! ```text
//! cargo run -p asqp-analyze --release -- --workspace            # human
//! cargo run -p asqp-analyze --release -- --workspace --json    \
//!     --out results/analyze_report.json                         # CI
//! ```
//!
//! Exit code 0 ⇔ zero unsuppressed findings and zero invalid/unused
//! pragmas.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            // `--workspace` is the default (and only) scan mode; accepted
            // so the canonical invocation reads explicitly.
            "--workspace" => {}
            "--json" => args.json = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                args.out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "asqp-analyze: determinism & panic-safety static analysis\n\n\
                     USAGE: asqp-analyze [--workspace] [--root DIR] [--json] [--out FILE]\n\n\
                     Rules: nondet, iter-order, unordered-reduce, panic-path, float-libm\n\
                     Suppress with `// asqp::allow(rule_id): reason` (unused allows error).\n\
                     Exit code 1 on any finding."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("asqp-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| asqp_analyze::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("asqp-analyze: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = match asqp_analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("asqp-analyze: io error: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = if args.json {
        report.render_json()
    } else {
        report.render_human()
    };
    if let Some(out) = &args.out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("asqp-analyze: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    print!("{rendered}");

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
