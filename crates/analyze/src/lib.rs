//! `asqp-analyze`: workspace-wide determinism & panic-safety static
//! analysis, wired into CI as a hard gate.
//!
//! The reproduction's headline guarantees — byte-identical Eq.-1 scores
//! across runs, byte-identical PPO parameters at any worker count,
//! replayable chaos transcripts — all rest on invariants that nothing
//! used to enforce: no wall-clock or ambient randomness in scored paths,
//! no `HashMap` iteration order leaking into rewards or reports, in-order
//! parallel reductions, no panics on the serve request path. This crate
//! makes those invariants machine-checked the way clippy makes style
//! machine-checked:
//!
//! * a hand-rolled, lossless Rust [lexer] (raw strings, nested
//!   block comments, lifetime vs. char-literal disambiguation);
//! * a path/scope-aware [engine] that knows each token's module
//!   path, enclosing function and `#[cfg(test)]` status;
//! * a tuned [rule set](rules) with rustc-style diagnostics, suppressible
//!   only via `// asqp::allow(rule_id): reason` pragmas that the tool
//!   itself validates (unused allows are errors).
//!
//! Run it as `cargo run -p asqp-analyze --release -- --workspace`
//! (human output) or with `--json` for the machine-readable report the
//! CI `analyze` job uploads.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

use diag::{Finding, Report};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Analyse one file's source under its workspace-relative path. Applies
/// pragma suppression and pragma validation; returns the surviving
/// findings plus how many allow pragmas were honoured.
pub fn analyze_source(rel_path: &str, src: &str) -> (Vec<Finding>, usize) {
    let model = engine::build_model(rel_path, src);
    let mut findings = rules::check_file(&model);

    // Apply allow pragmas: a finding on a pragma's target line with a
    // matching rule id is suppressed, and the pragma counts as used.
    findings.retain(|f| {
        !model.allows.iter().any(|a| {
            if a.rule == f.rule && a.target_line == f.line {
                a.used.set(true);
                true
            } else {
                false
            }
        })
    });

    // Validate the pragmas themselves.
    for bad in &model.bad_pragmas {
        findings.push(Finding {
            rule: "bad-pragma",
            path: rel_path.to_string(),
            line: bad.line,
            col: bad.col,
            message: bad.why.clone(),
            help: "pragmas are part of the audit trail: every suppression carries a rule id \
                   and a written justification"
                .to_string(),
        });
    }
    let mut used = 0usize;
    for a in &model.allows {
        if !rules::RULE_IDS.contains(&a.rule.as_str()) {
            findings.push(Finding {
                rule: "bad-pragma",
                path: rel_path.to_string(),
                line: a.line,
                col: a.col,
                message: format!("allow pragma names unknown rule `{}`", a.rule),
                help: format!("known rules: {}", rules::RULE_IDS.join(", ")),
            });
        } else if a.used.get() {
            used += 1;
        } else {
            findings.push(Finding {
                rule: "unused-allow",
                path: rel_path.to_string(),
                line: a.line,
                col: a.col,
                message: format!(
                    "`asqp::allow({})` suppresses nothing (targets line {})",
                    a.rule, a.target_line
                ),
                help: "stale allows hide future regressions — delete the pragma or move it \
                       next to the finding it justifies"
                    .to_string(),
            });
        }
    }

    (findings, used)
}

/// Every `.rs` file the workspace gate scans: `src/` and `crates/*/src/`
/// (test, bench and example trees are exercised by their own test suites
/// and are exempt from the invariants by design; `third_party/` holds
/// vendored stand-ins we don't own). Paths come back workspace-relative,
/// sorted, `/`-separated.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let p = entry?.path().join("src");
            if p.is_dir() {
                roots.push(p);
            }
        }
    }
    for r in roots {
        collect_rs(&r, &mut out)?;
    }
    let mut rel: Vec<String> = out
        .iter()
        .filter_map(|p| {
            p.strip_prefix(root).ok().map(|r| {
                r.components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/")
            })
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Run the full workspace gate from a workspace root.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for rel in workspace_files(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        let (findings, used) = analyze_source(&rel, &src);
        report.findings.extend(findings);
        report.allows_used += used;
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_pragma_suppresses_and_counts() {
        let src = "fn f() {\n\
                   // asqp::allow(nondet): timing is telemetry-gated, never scored\n\
                   let t = Instant::now();\n}\n";
        let (findings, used) = analyze_source("crates/core/src/metric.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn unused_allow_is_an_error() {
        let src = "// asqp::allow(nondet): nothing here needs it\nfn f() {}\n";
        let (findings, _) = analyze_source("crates/core/src/metric.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unused-allow");
    }

    #[test]
    fn unknown_rule_in_pragma_is_an_error() {
        let src = "// asqp::allow(no-such-rule): whatever\nfn f() {}\n";
        let (findings, _) = analyze_source("crates/core/src/metric.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "bad-pragma");
    }

    #[test]
    fn wrong_rule_id_does_not_suppress() {
        let src = "fn f() {\n\
                   // asqp::allow(iter-order): wrong rule for this finding\n\
                   let t = Instant::now();\n}\n";
        let (findings, _) = analyze_source("crates/core/src/metric.rs", src);
        // The nondet finding survives and the allow is reported unused.
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"nondet"), "{findings:?}");
        assert!(rules.contains(&"unused-allow"), "{findings:?}");
    }
}
