//! Shared utilities for dataset generation: scale presets, word pools and
//! skewed samplers.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;

/// Dataset scale presets. Paper-scale data (tens of millions of tuples) is
/// possible but the default experiment scale keeps the full pipeline —
/// training included — in CI-friendly territory while preserving the
/// full-DB ≫ approximation-set size ratio that drives the results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~2K tuples total — unit tests.
    Tiny,
    /// ~40K tuples total — integration tests and quick examples.
    Small,
    /// ~300K tuples total — the default experiment scale.
    Medium,
    /// Custom multiplier over `Tiny` (1 = Tiny, 20 ≈ Small, 150 ≈ Medium).
    Factor(u32),
}

impl Scale {
    /// Multiplier applied to base table sizes.
    pub fn factor(self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 20,
            Scale::Medium => 150,
            Scale::Factor(f) => f.max(1) as usize,
        }
    }
}

thread_local! {
    /// Cached cumulative Zipf weights keyed by (n, bits-of-s). Generators
    /// sample the same few (n, s) pairs millions of times, so inverse-CDF
    /// with a cached table beats per-sample rejection.
    static ZIPF_CDF: RefCell<HashMap<(usize, u64), Vec<f64>>> = RefCell::new(HashMap::new());
}

/// Sample an index in `[0, n)` with Zipfian skew `s` (popular head values).
/// Weight of rank `k` (1-based) is `1 / k^s`.
pub fn zipf_index(n: usize, s: f64, rng: &mut impl Rng) -> usize {
    if n <= 1 {
        return 0;
    }
    let u: f64 = rng.random_range(0.0..1.0);
    ZIPF_CDF.with(|cache| {
        let mut cache = cache.borrow_mut();
        let cdf = cache.entry((n, s.to_bits())).or_insert_with(|| {
            let mut acc = 0.0;
            let mut v: Vec<f64> = (1..=n)
                .map(|k| {
                    acc += (k as f64).powf(-s);
                    acc
                })
                .collect();
            let total = acc;
            v.iter_mut().for_each(|x| *x /= total);
            v
        });
        // Binary search for the first cumulative weight exceeding u.
        match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => (i + 1).min(n - 1),
            Err(i) => i.min(n - 1),
        }
    })
}

/// Clamped normal sample (Box–Muller; avoids rand_distr's f32/f64 generics
/// churn at call sites).
pub fn normal(mean: f64, std: f64, rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic pseudo-word generator: composes syllables, so generated
/// names tokenize into a realistic, reusable vocabulary.
pub fn pseudo_word(rng: &mut impl Rng) -> String {
    const ONSETS: &[&str] = &[
        "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "l", "m", "n", "p", "pr",
        "r", "s", "st", "t", "tr", "v", "w", "z",
    ];
    const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ou"];
    const CODAS: &[&str] = &["", "n", "r", "s", "t", "l", "m", "x"];
    let syllables = rng.random_range(2..4);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.random_range(0..ONSETS.len())]);
        w.push_str(VOWELS[rng.random_range(0..VOWELS.len())]);
        w.push_str(CODAS[rng.random_range(0..CODAS.len())]);
    }
    w
}

/// A reusable pool of `n` pseudo-words, sampled Zipfian so some words are
/// much more popular than others (mirroring real title/name distributions).
#[derive(Debug, Clone)]
pub struct WordPool {
    words: Vec<String>,
    skew: f64,
}

impl WordPool {
    pub fn new(n: usize, skew: f64, rng: &mut impl Rng) -> Self {
        let words = (0..n).map(|_| pseudo_word(rng)).collect();
        WordPool { words, skew }
    }

    pub fn sample(&self, rng: &mut impl Rng) -> &str {
        &self.words[zipf_index(self.words.len(), self.skew, rng)]
    }

    /// A multi-word phrase (e.g. a title).
    pub fn phrase(&self, words: usize, rng: &mut impl Rng) -> String {
        (0..words)
            .map(|_| self.sample(rng).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }

    pub fn words(&self) -> &[String] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scale_factors_ordered() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Medium.factor());
        assert_eq!(Scale::Factor(0).factor(), 1);
        assert_eq!(Scale::Factor(7).factor(), 7);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..10000 {
            counts[zipf_index(100, 1.1, &mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 3,
            "head {} tail {}",
            counts[0],
            counts[50]
        );
        assert!(counts.iter().sum::<usize>() == 10000);
    }

    #[test]
    fn zipf_degenerate_n() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(zipf_index(1, 1.2, &mut rng), 0);
        assert_eq!(zipf_index(0, 1.2, &mut rng), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..20000).map(|_| normal(10.0, 2.0, &mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn word_pool_deterministic_and_reusable() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool = WordPool::new(50, 1.0, &mut rng);
        assert_eq!(pool.words().len(), 50);
        let mut rng2 = StdRng::seed_from_u64(4);
        let pool2 = WordPool::new(50, 1.0, &mut rng2);
        assert_eq!(pool.words(), pool2.words());
        let phrase = pool.phrase(3, &mut rng);
        assert_eq!(phrase.split(' ').count(), 3);
    }
}
