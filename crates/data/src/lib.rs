//! # asqp-data — synthetic datasets and workloads for the ASQP-RL evaluation
//!
//! Seeded, schema-faithful stand-ins for the three corpora the paper
//! evaluates on (DESIGN.md §2 documents the substitution):
//!
//! * [`imdb`] — IMDB-JOB-shaped movie data with Zipf-skewed joins and a
//!   JOB-style SPJ workload
//! * [`mas`] — Microsoft Academic Search-shaped researcher/publication data
//! * [`flights`] — IDEBench-style flight-delay data with both SPJ and
//!   **aggregate** workloads (for the §6.4 AQP comparison)
//!
//! All generators are deterministic in their seed and scale with
//! [`Scale`] from tiny unit-test sizes to the full experiment scale.

pub mod common;
pub mod flights;
pub mod imdb;
pub mod mas;

pub use common::{normal, pseudo_word, zipf_index, Scale, WordPool};
