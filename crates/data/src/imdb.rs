//! IMDB-JOB-shaped synthetic dataset and SPJ workload.
//!
//! Mirrors the join structure exercised by the Join Order Benchmark
//! (Leis et al., VLDB 2015) that the paper evaluates on: a fact table of
//! titles with satellite person / company tables linked through junction
//! tables, Zipf-skewed text values and a recency-skewed year distribution.

use crate::common::{normal, zipf_index, Scale, WordPool};
use asqp_db::{CmpOp, ColRef, Database, Expr, Query, Schema, Value, ValueType, Workload};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const KINDS: &[&str] = &["movie", "tv_series", "short", "video", "documentary"];
const COUNTRIES: &[&str] = &["us", "uk", "fr", "de", "jp", "in", "it", "ca"];
const ROLES: &[&str] = &["actor", "actress", "director", "producer", "writer"];
const GENDERS: &[&str] = &["m", "f"];

/// Generate the IMDB-shaped database. Deterministic in `seed`.
pub fn generate(scale: Scale, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = scale.factor();
    let n_titles = 300 * f;
    let n_people = 200 * f;
    let n_companies = 20 + 2 * f;
    let n_cast = 900 * f;
    let n_movie_companies = 400 * f;

    let title_words = WordPool::new(400, 1.1, &mut rng);
    let name_words = WordPool::new(600, 1.05, &mut rng);

    let mut db = Database::new();

    // --- title -----------------------------------------------------------
    let title = db
        .create_table(
            "title",
            Schema::build(&[
                ("id", ValueType::Int),
                ("title", ValueType::Str),
                ("production_year", ValueType::Int),
                ("kind", ValueType::Str),
                ("rating", ValueType::Float),
            ]),
        )
        .expect("fresh database");
    for id in 0..n_titles {
        // Recency skew: most titles are recent.
        let year = 2025 - zipf_index(100, 1.2, &mut rng) as i64;
        let kind = KINDS[zipf_index(KINDS.len(), 1.3, &mut rng)];
        let rating = normal(6.5, 1.2, &mut rng).clamp(1.0, 10.0);
        title
            .push_row(&[
                Value::Int(id as i64),
                Value::Str(title_words.phrase(rng.random_range(1..4), &mut rng)),
                Value::Int(year),
                Value::Str(kind.to_string()),
                Value::Float((rating * 10.0).round() / 10.0),
            ])
            .expect("row matches schema");
    }

    // --- person ----------------------------------------------------------
    let person = db
        .create_table(
            "person",
            Schema::build(&[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("gender", ValueType::Str),
            ]),
        )
        .expect("fresh database");
    for id in 0..n_people {
        person
            .push_row(&[
                Value::Int(id as i64),
                Value::Str(name_words.phrase(2, &mut rng)),
                Value::Str(GENDERS[rng.random_range(0..GENDERS.len())].to_string()),
            ])
            .expect("row matches schema");
    }

    // --- company ---------------------------------------------------------
    let company = db
        .create_table(
            "company",
            Schema::build(&[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("country", ValueType::Str),
            ]),
        )
        .expect("fresh database");
    for id in 0..n_companies {
        company
            .push_row(&[
                Value::Int(id as i64),
                Value::Str(name_words.phrase(1, &mut rng)),
                Value::Str(COUNTRIES[zipf_index(COUNTRIES.len(), 1.1, &mut rng)].to_string()),
            ])
            .expect("row matches schema");
    }

    // --- cast_info (skewed: popular titles/people get more rows) ----------
    let cast = db
        .create_table(
            "cast_info",
            Schema::build(&[
                ("movie_id", ValueType::Int),
                ("person_id", ValueType::Int),
                ("role", ValueType::Str),
            ]),
        )
        .expect("fresh database");
    for _ in 0..n_cast {
        cast.push_row(&[
            Value::Int(zipf_index(n_titles, 1.05, &mut rng) as i64),
            Value::Int(zipf_index(n_people, 1.05, &mut rng) as i64),
            Value::Str(ROLES[zipf_index(ROLES.len(), 1.2, &mut rng)].to_string()),
        ])
        .expect("row matches schema");
    }

    // --- movie_companies ---------------------------------------------------
    let mc = db
        .create_table(
            "movie_companies",
            Schema::build(&[("movie_id", ValueType::Int), ("company_id", ValueType::Int)]),
        )
        .expect("fresh database");
    for _ in 0..n_movie_companies {
        mc.push_row(&[
            Value::Int(zipf_index(n_titles, 1.05, &mut rng) as i64),
            Value::Int(zipf_index(n_companies, 1.2, &mut rng) as i64),
        ])
        .expect("row matches schema");
    }

    db
}

/// Generate `n` SPJ queries over the IMDB schema, JOB-style: year ranges,
/// kind/country/role/gender equality filters, LIKE on titles, 2- and 3-way
/// joins. Weights are Zipf-ish (a few queries dominate the workload).
pub fn workload(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1b9d);
    let title_like_words = ["a%", "b%", "s%", "%a", "%r%", "t%", "%s"];
    let mut queries = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);

    for i in 0..n {
        let template = i % 6;
        let q = match template {
            // T1: year-range scan over titles.
            0 => {
                let lo = rng.random_range(1930..2020);
                let hi = lo + rng.random_range(2..25);
                Query::builder()
                    .select_col("t", "title")
                    .select_col("t", "production_year")
                    .from_as("title", "t")
                    .filter(Expr::Between {
                        expr: Box::new(Expr::col("t", "production_year")),
                        low: Box::new(Expr::lit(lo)),
                        high: Box::new(Expr::lit(hi)),
                        negated: false,
                    })
                    .build()
            }
            // T2: kind + rating filter.
            1 => {
                let kind = KINDS[rng.random_range(0..KINDS.len())];
                let min_rating = rng.random_range(40..90) as f64 / 10.0;
                Query::builder()
                    .select_col("t", "title")
                    .select_col("t", "rating")
                    .from_as("title", "t")
                    .filter(Expr::and(
                        Expr::eq(Expr::col("t", "kind"), Expr::lit(kind)),
                        Expr::cmp(CmpOp::Ge, Expr::col("t", "rating"), Expr::lit(min_rating)),
                    ))
                    .build()
            }
            // T3: title ⋈ cast_info ⋈ person with gender + year filters.
            2 => {
                let gender = GENDERS[rng.random_range(0..GENDERS.len())];
                let year = rng.random_range(1950..2022);
                Query::builder()
                    .select_col("t", "title")
                    .select_col("p", "name")
                    .from_as("title", "t")
                    .from_as("cast_info", "c")
                    .from_as("person", "p")
                    .join_on("t", "id", "c", "movie_id")
                    .join_on("c", "person_id", "p", "id")
                    .filter(Expr::and(
                        Expr::eq(Expr::col("p", "gender"), Expr::lit(gender)),
                        Expr::cmp(
                            CmpOp::Gt,
                            Expr::col("t", "production_year"),
                            Expr::lit(year),
                        ),
                    ))
                    .build()
            }
            // T4: title ⋈ movie_companies ⋈ company with country filter.
            3 => {
                let country = COUNTRIES[rng.random_range(0..COUNTRIES.len())];
                Query::builder()
                    .select_col("t", "title")
                    .select_col("co", "name")
                    .from_as("title", "t")
                    .from_as("movie_companies", "mc")
                    .from_as("company", "co")
                    .join_on("t", "id", "mc", "movie_id")
                    .join_on("mc", "company_id", "co", "id")
                    .filter(Expr::eq(Expr::col("co", "country"), Expr::lit(country)))
                    .build()
            }
            // T5: LIKE pattern on titles.
            4 => {
                let pat = title_like_words[rng.random_range(0..title_like_words.len())];
                Query::builder()
                    .select_col("t", "title")
                    .from_as("title", "t")
                    .filter(Expr::Like {
                        expr: Box::new(Expr::col("t", "title")),
                        pattern: pat.to_string(),
                        negated: false,
                    })
                    .build()
            }
            // T6: role-filtered join.
            _ => {
                let role = ROLES[rng.random_range(0..ROLES.len())];
                let year = rng.random_range(1975..2022);
                Query::builder()
                    .select_col("t", "title")
                    .select_col("c", "role")
                    .from_as("title", "t")
                    .from_as("cast_info", "c")
                    .join_on("t", "id", "c", "movie_id")
                    .filter(Expr::and(
                        Expr::eq(Expr::col("c", "role"), Expr::lit(role)),
                        Expr::cmp(
                            CmpOp::Ge,
                            Expr::col("t", "production_year"),
                            Expr::lit(year),
                        ),
                    ))
                    .build()
            }
        };
        queries.push(q);
        weights.push(1.0 / (1.0 + zipf_index(10, 1.1, &mut rng) as f64));
    }
    let _ = ColRef::bare("unused"); // keep import rooted if templates change
    Workload::weighted(queries, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_db_has_expected_shape() {
        let db = generate(Scale::Tiny, 1);
        assert_eq!(db.table("title").unwrap().row_count(), 300);
        assert_eq!(db.table("person").unwrap().row_count(), 200);
        assert_eq!(db.table("cast_info").unwrap().row_count(), 900);
        assert!(db.has_table("company") && db.has_table("movie_companies"));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(Scale::Tiny, 9);
        let b = generate(Scale::Tiny, 9);
        assert_eq!(
            a.table("title").unwrap().row(7),
            b.table("title").unwrap().row(7)
        );
    }

    #[test]
    fn workload_queries_execute_with_results() {
        let db = generate(Scale::Tiny, 1);
        let w = workload(24, 1);
        assert_eq!(w.len(), 24);
        let mut nonempty = 0;
        for (q, _) in w.iter() {
            let r = db.execute(q).expect("query must execute");
            if !r.rows.is_empty() {
                nonempty += 1;
            }
        }
        assert!(
            nonempty >= 18,
            "most workload queries should be non-empty: {nonempty}/24"
        );
    }

    #[test]
    fn weights_normalised() {
        let w = workload(10, 3);
        assert!((w.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn foreign_keys_in_range() {
        let db = generate(Scale::Tiny, 2);
        let r = db
            .sql(
                "SELECT COUNT(*) FROM cast_info c JOIN title t ON c.movie_id = t.id \
                 JOIN person p ON c.person_id = p.id",
            )
            .unwrap();
        // Every cast row joins (ids generated within range).
        assert_eq!(r.rows[0][0], Value::Int(900));
    }
}
