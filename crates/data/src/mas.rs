//! MAS-shaped synthetic dataset (Microsoft Academic Search: researchers and
//! publications) and its SPJ workload.

use crate::common::{zipf_index, Scale, WordPool};
use asqp_db::{CmpOp, Database, Expr, Query, Schema, Value, ValueType, Workload};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const FIELDS: &[&str] = &[
    "databases",
    "machine_learning",
    "systems",
    "theory",
    "hci",
    "security",
    "vision",
];

/// Generate the MAS-shaped database. Deterministic in `seed`.
pub fn generate(scale: Scale, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa5);
    let f = scale.factor();
    let n_authors = 150 * f;
    let n_venues = 15 + f;
    let n_pubs = 350 * f;
    let n_writes = 700 * f;

    let names = WordPool::new(500, 1.05, &mut rng);
    let title_words = WordPool::new(400, 1.1, &mut rng);
    let affil_words = WordPool::new(60, 1.2, &mut rng);

    let mut db = Database::new();

    let author = db
        .create_table(
            "author",
            Schema::build(&[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("affiliation", ValueType::Str),
            ]),
        )
        .expect("fresh database");
    for id in 0..n_authors {
        author
            .push_row(&[
                Value::Int(id as i64),
                Value::Str(names.phrase(2, &mut rng)),
                Value::Str(format!("{} university", affil_words.sample(&mut rng))),
            ])
            .expect("row matches schema");
    }

    let venue = db
        .create_table(
            "venue",
            Schema::build(&[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("field", ValueType::Str),
            ]),
        )
        .expect("fresh database");
    for id in 0..n_venues {
        venue
            .push_row(&[
                Value::Int(id as i64),
                Value::Str(names.phrase(1, &mut rng).to_uppercase()),
                Value::Str(FIELDS[zipf_index(FIELDS.len(), 1.1, &mut rng)].to_string()),
            ])
            .expect("row matches schema");
    }

    let publication = db
        .create_table(
            "publication",
            Schema::build(&[
                ("id", ValueType::Int),
                ("title", ValueType::Str),
                ("year", ValueType::Int),
                ("venue_id", ValueType::Int),
                ("citations", ValueType::Int),
            ]),
        )
        .expect("fresh database");
    for id in 0..n_pubs {
        let year = 2024 - zipf_index(35, 1.1, &mut rng) as i64;
        // Citation counts are famously heavy-tailed.
        let citations = (zipf_index(5000, 1.4, &mut rng)) as i64;
        publication
            .push_row(&[
                Value::Int(id as i64),
                Value::Str(title_words.phrase(rng.random_range(3..7), &mut rng)),
                Value::Int(year),
                Value::Int(zipf_index(n_venues, 1.15, &mut rng) as i64),
                Value::Int(citations),
            ])
            .expect("row matches schema");
    }

    let writes = db
        .create_table(
            "writes",
            Schema::build(&[("author_id", ValueType::Int), ("pub_id", ValueType::Int)]),
        )
        .expect("fresh database");
    for _ in 0..n_writes {
        writes
            .push_row(&[
                Value::Int(zipf_index(n_authors, 1.1, &mut rng) as i64),
                Value::Int(zipf_index(n_pubs, 1.05, &mut rng) as i64),
            ])
            .expect("row matches schema");
    }

    db
}

/// Generate `n` SPJ queries over the MAS schema (LearnShapley-style query
/// log: publications by year/venue/field, author–publication joins,
/// citation thresholds).
pub fn workload(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77aa);
    let mut queries = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    for i in 0..n {
        let q = match i % 5 {
            // Publications in a year range.
            0 => {
                let lo = rng.random_range(1995..2020);
                let hi = lo + rng.random_range(1..8);
                Query::builder()
                    .select_col("p", "title")
                    .select_col("p", "year")
                    .from_as("publication", "p")
                    .filter(Expr::Between {
                        expr: Box::new(Expr::col("p", "year")),
                        low: Box::new(Expr::lit(lo)),
                        high: Box::new(Expr::lit(hi)),
                        negated: false,
                    })
                    .build()
            }
            // Highly-cited publications.
            1 => {
                let min_c = rng.random_range(50..800);
                Query::builder()
                    .select_col("p", "title")
                    .select_col("p", "citations")
                    .from_as("publication", "p")
                    .filter(Expr::cmp(
                        CmpOp::Ge,
                        Expr::col("p", "citations"),
                        Expr::lit(min_c),
                    ))
                    .build()
            }
            // Publications in a field (join venue).
            2 => {
                let field = FIELDS[zipf_index(FIELDS.len(), 1.1, &mut rng)];
                Query::builder()
                    .select_col("p", "title")
                    .select_col("v", "name")
                    .from_as("publication", "p")
                    .from_as("venue", "v")
                    .join_on("p", "venue_id", "v", "id")
                    .filter(Expr::eq(Expr::col("v", "field"), Expr::lit(field)))
                    .build()
            }
            // Author names for recent publications (3-way join).
            3 => {
                let year = rng.random_range(2010..2022);
                Query::builder()
                    .select_col("a", "name")
                    .select_col("p", "title")
                    .from_as("author", "a")
                    .from_as("writes", "w")
                    .from_as("publication", "p")
                    .join_on("a", "id", "w", "author_id")
                    .join_on("w", "pub_id", "p", "id")
                    .filter(Expr::cmp(
                        CmpOp::Ge,
                        Expr::col("p", "year"),
                        Expr::lit(year),
                    ))
                    .build()
            }
            // Authors by affiliation pattern.
            _ => {
                let letter = (b'a' + rng.random_range(0..6u8)) as char;
                Query::builder()
                    .select_col("a", "name")
                    .select_col("a", "affiliation")
                    .from_as("author", "a")
                    .filter(Expr::Like {
                        expr: Box::new(Expr::col("a", "affiliation")),
                        pattern: format!("{letter}%"),
                        negated: false,
                    })
                    .build()
            }
        };
        queries.push(q);
        weights.push(1.0 / (1.0 + zipf_index(8, 1.1, &mut rng) as f64));
    }
    Workload::weighted(queries, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let db = generate(Scale::Tiny, 3);
        assert_eq!(db.table("author").unwrap().row_count(), 150);
        assert_eq!(db.table("publication").unwrap().row_count(), 350);
        assert_eq!(db.table("writes").unwrap().row_count(), 700);
        let db2 = generate(Scale::Tiny, 3);
        assert_eq!(
            db.table("publication").unwrap().row(5),
            db2.table("publication").unwrap().row(5)
        );
    }

    #[test]
    fn workload_executes() {
        let db = generate(Scale::Tiny, 3);
        let w = workload(20, 3);
        let mut nonempty = 0;
        for (q, _) in w.iter() {
            if !db.execute(q).unwrap().rows.is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 14, "nonempty = {nonempty}");
    }

    #[test]
    fn joins_resolve() {
        let db = generate(Scale::Tiny, 3);
        let r = db
            .sql("SELECT COUNT(*) FROM writes w JOIN author a ON w.author_id = a.id")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(700));
    }
}
