//! FLIGHTS-shaped synthetic dataset (US flight delays, IDEBench-style) plus
//! both SPJ and **aggregate** workloads — the aggregate workload drives the
//! paper's §6.4 AQP comparison (Fig. 12).

use crate::common::{normal, zipf_index, Scale};
use asqp_db::{AggFunc, CmpOp, ColRef, Database, Expr, Query, Schema, Value, ValueType, Workload};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

pub const CARRIERS: &[&str] = &["AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9"];
pub const AIRPORTS: &[&str] = &[
    "ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "MIA", "BOS", "PHX", "LAS",
];

/// Generate the FLIGHTS database. Deterministic in `seed`.
pub fn generate(scale: Scale, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf11);
    let f = scale.factor();
    let n_flights = 1500 * f;

    let mut db = Database::new();

    let carriers = db
        .create_table(
            "carriers",
            Schema::build(&[("code", ValueType::Str), ("name", ValueType::Str)]),
        )
        .expect("fresh database");
    for c in CARRIERS {
        carriers
            .push_row(&[
                Value::Str(c.to_string()),
                Value::Str(format!("{c} airlines")),
            ])
            .expect("row matches schema");
    }

    let airports = db
        .create_table(
            "airports",
            Schema::build(&[
                ("code", ValueType::Str),
                ("city", ValueType::Str),
                ("state", ValueType::Str),
            ]),
        )
        .expect("fresh database");
    const STATES: &[&str] = &[
        "GA", "CA", "IL", "TX", "CO", "NY", "CA", "WA", "FL", "MA", "AZ", "NV",
    ];
    for (i, a) in AIRPORTS.iter().enumerate() {
        airports
            .push_row(&[
                Value::Str(a.to_string()),
                Value::Str(format!("{} city", a.to_lowercase())),
                Value::Str(STATES[i].to_string()),
            ])
            .expect("row matches schema");
    }

    let flights = db
        .create_table(
            "flights",
            Schema::build(&[
                ("id", ValueType::Int),
                ("carrier", ValueType::Str),
                ("origin", ValueType::Str),
                ("dest", ValueType::Str),
                ("month", ValueType::Int),
                ("day_of_week", ValueType::Int),
                ("dep_delay", ValueType::Float),
                ("arr_delay", ValueType::Float),
                ("distance", ValueType::Float),
            ]),
        )
        .expect("fresh database");
    for id in 0..n_flights {
        let carrier = CARRIERS[zipf_index(CARRIERS.len(), 1.1, &mut rng)];
        let oi = zipf_index(AIRPORTS.len(), 1.05, &mut rng);
        let mut di = zipf_index(AIRPORTS.len(), 1.05, &mut rng);
        if di == oi {
            di = (di + 1) % AIRPORTS.len();
        }
        let origin = AIRPORTS[oi];
        let dest = AIRPORTS[di];
        // Delay distribution: mostly early/on-time, heavy right tail.
        let base = normal(-2.0, 12.0, &mut rng);
        let dep_delay = if rng.random_range(0.0..1.0) < 0.12 {
            base + rng.random_range(30.0..240.0)
        } else {
            base
        };
        let arr_delay = dep_delay + normal(0.0, 8.0, &mut rng);
        let distance = rng.random_range(150.0..2800.0f64).round();
        flights
            .push_row(&[
                Value::Int(id as i64),
                Value::Str(carrier.to_string()),
                Value::Str(origin.to_string()),
                Value::Str(dest.to_string()),
                Value::Int(rng.random_range(1..13)),
                Value::Int(rng.random_range(1..8)),
                Value::Float((dep_delay * 10.0).round() / 10.0),
                Value::Float((arr_delay * 10.0).round() / 10.0),
                Value::Float(distance),
            ])
            .expect("row matches schema");
    }

    db
}

/// `n` SPJ queries over FLIGHTS (delay thresholds, carrier/airport filters,
/// joins to the dimension tables).
pub fn workload(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfe11);
    let mut queries = Vec::with_capacity(n);
    for i in 0..n {
        let q = match i % 4 {
            0 => {
                let min_delay = rng.random_range(15..120);
                let carrier = CARRIERS[zipf_index(CARRIERS.len(), 1.1, &mut rng)];
                Query::builder()
                    .select_col("f", "origin")
                    .select_col("f", "dest")
                    .select_col("f", "dep_delay")
                    .from_as("flights", "f")
                    .filter(Expr::and(
                        Expr::cmp(
                            CmpOp::Ge,
                            Expr::col("f", "dep_delay"),
                            Expr::lit(min_delay as f64),
                        ),
                        Expr::eq(Expr::col("f", "carrier"), Expr::lit(carrier)),
                    ))
                    .build()
            }
            1 => {
                let origin = AIRPORTS[zipf_index(AIRPORTS.len(), 1.05, &mut rng)];
                let month = rng.random_range(1..13);
                Query::builder()
                    .select_col("f", "carrier")
                    .select_col("f", "dest")
                    .select_col("f", "arr_delay")
                    .from_as("flights", "f")
                    .filter(Expr::and(
                        Expr::eq(Expr::col("f", "origin"), Expr::lit(origin)),
                        Expr::eq(Expr::col("f", "month"), Expr::lit(month)),
                    ))
                    .build()
            }
            2 => {
                let min_dist = rng.random_range(500..2000);
                Query::builder()
                    .select_col("f", "origin")
                    .select_col("f", "distance")
                    .select_col("c", "name")
                    .from_as("flights", "f")
                    .from_as("carriers", "c")
                    .join_on("f", "carrier", "c", "code")
                    .filter(Expr::cmp(
                        CmpOp::Ge,
                        Expr::col("f", "distance"),
                        Expr::lit(min_dist as f64),
                    ))
                    .build()
            }
            _ => {
                let dow = rng.random_range(1..8);
                let max_delay = rng.random_range(-5..10);
                Query::builder()
                    .select_col("f", "carrier")
                    .select_col("f", "origin")
                    .select_col("a", "state")
                    .from_as("flights", "f")
                    .from_as("airports", "a")
                    .join_on("f", "origin", "a", "code")
                    .filter(Expr::and(
                        Expr::eq(Expr::col("f", "day_of_week"), Expr::lit(dow)),
                        Expr::cmp(
                            CmpOp::Le,
                            Expr::col("f", "dep_delay"),
                            Expr::lit(max_delay as f64),
                        ),
                    ))
                    .build()
            }
        };
        queries.push(q);
    }
    Workload::uniform(queries)
}

/// `n` **aggregate** queries (IDEBench-style) across the six operator
/// classes of Fig. 12: {COUNT, SUM, AVG} × {global, GROUP BY}.
pub fn aggregate_workload(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa66);
    const GROUP_COLS: &[&str] = &["carrier", "origin", "month", "day_of_week"];
    const NUM_COLS: &[&str] = &["dep_delay", "arr_delay", "distance"];
    let mut queries = Vec::with_capacity(n);
    for i in 0..n {
        let func = match i % 3 {
            0 => AggFunc::Count,
            1 => AggFunc::Sum,
            _ => AggFunc::Avg,
        };
        let grouped = (i / 3) % 2 == 0;
        let arg = if func == AggFunc::Count {
            None
        } else {
            Some(ColRef::new(
                "f",
                NUM_COLS[rng.random_range(0..NUM_COLS.len())],
            ))
        };
        // Mild selection so aggregates differ from full-table constants.
        let pred = match rng.random_range(0..3) {
            0 => Expr::cmp(
                CmpOp::Ge,
                Expr::col("f", "distance"),
                Expr::lit(rng.random_range(200..1500) as f64),
            ),
            1 => Expr::eq(Expr::col("f", "month"), Expr::lit(rng.random_range(1..13))),
            _ => Expr::cmp(
                CmpOp::Ge,
                Expr::col("f", "dep_delay"),
                Expr::lit(rng.random_range(-5..40) as f64),
            ),
        };
        let mut b = Query::builder().from_as("flights", "f").filter(pred);
        if grouped {
            let g = GROUP_COLS[rng.random_range(0..GROUP_COLS.len())];
            b = b.select_col("f", g).group_by("f", g);
        }
        b = b.select_agg(func, arg);
        queries.push(b.build());
    }
    Workload::uniform(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let db = generate(Scale::Tiny, 1);
        assert_eq!(db.table("flights").unwrap().row_count(), 1500);
        assert_eq!(db.table("carriers").unwrap().row_count(), CARRIERS.len());
        assert_eq!(db.table("airports").unwrap().row_count(), AIRPORTS.len());
    }

    #[test]
    fn delays_have_heavy_tail() {
        let db = generate(Scale::Tiny, 1);
        let late = db
            .sql("SELECT COUNT(*) FROM flights f WHERE f.dep_delay > 60")
            .unwrap();
        let n = late.rows[0][0].as_i64().unwrap();
        assert!(n > 20 && n < 600, "tail count = {n}");
    }

    #[test]
    fn spj_workload_executes_nonempty() {
        let db = generate(Scale::Tiny, 1);
        let w = workload(16, 1);
        let mut nonempty = 0;
        for (q, _) in w.iter() {
            if !db.execute(q).unwrap().rows.is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 12, "nonempty = {nonempty}");
    }

    #[test]
    fn aggregate_workload_covers_all_classes() {
        let w = aggregate_workload(18, 1);
        let db = generate(Scale::Tiny, 1);
        let mut grouped = 0;
        let mut funcs = std::collections::HashSet::new();
        for (q, _) in w.iter() {
            assert!(q.is_aggregate());
            if !q.group_by.is_empty() {
                grouped += 1;
            }
            for s in &q.select {
                if let asqp_db::SelectItem::Aggregate(a) = s {
                    funcs.insert(format!("{}", a.func));
                }
            }
            db.execute(q).expect("aggregate executes");
        }
        assert_eq!(grouped, 9);
        assert_eq!(funcs.len(), 3);
    }

    #[test]
    fn origin_never_equals_dest() {
        let db = generate(Scale::Tiny, 5);
        let r = db
            .sql("SELECT COUNT(*) FROM flights f WHERE f.origin = f.dest")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
    }
}
