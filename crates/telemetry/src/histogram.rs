//! Fixed-bucket latency histogram.
//!
//! Bucket boundaries are fixed at powers of four microseconds — 1 µs, 4 µs,
//! …, ~4.3 s — so histograms from different runs, machines and recorders
//! are always mergeable and diffable bucket-by-bucket (the property the CI
//! regression gate relies on). Values at or below a boundary fall in that
//! boundary's bucket; everything above the last boundary lands in a final
//! overflow bucket.

use crate::report::HistogramReport;

/// Upper-inclusive bucket boundaries in nanoseconds: `1 µs · 4ⁿ`.
pub const HISTOGRAM_BOUNDS_NS: [u64; 12] = [
    1_000,         // 1 µs
    4_000,         // 4 µs
    16_000,        // 16 µs
    64_000,        // 64 µs
    256_000,       // 256 µs
    1_024_000,     // ~1 ms
    4_096_000,     // ~4 ms
    16_384_000,    // ~16 ms
    65_536_000,    // ~66 ms
    262_144_000,   // ~262 ms
    1_048_576_000, // ~1 s
    4_194_304_000, // ~4.2 s
];

/// Bucket count: one per boundary plus the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = HISTOGRAM_BOUNDS_NS.len() + 1;

/// Index of the bucket holding a value: the first boundary `>= ns`, or the
/// overflow bucket.
pub fn bucket_index(ns: u64) -> usize {
    HISTOGRAM_BOUNDS_NS.partition_point(|&bound| bound < ns)
}

/// A fixed-bucket latency histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimated quantile: the upper bound of the bucket containing the
    /// q-th observation, clamped to the exact observed [min, max] range.
    /// Exact for any distribution at bucket granularity.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let upper = HISTOGRAM_BOUNDS_NS.get(i).copied().unwrap_or(self.max_ns);
                return upper.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merge another histogram into this one (shared fixed buckets make
    /// this exact).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Snapshot for serialization.
    pub fn to_report(&self) -> HistogramReport {
        HistogramReport {
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            buckets: self.buckets.to_vec(),
            p50_ns: self.quantile_ns(0.50),
            p90_ns: self.quantile_ns(0.90),
            p99_ns: self.quantile_ns(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_powers_of_four() {
        for w in HISTOGRAM_BOUNDS_NS.windows(2) {
            assert_eq!(w[1], w[0] * 4);
        }
    }

    #[test]
    fn bucket_boundaries_are_upper_inclusive() {
        // At a boundary → that boundary's bucket; one past → the next.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1_000), 0);
        assert_eq!(bucket_index(1_001), 1);
        assert_eq!(bucket_index(4_000), 1);
        assert_eq!(bucket_index(4_001), 2);
        assert_eq!(bucket_index(4_194_304_000), HISTOGRAM_BUCKETS - 2);
        assert_eq!(bucket_index(4_194_304_001), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn record_tracks_exact_extremes() {
        let mut h = Histogram::new();
        for ns in [500, 2_000_000, 30] {
            h.record(ns);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.min_ns, 30);
        assert_eq!(h.max_ns, 2_000_000);
        assert_eq!(h.sum_ns, 2_000_530);
        assert_eq!(h.buckets[0], 2); // 30 and 500 share the ≤1 µs bucket
        assert_eq!(h.buckets[bucket_index(2_000_000)], 1);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = Histogram::new();
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record(2_000); // bucket 1 (≤4 µs)
        }
        for _ in 0..10 {
            h.record(10_000_000); // ~10 ms bucket
        }
        assert_eq!(h.quantile_ns(0.5), 4_000);
        assert_eq!(h.quantile_ns(0.9), 4_000);
        // p99 must reach the slow bucket; clamped to exact max.
        assert_eq!(h.quantile_ns(0.99), 10_000_000);
        assert_eq!(h.quantile_ns(1.0), 10_000_000);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(1_000_000);
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min_ns, 50);
        assert_eq!(a.max_ns, 1_000_000);
    }
}
