//! The collecting recorder: aggregates spans into a per-path tree and
//! counters/gauges/histograms into sorted maps, then snapshots everything
//! as a [`TelemetryReport`].

use crate::histogram::Histogram;
use crate::report::{GaugeReport, SpanReport, TelemetryReport};
use crate::Recorder;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::thread::ThreadId;

/// Aggregated span node in the arena. One node per unique
/// `(parent, name)` pair — repeated calls accumulate instead of growing
/// the tree.
#[derive(Debug)]
struct SpanNode {
    name: &'static str,
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    children: Vec<usize>,
}

impl SpanNode {
    fn new(name: &'static str) -> SpanNode {
        SpanNode {
            name,
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            children: Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    /// Open-span stack per thread: nested guards on one thread build the
    /// tree; other threads start their own roots.
    stacks: HashMap<ThreadId, Vec<usize>>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, GaugeReport>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl State {
    fn child_named(&mut self, parent: Option<usize>, name: &'static str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode::new(name));
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }
}

/// In-memory aggregating [`Recorder`]. Cheap enough for benches and tests;
/// a single mutex guards all state, so hot code must emit coarsely (the
/// crate-level docs spell out the granularity contract).
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    state: Mutex<State>,
}

impl MemoryRecorder {
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Snapshot everything recorded so far.
    pub fn report(&self) -> TelemetryReport {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        fn build(state: &State, idx: usize) -> SpanReport {
            let n = &state.nodes[idx];
            SpanReport {
                name: n.name.to_string(),
                count: n.count,
                total_ns: n.total_ns,
                min_ns: if n.count == 0 { 0 } else { n.min_ns },
                max_ns: n.max_ns,
                children: n.children.iter().map(|&c| build(state, c)).collect(),
            }
        }
        TelemetryReport {
            spans: state.roots.iter().map(|&r| build(&state, r)).collect(),
            counters: state
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: state
                .gauges
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(&k, h)| (k.to_string(), h.to_report()))
                .collect(),
        }
    }

    /// Drop all recorded state (the recorder stays installed).
    pub fn reset(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *state = State::default();
    }
}

impl Recorder for MemoryRecorder {
    fn span_enter(&self, name: &'static str) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let tid = std::thread::current().id();
        let parent = state.stacks.get(&tid).and_then(|s| s.last().copied());
        let idx = state.child_named(parent, name);
        state.stacks.entry(tid).or_default().push(idx);
    }

    fn span_exit(&self, name: &'static str, elapsed_ns: u64) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let tid = std::thread::current().id();
        // Only close a span this recorder saw open; a mismatched name means
        // the enter predates installation — drop the observation.
        let Some(&top) = state.stacks.get(&tid).and_then(|s| s.last()) else {
            return;
        };
        if state.nodes[top].name != name {
            return;
        }
        state.stacks.get_mut(&tid).expect("stack exists").pop();
        let node = &mut state.nodes[top];
        node.count += 1;
        node.total_ns = node.total_ns.saturating_add(elapsed_ns);
        node.min_ns = node.min_ns.min(elapsed_ns);
        node.max_ns = node.max_ns.max(elapsed_ns);
    }

    fn counter(&self, name: &'static str, delta: u64) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *state.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let g = state.gauges.entry(name).or_insert(GaugeReport {
            last: value,
            min: value,
            max: value,
            count: 0,
        });
        g.last = value;
        g.min = g.min.min(value);
        g.max = g.max.max(value);
        g.count += 1;
    }

    fn observe_ns(&self, name: &'static str, ns: u64) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.histograms.entry(name).or_default().record(ns);
    }
}
